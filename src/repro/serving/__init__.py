"""Serving subsystem: persistence, registry, streaming, routing, tagging service.

Turns a trained (d)HMM into something deployable:

* :mod:`repro.serving.persistence` — versioned save/load of models as
  ``.npz``-plus-JSON-manifest artifact directories;
* :mod:`repro.serving.registry` — a named, versioned on-disk
  :class:`ModelRegistry` over those artifacts;
* :mod:`repro.serving.streaming` — :class:`StreamingDecoder`, tagging tokens
  as they arrive (per-step filtering posteriors + fixed-lag Viterbi), and
  :class:`StreamPool`, multiplexing many concurrent streams onto one
  batched session;
* :mod:`repro.serving.service` — :class:`TaggingService`, a micro-batching
  front end coalescing concurrent requests into engine length-buckets,
  with a bounded queue and per-request deadlines;
* :mod:`repro.serving.router` — :class:`Router`, serving every registry
  model behind one queue with LRU lazy loading;
* :mod:`repro.serving.cli` — the ``repro-serve`` console entry point.
"""

from repro.serving.persistence import (
    MODEL_TYPES,
    SCHEMA_VERSION,
    load_artifact,
    load_model,
    read_manifest,
    resolve_hmm,
    save_artifact,
    save_model,
)
from repro.serving.registry import ModelRegistry
from repro.serving.router import Router
from repro.serving.service import ServiceStats, TaggingService
from repro.serving.streaming import (
    PooledStream,
    StreamingDecoder,
    StreamPool,
    StreamResult,
    stream_decode,
)

__all__ = [
    "MODEL_TYPES",
    "SCHEMA_VERSION",
    "save_artifact",
    "load_artifact",
    "save_model",
    "load_model",
    "read_manifest",
    "resolve_hmm",
    "ModelRegistry",
    "Router",
    "TaggingService",
    "ServiceStats",
    "StreamingDecoder",
    "StreamPool",
    "PooledStream",
    "StreamResult",
    "stream_decode",
]
