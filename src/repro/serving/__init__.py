"""Serving subsystem: a four-layer stack from artifacts to HTTP.

Turns a trained (d)HMM into something deployable.  The stack is layered —
scheduling / transport / storage / execution — so policies, protocols and
persistence evolve independently:

**Scheduling core**

* :mod:`repro.serving.scheduler` — the bounded queue, dispatcher thread,
  deadline expiry and the pluggable :class:`SchedulingPolicy` (FIFO /
  weighted-fair / EDF, via ``ServingConfig.scheduling_policy``) every
  service runs on.

**Execution services** (subclasses of :class:`MicroBatchScheduler`)

* :mod:`repro.serving.service` — :class:`TaggingService`, coalescing
  concurrent tag/score requests into engine length-buckets;
* :mod:`repro.serving.router` — :class:`Router`, serving every registry
  model behind one queue with LRU lazy loading and warm-up;
* :mod:`repro.serving.streaming_service` — :class:`StreamingService`,
  collecting concurrent clients' online pushes into batched session ticks;
* :mod:`repro.serving.streaming` — the caller-driven online primitives
  (:class:`StreamingDecoder`, :class:`StreamPool`).

**Storage**

* :mod:`repro.serving.persistence` — versioned, checksummed save/load of
  models as artifact directories (schema v3: raw mmap-able ``.npy``
  payloads; earlier compressed ``.npz`` schemas stay readable);
* :mod:`repro.serving.registry` — a named, versioned on-disk
  :class:`ModelRegistry` with retention/GC over those artifacts.

**Transport**

* :mod:`repro.serving.http` — a stdlib-only asyncio HTTP front end over
  the router and streaming service, with per-request ``X-Trace-Id``
  propagation and a ``/metrics`` endpoint (JSON or Prometheus text);
* :mod:`repro.serving.cluster` — :class:`ClusterServer`, N worker
  processes behind one port (``SO_REUSEPORT`` or a built-in balancer with
  health probing and sticky stream routing);
* :mod:`repro.serving.client` — :class:`ServingClient`, the typed-error
  stdlib HTTP client with :class:`~repro.core.config.RetryPolicy` support;
* :mod:`repro.serving.cli` — the ``repro-serve`` console entry point.

**Observability**

* :mod:`repro.serving.observability` — trace IDs and the fixed-bucket
  :class:`LatencyHistogram` behind :class:`ServiceStats` percentiles,
  ``/metrics`` and the CLI latency reports.

**Resilience** (spanning all layers)

* :mod:`repro.serving.faults` — deterministic fault injection behind the
  named points the chaos suite drives;
* supervised dispatcher restarts with a ``healthy``/``degraded``/
  ``failed`` state machine (scheduler), per-model circuit breakers
  (router), graceful drain (``close(drain_timeout_s=...)`` everywhere,
  SIGTERM on the HTTP server) and typed unavailability errors
  (:class:`~repro.exceptions.ModelUnavailableError`,
  :class:`~repro.exceptions.ServiceShuttingDownError`,
  :class:`~repro.exceptions.ArtifactCorruptError`).
"""

from repro.serving import faults
from repro.serving.client import ServingClient
from repro.serving.cluster import ClusterServer, reuse_port_supported
from repro.serving.observability import (
    LatencyHistogram,
    clean_trace_id,
    new_trace_id,
    render_prometheus,
)
from repro.serving.persistence import (
    MODEL_TYPES,
    SCHEMA_VERSION,
    load_artifact,
    load_model,
    read_manifest,
    resolve_hmm,
    save_artifact,
    save_model,
    verify_checksums,
)
from repro.serving.registry import ModelRegistry
from repro.serving.router import Router, WarmUpReport
from repro.serving.scheduler import (
    EDFPolicy,
    FIFOPolicy,
    MicroBatchScheduler,
    SchedulingPolicy,
    ServiceStats,
    WeightedFairPolicy,
)
from repro.serving.service import TaggingService
from repro.serving.streaming import (
    PooledStream,
    StreamingDecoder,
    StreamPool,
    StreamResult,
    stream_decode,
)
from repro.serving.http import HTTPServingServer
from repro.serving.streaming_service import ServiceStream, StreamingService

__all__ = [
    "MODEL_TYPES",
    "SCHEMA_VERSION",
    "save_artifact",
    "load_artifact",
    "save_model",
    "load_model",
    "read_manifest",
    "resolve_hmm",
    "verify_checksums",
    "ModelRegistry",
    "Router",
    "WarmUpReport",
    "TaggingService",
    "ServiceStats",
    "MicroBatchScheduler",
    "SchedulingPolicy",
    "FIFOPolicy",
    "WeightedFairPolicy",
    "EDFPolicy",
    "StreamingDecoder",
    "StreamPool",
    "PooledStream",
    "StreamResult",
    "stream_decode",
    "StreamingService",
    "ServiceStream",
    "HTTPServingServer",
    "ClusterServer",
    "reuse_port_supported",
    "LatencyHistogram",
    "new_trace_id",
    "clean_trace_id",
    "render_prometheus",
    "ServingClient",
    "faults",
]
