"""Dispatcher-driven online tagging: concurrent client pushes, batched ticks.

:class:`StreamingService` is the streaming analogue of
:class:`~repro.serving.service.TaggingService`: where
:class:`~repro.serving.streaming.StreamPool` requires one caller to drive
``push_tick`` with everything that advances together, the service runs on
the scheduling core (:class:`~repro.serving.scheduler.MicroBatchScheduler`)
— any number of client threads push observations into their own streams,
a single dispatcher thread collects the queued pushes and advances them as
batched :class:`~repro.hmm.backends.BatchedStreamingSession` ticks (one
vectorized emission-scoring call plus one ``(M, K, K)`` propagation per
tick), and every stream's output stays bit-identical to a dedicated
:class:`~repro.serving.streaming.StreamingDecoder`.

Ordering
--------
A stream's pushes must reach the session in submission order, so streaming
requests are deadline-free and keyed to a single scheduling class: under
every :class:`~repro.serving.scheduler.SchedulingPolicy` they drain in
exact arrival order.  Within one drained micro-batch the dispatcher packs
consecutive pushes of *distinct* streams into one wave and cuts a new wave
whenever a stream re-appears (or an open/finish control request
interleaves), preserving per-stream order while still coalescing
concurrent clients.

Wave submission
---------------
:meth:`ServiceStream.submit_push_many` submits a whole run of tokens as
**one** queue entry (where :meth:`ServiceStream.submit_push` costs one
entry per token): the dispatcher advances all wave fronts in lock step —
token ``t`` of every participating stream forms one vectorized tick — so a
wave of W streams x T tokens costs W queue round-trips and T batched ticks
instead of W*T of each.  This is what makes the streaming service faster
than per-client decoders at realistic concurrency (see
``benchmarks/test_bench_serving.py``).

Failure isolation mirrors the tagging service: a malformed observation
poisoning a shared tick is retried per stream, so only the offending push
fails (its stream stops advancing at the bad token; tokens already applied
stay recorded) and every other stream's step resolves normally.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from typing import Any

import numpy as np

from repro.core.config import ServingConfig
from repro.exceptions import ValidationError
from repro.hmm.backends import StreamStep
from repro.serving import faults
from repro.serving.persistence import resolve_hmm
from repro.serving.scheduler import MicroBatchScheduler, Request
from repro.serving.streaming import _UNSET, StreamResult, _StreamState

_OPEN = "open"
_PUSH = "push"
_PUSH_MANY = "push_many"
_FINISH = "finish"

#: placeholder payload array for control (open/finish) requests.
_CONTROL_SEQUENCE = np.zeros(1, dtype=np.int64)


class ServiceStream:
    """Client handle for one stream served by a :class:`StreamingService`.

    Mirrors the :class:`~repro.serving.streaming.StreamingDecoder` surface
    (``push``/``finish``, ``n_tokens``, ``finalized_labels``) with async
    variants (``submit_push``/``submit_finish``) returning futures.  A
    handle belongs to the client that opened it: drive each stream from one
    thread (or otherwise serialize its pushes) so observations reach the
    session in a well-defined order.
    """

    def __init__(self, service: "StreamingService", keep_history: bool) -> None:
        self._service = service
        self._state = _StreamState(keep_history=keep_history)
        #: session slot; assigned by the dispatcher when the open executes.
        self._slot: int | None = None
        self._finished = False
        self._n_pushed = 0

    @property
    def n_tokens(self) -> int:
        """Number of observations consumed so far (completed pushes)."""
        return self._n_pushed

    @property
    def finalized_labels(self) -> list[int]:
        """Labels finalized so far, in token order (prefix of the path)."""
        labels = self._state.labels
        return [labels[t] for t in range(len(labels))]

    def submit_push(self, observation: Any, trace_id: str | None = None) -> Future:
        """Enqueue one observation; resolves to its :class:`StreamStep`."""
        if self._finished:
            raise ValidationError("cannot push to a finished stream")
        return self._service._enqueue(
            _PUSH, np.asarray(observation), payload=self, trace_id=trace_id
        )

    def push(self, observation: Any) -> StreamStep:
        """Synchronous push: submit one observation and wait for its step."""
        return self.submit_push(observation).result()

    def submit_push_many(
        self, observations: Any, trace_id: str | None = None
    ) -> Future:
        """Enqueue a wave of observations as **one** queue entry.

        The future resolves to the ``list[StreamStep]`` of every token, in
        order.  The wave's tokens are applied strictly in order on the
        dispatcher; if one token fails, the stream stops at it (earlier
        tokens stay applied and recorded in the handle's history) and the
        whole future resolves with that token's exception.

        The first axis of ``observations`` indexes tokens: a 1-D int array
        for categorical emissions, an ``(T, n_features)`` array for
        Bernoulli features.
        """
        if self._finished:
            raise ValidationError("cannot push to a finished stream")
        wave = np.asarray(observations)
        if wave.ndim < 1 or wave.shape[0] < 1:
            raise ValidationError(
                "push_many needs at least one observation along the first "
                f"axis, got shape {wave.shape}"
            )
        return self._service._enqueue(
            _PUSH_MANY, wave, payload=self, trace_id=trace_id
        )

    def push_many(self, observations: Any) -> list[StreamStep]:
        """Submit a wave of observations as one entry; wait for all steps.

        One queue round-trip for the whole wave — the high-throughput
        client pattern (compare :meth:`submit_push` per token, which pays
        queue admission per observation).
        """
        return self.submit_push_many(observations).result()

    def submit_finish(self, trace_id: str | None = None) -> Future:
        """Enqueue the finish; resolves to the stream's :class:`StreamResult`.

        The stream refuses further pushes immediately.
        """
        if self._finished:
            raise ValidationError("stream already finished")
        self._finished = True
        return self._service._enqueue(
            _FINISH, _CONTROL_SEQUENCE, payload=self, trace_id=trace_id
        )

    def finish(self) -> StreamResult:
        """Flush the remaining window and assemble the final result."""
        return self.submit_finish().result()


class StreamingService(MicroBatchScheduler):
    """Micro-batching front end over one model's batched streaming session.

    Parameters
    ----------
    model:
        An :class:`~repro.hmm.model.HMM` or a fitted estimator wrapper.
    lag:
        Default fixed lag for streams opened without an explicit one; falls
        back to ``ServingConfig.streaming_lag`` when omitted.
    keep_history:
        Default history retention for opened streams (see
        :class:`~repro.serving.streaming.StreamingDecoder`).
    config:
        Batching and backpressure knobs; defaults to the process-wide
        :func:`~repro.core.config.get_serving_config`.

    Use as a context manager (or call :meth:`close`); queued pushes are
    still served during shutdown.  Streams left unfinished at close simply
    never produce a :class:`StreamResult`.
    """

    _thread_name = "repro-streaming-service"

    def __init__(
        self,
        model: Any,
        lag: int | None | object = _UNSET,
        keep_history: bool = True,
        config: ServingConfig | None = None,
    ) -> None:
        super().__init__(config)
        hmm = resolve_hmm(model)
        if lag is _UNSET:
            lag = self.config.streaming_lag
        self._emissions = hmm.emissions
        self._session = hmm.stream_batch()
        self._default_lag = lag
        self._default_keep_history = keep_history
        self._start()

    # -------------------------------------------------------------- #
    # Client API
    # -------------------------------------------------------------- #
    def open(
        self,
        lag: int | None | object = _UNSET,
        keep_history: bool | None = None,
        timeout: float | None = 30.0,
    ) -> ServiceStream:
        """Open one more client stream; blocks until the dispatcher admits it.

        Slots of finished streams are reused by the underlying session.
        """
        if lag is _UNSET:
            lag = self._default_lag
        if keep_history is None:
            keep_history = self._default_keep_history
        handle = ServiceStream(self, keep_history=keep_history)
        future = self._enqueue(_OPEN, _CONTROL_SEQUENCE, payload=(handle, lag))
        return future.result(timeout=timeout)

    @property
    def n_streams(self) -> int:
        """Number of currently open (unfinished) streams."""
        return self._session.n_streams

    # -------------------------------------------------------------- #
    # Dispatcher side
    # -------------------------------------------------------------- #
    def _check_sequence(self, kind: str, sequence: np.ndarray) -> None:
        # Streaming payloads are single observations: a 0-d int symbol
        # (categorical) or a feature vector (Bernoulli) — the batch
        # services' "at least one timestep" shape check does not apply.
        pass

    def _execute(self, batch: list[Request]) -> None:  # repro: confined[dispatcher]
        # Pack consecutive pushes/waves of distinct streams into one wave
        # group; cut the group when a stream re-appears or a control request
        # interleaves, so per-stream request order is preserved exactly.
        wave: list[Request] = []
        wave_slots: set[int] = set()

        def flush() -> None:
            nonlocal wave, wave_slots
            if wave:
                self._run_wave(wave)
                wave, wave_slots = [], set()

        for request in batch:
            if request.kind in (_PUSH, _PUSH_MANY):
                slot = request.payload._slot
                if slot in wave_slots:
                    flush()
                wave.append(request)
                wave_slots.add(slot)
            else:
                flush()
                self._run_control(request)
        flush()

    def _run_control(self, request: Request) -> None:  # repro: confined[dispatcher]
        future = request.future
        if not future.set_running_or_notify_cancel():
            return
        try:
            if request.kind == _OPEN:
                handle, lag = request.payload
                handle._slot = self._session.add_stream(lag=lag)
                future.set_result(handle)
            else:  # _FINISH
                handle = request.payload
                remaining = self._session.finish(handle._slot)
                future.set_result(handle._state.assemble(remaining))
        except Exception as exc:
            future.set_exception(exc)
        self.stats.record_completed([request], policy=self.scheduling_policy)

    @staticmethod
    def _wave_tokens(request: Request) -> list[np.ndarray]:
        """The token sequence a request contributes to its wave front."""
        if request.kind == _PUSH:
            return [request.sequence]
        return [np.asarray(token) for token in request.sequence]

    def _run_wave(self, wave: list[Request]) -> None:  # repro: confined[dispatcher]
        """Advance a wave of distinct streams in lock-step batched ticks.

        Token ``t`` of every still-active front forms one tick: one
        vectorized emission-scoring call plus one batched session step.
        Single pushes are just fronts of depth one, so mixed traffic
        (pushes interleaved with waves) still coalesces.  On a poisoned
        tick the fallback advances each front on its own; a front whose
        token fails stops there (its earlier tokens stay applied) and its
        request resolves with the exception.
        """
        fronts = [self._wave_tokens(request) for request in wave]
        slots = [request.payload._slot for request in wave]
        steps: list[list[StreamStep]] = [[] for _ in wave]
        failures: dict[int, Exception] = {}
        depth = max(len(front) for front in fronts)
        for t in range(depth):
            active = [
                i
                for i in range(len(wave))
                if t < len(fronts[i]) and i not in failures
            ]
            if not active:
                break
            started = time.perf_counter()
            try:
                # Inside the isolation block on purpose: an injected tick
                # fault behaves like a poisoned shared call — the per-stream
                # fallback must absorb it with every stream's output
                # unchanged.
                faults.fire(faults.STREAM_TICK)
                stacked = np.stack([fronts[i][t] for i in active])
                rows = self._emissions.log_likelihoods(stacked)
                tick_steps = self._session.step_many(
                    rows, [slots[i] for i in active]
                )
                for i, step in zip(active, tick_steps):
                    steps[i].append(step)
            except Exception:
                # One malformed observation poisons the shared scoring call
                # (or ragged observations break the stack): advance each
                # stream on its own so only the offending fronts fail.
                # Control-flow exceptions are deliberately not caught — they
                # must stop the dispatcher, not be swallowed into a client
                # future.
                for i in active:
                    try:
                        row = self._emissions.log_likelihoods(
                            fronts[i][t][None, ...]
                        )
                        steps[i].append(self._session.step_many(row, [slots[i]])[0])
                    except Exception as exc:
                        # the front stops here; tokens already applied stay
                        failures[i] = exc
            self.stats.record_batch(
                n_requests=len(active),
                n_tokens=len(active),
                seconds=time.perf_counter() - started,
            )
        self.stats.record_completed(wave, policy=self.scheduling_policy)
        for i, request in enumerate(wave):
            handle = request.payload
            future = request.future
            for step in steps[i]:
                handle._state.record(step)
                handle._n_pushed += 1
            if not future.set_running_or_notify_cancel():
                continue
            error = failures.get(i)
            if error is not None:
                future.set_exception(error)
            elif request.kind == _PUSH:
                future.set_result(steps[i][0])
            else:
                future.set_result(steps[i])
