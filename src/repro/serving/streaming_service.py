"""Dispatcher-driven online tagging: concurrent client pushes, batched ticks.

:class:`StreamingService` is the streaming analogue of
:class:`~repro.serving.service.TaggingService`: where
:class:`~repro.serving.streaming.StreamPool` requires one caller to drive
``push_tick`` with everything that advances together, the service runs on
the scheduling core (:class:`~repro.serving.scheduler.MicroBatchScheduler`)
— any number of client threads push observations into their own streams,
a single dispatcher thread collects the queued pushes and advances them as
batched :class:`~repro.hmm.backends.BatchedStreamingSession` ticks (one
vectorized emission-scoring call plus one ``(M, K, K)`` propagation per
tick), and every stream's output stays bit-identical to a dedicated
:class:`~repro.serving.streaming.StreamingDecoder`.

Ordering
--------
A stream's pushes must reach the session in submission order, so streaming
requests are deadline-free and keyed to a single scheduling class: under
every :class:`~repro.serving.scheduler.SchedulingPolicy` they drain in
exact arrival order.  Within one drained micro-batch the dispatcher packs
consecutive pushes of *distinct* streams into one tick and cuts a new tick
whenever a stream re-appears (or an open/finish control request
interleaves), preserving per-stream order while still coalescing
concurrent clients.

Failure isolation mirrors the tagging service: a malformed observation
poisoning a shared tick is retried per stream, so only the offending push
fails (its stream simply does not advance) and every other stream's step
resolves normally.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from typing import Any

import numpy as np

from repro.core.config import ServingConfig
from repro.exceptions import ValidationError
from repro.hmm.backends import StreamStep
from repro.serving import faults
from repro.serving.persistence import resolve_hmm
from repro.serving.scheduler import MicroBatchScheduler, Request
from repro.serving.streaming import _UNSET, StreamResult, _StreamState

_OPEN = "open"
_PUSH = "push"
_FINISH = "finish"

#: placeholder payload array for control (open/finish) requests.
_CONTROL_SEQUENCE = np.zeros(1, dtype=np.int64)


class ServiceStream:
    """Client handle for one stream served by a :class:`StreamingService`.

    Mirrors the :class:`~repro.serving.streaming.StreamingDecoder` surface
    (``push``/``finish``, ``n_tokens``, ``finalized_labels``) with async
    variants (``submit_push``/``submit_finish``) returning futures.  A
    handle belongs to the client that opened it: drive each stream from one
    thread (or otherwise serialize its pushes) so observations reach the
    session in a well-defined order.
    """

    def __init__(self, service: "StreamingService", keep_history: bool) -> None:
        self._service = service
        self._state = _StreamState(keep_history=keep_history)
        #: session slot; assigned by the dispatcher when the open executes.
        self._slot: int | None = None
        self._finished = False
        self._n_pushed = 0

    @property
    def n_tokens(self) -> int:
        """Number of observations consumed so far (completed pushes)."""
        return self._n_pushed

    @property
    def finalized_labels(self) -> list[int]:
        """Labels finalized so far, in token order (prefix of the path)."""
        labels = self._state.labels
        return [labels[t] for t in range(len(labels))]

    def submit_push(self, observation: Any) -> Future:
        """Enqueue one observation; resolves to its :class:`StreamStep`."""
        if self._finished:
            raise ValidationError("cannot push to a finished stream")
        return self._service._enqueue(
            _PUSH, np.asarray(observation), payload=self
        )

    def push(self, observation: Any) -> StreamStep:
        """Synchronous push: submit one observation and wait for its step."""
        return self.submit_push(observation).result()

    def push_many(self, observations: Any) -> list[StreamStep]:
        """Submit several observations at once and gather their steps.

        Submitting before waiting is the high-throughput client pattern:
        the queued pushes (typically interleaved with other clients') drain
        into near-full batched ticks.
        """
        futures = [self.submit_push(obs) for obs in observations]
        return [future.result() for future in futures]

    def submit_finish(self) -> Future:
        """Enqueue the finish; resolves to the stream's :class:`StreamResult`.

        The stream refuses further pushes immediately.
        """
        if self._finished:
            raise ValidationError("stream already finished")
        self._finished = True
        return self._service._enqueue(_FINISH, _CONTROL_SEQUENCE, payload=self)

    def finish(self) -> StreamResult:
        """Flush the remaining window and assemble the final result."""
        return self.submit_finish().result()


class StreamingService(MicroBatchScheduler):
    """Micro-batching front end over one model's batched streaming session.

    Parameters
    ----------
    model:
        An :class:`~repro.hmm.model.HMM` or a fitted estimator wrapper.
    lag:
        Default fixed lag for streams opened without an explicit one; falls
        back to ``ServingConfig.streaming_lag`` when omitted.
    keep_history:
        Default history retention for opened streams (see
        :class:`~repro.serving.streaming.StreamingDecoder`).
    config:
        Batching and backpressure knobs; defaults to the process-wide
        :func:`~repro.core.config.get_serving_config`.

    Use as a context manager (or call :meth:`close`); queued pushes are
    still served during shutdown.  Streams left unfinished at close simply
    never produce a :class:`StreamResult`.
    """

    _thread_name = "repro-streaming-service"

    def __init__(
        self,
        model: Any,
        lag: int | None | object = _UNSET,
        keep_history: bool = True,
        config: ServingConfig | None = None,
    ) -> None:
        super().__init__(config)
        hmm = resolve_hmm(model)
        if lag is _UNSET:
            lag = self.config.streaming_lag
        self._emissions = hmm.emissions
        self._session = hmm.stream_batch()
        self._default_lag = lag
        self._default_keep_history = keep_history
        self._start()

    # -------------------------------------------------------------- #
    # Client API
    # -------------------------------------------------------------- #
    def open(
        self,
        lag: int | None | object = _UNSET,
        keep_history: bool | None = None,
        timeout: float | None = 30.0,
    ) -> ServiceStream:
        """Open one more client stream; blocks until the dispatcher admits it.

        Slots of finished streams are reused by the underlying session.
        """
        if lag is _UNSET:
            lag = self._default_lag
        if keep_history is None:
            keep_history = self._default_keep_history
        handle = ServiceStream(self, keep_history=keep_history)
        future = self._enqueue(_OPEN, _CONTROL_SEQUENCE, payload=(handle, lag))
        return future.result(timeout=timeout)

    @property
    def n_streams(self) -> int:
        """Number of currently open (unfinished) streams."""
        return self._session.n_streams

    # -------------------------------------------------------------- #
    # Dispatcher side
    # -------------------------------------------------------------- #
    def _check_sequence(self, kind: str, sequence: np.ndarray) -> None:
        # Streaming payloads are single observations: a 0-d int symbol
        # (categorical) or a feature vector (Bernoulli) — the batch
        # services' "at least one timestep" shape check does not apply.
        pass

    def _execute(self, batch: list[Request]) -> None:  # repro: confined[dispatcher]
        # Pack consecutive pushes of distinct streams into one tick; cut the
        # tick when a stream re-appears or a control request interleaves, so
        # per-stream request order is preserved exactly.
        tick: list[Request] = []
        tick_slots: set[int] = set()

        def flush() -> None:
            nonlocal tick, tick_slots
            if tick:
                self._run_tick(tick)
                tick, tick_slots = [], set()

        for request in batch:
            if request.kind == _PUSH:
                slot = request.payload._slot
                if slot in tick_slots:
                    flush()
                tick.append(request)
                tick_slots.add(request.payload._slot)
            else:
                flush()
                self._run_control(request)
        flush()

    def _run_control(self, request: Request) -> None:  # repro: confined[dispatcher]
        future = request.future
        if not future.set_running_or_notify_cancel():
            return
        try:
            if request.kind == _OPEN:
                handle, lag = request.payload
                handle._slot = self._session.add_stream(lag=lag)
                future.set_result(handle)
            else:  # _FINISH
                handle = request.payload
                remaining = self._session.finish(handle._slot)
                future.set_result(handle._state.assemble(remaining))
        except Exception as exc:
            future.set_exception(exc)

    def _run_tick(self, tick: list[Request]) -> None:  # repro: confined[dispatcher]
        """Advance one tick's streams together; fall back per stream on error."""
        started = time.perf_counter()
        try:
            # Inside the isolation block on purpose: an injected tick fault
            # behaves like a poisoned shared call — the per-stream fallback
            # must absorb it with every stream's output unchanged.
            faults.fire(faults.STREAM_TICK)
            stacked = np.stack([request.sequence for request in tick])
            rows = self._emissions.log_likelihoods(stacked)
            steps = self._session.step_many(
                rows, [request.payload._slot for request in tick]
            )
        except Exception:
            # One malformed observation poisons the shared scoring call (or
            # ragged observations break the stack): advance each stream on
            # its own so only the offending pushes fail.  Control-flow
            # exceptions are deliberately not caught — they must stop the
            # dispatcher, not be swallowed into a client future.
            outcomes = self._step_individually(tick)
        else:
            outcomes = [(True, step) for step in steps]
        self.stats.record_batch(
            n_requests=len(tick),
            n_tokens=len(tick),
            seconds=time.perf_counter() - started,
        )
        for request, (ok, value) in zip(tick, outcomes):
            handle = request.payload
            future = request.future
            if ok:
                handle._state.record(value)
                handle._n_pushed += 1
            if not future.set_running_or_notify_cancel():
                continue
            if ok:
                future.set_result(value)
            else:
                future.set_exception(value)

    def _step_individually(
        self, tick: list[Request]
    ) -> list[tuple[bool, Any]]:  # repro: confined[dispatcher]
        outcomes: list[tuple[bool, Any]] = []
        for request in tick:
            try:
                row = self._emissions.log_likelihoods(request.sequence[None, ...])
                steps = self._session.step_many(row, [request.payload._slot])
                outcomes.append((True, steps[0]))
            except Exception as exc:
                # the stream did not advance; the client may retry with a
                # corrected observation
                outcomes.append((False, exc))
        return outcomes
