"""``repro-serve`` — fit, persist, and serve dHMM taggers from the shell.

Subcommands
-----------
``fit``
    Train a model on one of the bundled synthetic datasets (``toy``/``pos``/
    ``ocr``) and store it, either into a registry (``--registry``/``--name``)
    or as a bare artifact directory (``--out``).  ``--alpha 0`` trains the
    plain-HMM baseline, positive values the diversity-regularized dHMM.
``save``
    Import an existing artifact directory into a registry as a new version.
``tag``
    Load a registered model and tag sequences read from a JSON-lines file
    (one JSON array per line).  By default the whole file is compiled once
    (:class:`~repro.hmm.corpus.CompiledCorpus`) and decoded through the
    batched corpus path; ``--service`` opts into the micro-batching
    :class:`~repro.serving.TaggingService` instead, and ``--streaming``
    decodes token by token with the fixed-lag decoder.
``route``
    Serve requests against *several* registry models through one routed
    queue: each JSON-lines request names its model (and optionally a
    version, a kind and a deadline), the :class:`~repro.serving.Router`
    coalesces per-model micro-batches, loads models lazily (LRU-capped)
    and applies backpressure/deadline shedding.  ``--scheduling-policy``
    selects the batch-ordering policy and ``--stats`` prints the final
    :meth:`ServiceStats.snapshot` as JSON.
``serve``
    Run the asyncio HTTP front end
    (:class:`~repro.serving.HTTPServingServer`) over a registry:
    tag/score/stream/stats/health/metrics endpoints until interrupted.
    ``--workers N`` (N > 1) scales out to a
    :class:`~repro.serving.cluster.ClusterServer` of N independent worker
    processes sharing the port via ``SO_REUSEPORT`` (or the built-in
    balancer with ``--no-reuse-port``); ``--mmap-artifacts`` memory-maps
    schema-v3 model parameters so the workers share pages.
``bench``
    Measure micro-batched service throughput against sequential per-request
    decoding on model-sampled sequences.

Examples
--------
::

    repro-serve fit --dataset pos --registry ./registry --name pos-tagger \
        --sample-out ./sample.jsonl
    repro-serve tag --registry ./registry --name pos-tagger --input ./sample.jsonl
    repro-serve route --registry ./registry --input ./routed.jsonl --stats
    repro-serve serve --registry ./registry --port 8765 --warm-up pos-tagger
    repro-serve bench --registry ./registry --name pos-tagger --requests 200
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.config import (
    SCHEDULING_POLICIES,
    DHMMConfig,
    RetryPolicy,
    ServingConfig,
)
from repro.core.diversified_hmm import DiversifiedHMM
from repro.core.supervised import SupervisedDiversifiedHMM
from repro.datasets.ocr import N_PIXELS, generate_ocr_dataset
from repro.datasets.pos import generate_wsj_like_corpus
from repro.datasets.toy import generate_toy_dataset
from repro.exceptions import ModelUnavailableError, QueueFullError, ReproError
from repro.hmm.emissions.categorical import CategoricalEmission
from repro.hmm.emissions.gaussian import GaussianEmission
from repro.serving.persistence import load_artifact, resolve_hmm, save_artifact
from repro.serving.registry import ModelRegistry
from repro.serving.service import TaggingService
from repro.serving.streaming import StreamingDecoder


def _log(message: str) -> None:
    print(message, file=sys.stderr)


# ------------------------------------------------------------------ #
# fit
# ------------------------------------------------------------------ #
def _fit_model(args: argparse.Namespace):
    """Train the canonical model for the chosen dataset; returns (model, sequences, metadata)."""
    config = DHMMConfig(alpha=args.alpha, max_em_iter=args.max_em_iter)
    if args.dataset == "toy":
        data = generate_toy_dataset(
            n_sequences=args.n_sequences, sequence_length=6, seed=args.seed
        )
        model = DiversifiedHMM(
            GaussianEmission.random_init(5, data.observations, seed=args.seed),
            config=config,
            seed=args.seed,
        )
        model.fit(data.observations)
        sequences = data.observations
    elif args.dataset == "pos":
        corpus = generate_wsj_like_corpus(
            n_sentences=args.n_sequences,
            vocabulary_size=args.vocabulary_size,
            mean_length=8,
            max_length=30,
            seed=args.seed,
        )
        model = SupervisedDiversifiedHMM(
            n_states=corpus.n_tags,
            config=config,
            emissions=CategoricalEmission.random_init(
                corpus.n_tags, corpus.vocabulary_size, seed=0
            ),
        )
        model.fit(corpus.words, corpus.tags)
        sequences = corpus.words
    else:  # ocr
        data = generate_ocr_dataset(n_words=args.n_sequences, seed=args.seed)
        model = SupervisedDiversifiedHMM(
            n_states=26, n_features=N_PIXELS, config=config
        )
        model.fit(data.images, data.labels)
        sequences = data.images
    metadata = {
        "dataset": args.dataset,
        "alpha": args.alpha,
        "n_sequences": args.n_sequences,
        "seed": args.seed,
    }
    return model, sequences, metadata


def _cmd_fit(args: argparse.Namespace) -> int:
    model, sequences, metadata = _fit_model(args)
    if args.registry:
        registry = ModelRegistry(args.registry)
        version = registry.save(args.name, model, metadata=metadata)
        _log(f"saved {args.name} v{version} to registry {args.registry}")
    if args.out:
        save_artifact(model, args.out, metadata=metadata)
        _log(f"saved artifact to {args.out}")
    if args.sample_out:
        count = min(args.sample_count, len(sequences))
        with Path(args.sample_out).open("w") as fh:
            for seq in sequences[:count]:
                fh.write(json.dumps(np.asarray(seq).tolist()) + "\n")
        _log(f"wrote {count} sample sequences to {args.sample_out}")
    return 0


# ------------------------------------------------------------------ #
# save / model loading
# ------------------------------------------------------------------ #
def _cmd_save(args: argparse.Namespace) -> int:
    model = load_artifact(args.artifact)
    version = ModelRegistry(args.registry).save(args.name, model)
    _log(f"imported {args.artifact} as {args.name} v{version} in {args.registry}")
    return 0


def _load_registered(args: argparse.Namespace):
    registry = ModelRegistry(args.registry)
    return registry.load(args.name, version=args.version)


# ------------------------------------------------------------------ #
# tag
# ------------------------------------------------------------------ #
def _iter_jsonl(path: str):
    """Yield ``(line_no, parsed_value)`` per non-blank JSON-lines entry."""
    source = sys.stdin if path == "-" else Path(path).open()
    try:
        for line_no, line in enumerate(source, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield line_no, json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(f"{path}:{line_no}: invalid JSON: {exc}") from None
    finally:
        if source is not sys.stdin:
            source.close()


def _iter_sequence_batches(path: str, family: str, batch_size: int):
    """Yield lists of at most ``batch_size`` sequences, reading lazily.

    Only one batch of parsed sequences is resident at a time, so tagging an
    arbitrarily large file is memory-bounded by the batch size (and, for
    sequences above ``InferenceConfig.long_threshold``, by the chunked
    decode windows) — never by the file size.
    """
    dtype = np.int64 if family == "categorical" else np.float64
    batch: list[np.ndarray] = []
    for _, values in _iter_jsonl(path):
        batch.append(np.asarray(values, dtype=dtype))
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


def _cmd_tag(args: argparse.Namespace) -> int:
    if args.streaming and args.service:
        _log("--streaming and --service are mutually exclusive")
        return 2
    if args.batch_size < 1:
        _log(f"--batch-size must be positive, got {args.batch_size}")
        return 2
    model = _load_registered(args)
    hmm = resolve_hmm(model)
    batches = _iter_sequence_batches(args.input, hmm.emissions.family, args.batch_size)

    started = time.perf_counter()
    n_sequences = 0
    n_tokens = 0
    n_batches = 0
    out = sys.stdout if args.output is None else Path(args.output).open("w")
    try:

        def emit(paths) -> None:
            for path in paths:
                out.write(" ".join(str(int(s)) for s in path) + "\n")

        if args.streaming:
            lag = None
            for batch in batches:
                for seq in batch:
                    # No --lag -> ServingConfig.streaming_lag default.
                    # keep_history=False keeps per-stream state O(lag):
                    # finalized labels are harvested from each step, the
                    # tail comes from the final window flush.
                    decoder = (
                        StreamingDecoder(hmm, keep_history=False)
                        if args.lag is None
                        else StreamingDecoder(hmm, lag=args.lag, keep_history=False)
                    )
                    lag = decoder._session.lag
                    labels: list[int] = []
                    for obs in seq:
                        step = decoder.push(obs)
                        labels.extend(state for _, state in step.finalized)
                    labels.extend(int(s) for s in decoder.finish().path)
                    emit([labels])
                    n_sequences += 1
                    n_tokens += len(seq)
                n_batches += 1
            mode = f"streaming (lag={lag})"
        elif args.service:
            config = ServingConfig(
                max_batch_size=args.max_batch_size, max_wait_ms=args.max_wait_ms
            )
            with TaggingService(hmm, config=config) as service:
                for batch in batches:
                    emit(service.tag_many(batch))
                    n_sequences += len(batch)
                    n_tokens += sum(len(seq) for seq in batch)
                    n_batches += 1
                occupancy = service.stats.snapshot()["mean_batch_size"]
            mode = f"micro-batched (mean batch {occupancy:.1f})"
        else:
            # Offline default: compile one bounded batch at a time and
            # decode it through the corpus path (sequences above the long
            # threshold route through the chunked long-sequence decoder),
            # so neither the file size nor any single sequence's length
            # dictates peak memory.
            for batch in batches:
                corpus = hmm.compile(batch)
                emit(hmm.predict_corpus(corpus))
                n_sequences += len(batch)
                n_tokens += sum(len(seq) for seq in batch)
                n_batches += 1
            mode = f"compiled corpus ({n_batches} batches <= {args.batch_size} seqs)"
    finally:
        if out is not sys.stdout:
            out.close()
    elapsed = time.perf_counter() - started

    if n_sequences == 0:
        _log("no input sequences")
        return 1
    _log(
        f"tagged {n_sequences} sequences / {n_tokens} tokens in "
        f"{elapsed * 1e3:.1f} ms via {mode}"
    )
    return 0


def _latency_summary(latency: dict) -> str:
    """One log line of request-latency percentiles from a histogram snapshot.

    The percentiles come from the same :class:`LatencyHistogram` machinery
    the HTTP ``/metrics`` endpoint serves, so the CLI and the server report
    the same numbers for the same traffic — not a mean that hides the tail.
    """
    if not latency["count"]:
        return "latency: no completed requests"
    return (
        f"latency p50={latency['p50_ms']:.2f} ms "
        f"p95={latency['p95_ms']:.2f} ms p99={latency['p99_ms']:.2f} ms "
        f"max={latency['max_ms']:.2f} ms over {latency['count']} requests"
    )


# ------------------------------------------------------------------ #
# route
# ------------------------------------------------------------------ #
def _read_routed_requests(path: str) -> list[dict]:
    """Parse a JSON-lines file of routed requests.

    Each line is an object: ``{"model": <name>, "sequence": [...]}`` plus
    optional ``"version"`` (int), ``"kind"`` (``"tag"``/``"score"``) and
    ``"deadline_ms"`` (float).
    """
    requests = []
    for line_no, obj in _iter_jsonl(path):
        if not isinstance(obj, dict) or "model" not in obj or "sequence" not in obj:
            raise ReproError(
                f"{path}:{line_no}: routed requests are objects with "
                "'model' and 'sequence' keys"
            )
        if obj.get("kind", "tag") not in ("tag", "score"):
            raise ReproError(f"{path}:{line_no}: kind must be 'tag' or 'score'")
        requests.append(obj)
    return requests


def _cmd_route(args: argparse.Namespace) -> int:
    from repro.serving.router import Router

    requests = _read_routed_requests(args.input)
    if not requests:
        _log("no input requests")
        return 1

    config = ServingConfig(
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        queue_capacity=args.queue_capacity,
        max_loaded_models=args.max_loaded_models,
        scheduling_policy=args.scheduling_policy,
    )
    started = time.perf_counter()
    with Router(args.registry, config=config) as router:
        futures: list = []
        oldest_in_flight = 0

        def wait_for_queue_room() -> None:
            # The CLI is the router's only client, so the bounded queue is
            # full of its *own* earlier requests: apply flow control (wait
            # for the oldest in-flight one) instead of bouncing submissions
            # off QueueFullError — which would shed our own work and count
            # phantom rejections in the router stats.  Only this thread
            # enqueues, so depth-below-capacity guarantees the next submit
            # is admitted.
            nonlocal oldest_in_flight
            capacity = config.queue_capacity
            while capacity is not None and router.queue_depth >= capacity:
                while oldest_in_flight < len(futures) and (
                    isinstance(futures[oldest_in_flight], Exception)
                    or futures[oldest_in_flight].done()
                ):
                    oldest_in_flight += 1
                if oldest_in_flight >= len(futures):
                    return  # queue is mid-drain; nothing left to wait on
                try:
                    futures[oldest_in_flight].result()
                except Exception:
                    pass  # reported when results are gathered below

        for request in requests:
            deadline_ms = request.get("deadline_ms", args.deadline_ms)
            submit = (
                router.submit_score if request.get("kind") == "score" else router.submit_tag
            )
            while True:
                wait_for_queue_room()
                # Any per-request failure — Repro validation errors but
                # also e.g. a TypeError from a malformed "version" value —
                # becomes a per-request error record, never a crash of the
                # whole run.
                try:
                    futures.append(
                        submit(
                            request["model"],
                            np.asarray(request["sequence"]),
                            version=request.get("version"),
                            deadline_ms=deadline_ms,
                        )
                    )
                except QueueFullError:
                    continue  # raced the gauge; wait for room again
                except Exception as exc:
                    futures.append(exc)
                break
        retry_policy = (
            RetryPolicy(
                max_attempts=args.retries,
                initial_backoff_ms=args.retry_backoff_ms,
            )
            if args.retries > 0
            else None
        )
        n_retried = 0

        def retry_request(request: dict, cause: Exception):
            # Transient failures (queue-full backpressure, an open circuit
            # breaker) are worth re-submitting under the retry budget.
            # Permanent ones (validation, expired deadlines) never reach
            # here — RetryPolicy.call re-raises them unconditionally.
            nonlocal n_retried
            n_retried += 1
            suggested = getattr(cause, "retry_after_s", None)
            if suggested:
                time.sleep(min(float(suggested), 30.0))
            submit = (
                router.submit_score
                if request.get("kind") == "score"
                else router.submit_tag
            )
            return retry_policy.call(
                lambda: submit(
                    request["model"],
                    np.asarray(request["sequence"]),
                    version=request.get("version"),
                    deadline_ms=request.get("deadline_ms", args.deadline_ms),
                ).result(),
                min_backoff_s=lambda exc: getattr(exc, "retry_after_s", None),
            )

        outcomes = []
        for request, future in zip(requests, futures):
            record = {"model": request["model"]}
            if request.get("version") is not None:
                record["version"] = request["version"]
            # The dispatcher resolves futures with whatever exception the
            # failure produced (a corrupt artifact surfaces as
            # FileNotFoundError, a bad observation as a numpy error) —
            # report them all per-request.
            try:
                if isinstance(future, Exception):
                    raise future
                value = future.result()
            except (QueueFullError, ModelUnavailableError) as exc:
                if retry_policy is None:
                    record["error"] = str(exc)
                else:
                    try:
                        value = retry_request(request, exc)
                    except Exception as retry_exc:
                        record["error"] = str(retry_exc)
            except Exception as exc:
                record["error"] = str(exc)
            if "error" not in record:
                if request.get("kind") == "score":
                    record["score"] = float(value)
                else:
                    record["tags"] = [int(s) for s in value]
            outcomes.append(record)
        stats = router.stats.snapshot()
    elapsed = time.perf_counter() - started

    out = sys.stdout if args.output is None else Path(args.output).open("w")
    try:
        for record in outcomes:
            out.write(json.dumps(record) + "\n")
    finally:
        if out is not sys.stdout:
            out.close()
    n_errors = sum(1 for record in outcomes if "error" in record)
    per_model = ", ".join(f"{k}={v}" for k, v in sorted(stats["per_model"].items()))
    _log(
        f"routed {len(requests)} requests ({per_model}) in {elapsed * 1e3:.1f} ms; "
        f"{n_errors} errors, {n_retried} retried, {stats['n_expired']} expired, "
        f"{stats['n_rejected']} shed, {stats['n_model_loads']} model loads"
    )
    _log(_latency_summary(stats["latency"]))
    if args.stats:
        # The full ServiceStats snapshot (shed/expiry counters, queue depth,
        # per-model counts, occupancy) as one JSON object — the
        # machine-readable companion of the summary line above.  When the
        # per-request results already own stdout (no --output), the stats
        # go to stderr so the JSONL stream stays parseable.
        stats_text = json.dumps(stats, indent=2)
        if args.output is None:
            _log(stats_text)
        else:
            print(stats_text)
    return 0


# ------------------------------------------------------------------ #
# serve
# ------------------------------------------------------------------ #
def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.serving.http import HTTPServingServer

    config = ServingConfig(
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        queue_capacity=args.queue_capacity,
        max_loaded_models=args.max_loaded_models,
        scheduling_policy=args.scheduling_policy,
        request_timeout_s=args.request_timeout_s,
        drain_timeout_s=args.drain_timeout_s,
        mmap_artifacts=args.mmap_artifacts,
    )
    if args.workers > 1:
        from repro.serving.cluster import ClusterServer

        warm_up = [name for name in (args.warm_up or "").split(",") if name]
        cluster = ClusterServer(
            args.registry,
            config=config,
            host=args.host,
            port=args.port,
            n_workers=args.workers,
            reuse_port=False if args.no_reuse_port else None,
            warm_up=warm_up,
        )
        cluster.start()
        mode = "SO_REUSEPORT" if cluster.reuse_port else "balancer"
        _log(
            f"serving registry {args.registry} with {args.workers} workers "
            f"({mode}) on http://{cluster.host}:{cluster.port} "
            f"(policy={config.scheduling_policy}); Ctrl-C to stop"
        )
        cluster.serve_forever()
        _log("cluster stopped")
        return 0
    server = HTTPServingServer(
        args.registry, config=config, host=args.host, port=args.port
    )
    server.start()
    try:
        if args.warm_up:
            names = [name for name in args.warm_up.split(",") if name]
            report = server.router.warm_up(names)
            if report.loaded:
                _log(
                    "warmed up "
                    + ", ".join(f"{n} v{v}" for n, v in report.loaded)
                )
            for name, exc in report.errors.items():
                # a broken model is logged, not fatal: the healthy fleet
                # still serves
                _log(f"warm-up failed for {name}: {type(exc).__name__}: {exc}")
    except Exception:
        server.close()
        raise
    _log(
        f"serving registry {args.registry} on http://{server.host}:{server.port} "
        f"(policy={config.scheduling_policy}); Ctrl-C to stop"
    )

    # SIGTERM (the polite supervisor kill) should drain and exit 0 just
    # like Ctrl-C: with --drain-timeout-s the server refuses new work,
    # serves out in-flight requests and open streams, and sheds whatever
    # outlives the deadline.
    def _interrupt(*_):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _interrupt)
    server.serve_forever(drain_timeout_s=args.drain_timeout_s)
    _log("server stopped")
    return 0


# ------------------------------------------------------------------ #
# bench
# ------------------------------------------------------------------ #
def _cmd_bench(args: argparse.Namespace) -> int:
    model = _load_registered(args)
    hmm = resolve_hmm(model)
    _, sequences = hmm.sample_dataset(args.requests, args.length, seed=args.seed)

    started = time.perf_counter()
    sequential = [hmm.decode(seq) for seq in sequences]
    sequential_seconds = time.perf_counter() - started

    config = ServingConfig(max_batch_size=args.max_batch_size, max_wait_ms=args.max_wait_ms)
    with TaggingService(hmm, config=config) as service:
        started = time.perf_counter()
        batched = service.tag_many(sequences)
        batched_seconds = time.perf_counter() - started
        stats = service.stats.snapshot()

    mismatches = sum(
        0 if np.array_equal(a, b) else 1 for a, b in zip(sequential, batched)
    )
    n_tokens = sum(len(seq) for seq in sequences)
    latency = stats["latency"]
    report = {
        "requests": args.requests,
        "tokens": n_tokens,
        "sequential_seconds": sequential_seconds,
        "service_seconds": batched_seconds,
        "speedup": sequential_seconds / max(batched_seconds, 1e-12),
        "sequential_tokens_per_second": n_tokens / max(sequential_seconds, 1e-12),
        "service_tokens_per_second": n_tokens / max(batched_seconds, 1e-12),
        "mean_batch_size": stats["mean_batch_size"],
        "max_batch_size": stats["max_batch_size"],
        "path_mismatches": mismatches,
        # per-request percentiles from the service's latency histogram —
        # the same machinery (and numbers) as the HTTP /metrics endpoint
        "latency_ms": {
            "p50": latency["p50_ms"],
            "p95": latency["p95_ms"],
            "p99": latency["p99_ms"],
            "max": latency["max_ms"],
        },
    }
    _log(_latency_summary(latency))
    text = json.dumps(report, indent=2)
    if args.out:
        Path(args.out).write_text(text + "\n")
        _log(f"wrote benchmark report to {args.out}")
    print(text)
    return 0


# ------------------------------------------------------------------ #
# Argument parsing
# ------------------------------------------------------------------ #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Fit, persist and serve diversified-HMM taggers.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fit = sub.add_parser("fit", help="train a model on a bundled synthetic dataset")
    fit.add_argument("--dataset", choices=("toy", "pos", "ocr"), required=True)
    fit.add_argument("--alpha", type=float, default=0.0, help="diversity prior weight (0 = plain HMM)")
    fit.add_argument("--n-sequences", type=int, default=120)
    fit.add_argument("--vocabulary-size", type=int, default=300, help="pos dataset only")
    fit.add_argument("--max-em-iter", type=int, default=10)
    fit.add_argument("--seed", type=int, default=0)
    fit.add_argument("--registry", help="registry root to save into")
    fit.add_argument("--name", help="model name inside the registry")
    fit.add_argument("--out", help="bare artifact directory to save into")
    fit.add_argument("--sample-out", help="write sample input sequences (JSON lines) here")
    fit.add_argument("--sample-count", type=int, default=8)
    fit.set_defaults(func=_cmd_fit)

    save = sub.add_parser("save", help="import an artifact directory into a registry")
    save.add_argument("--artifact", required=True)
    save.add_argument("--registry", required=True)
    save.add_argument("--name", required=True)
    save.set_defaults(func=_cmd_save)

    tag = sub.add_parser("tag", help="tag JSON-lines sequences with a registered model")
    tag.add_argument("--registry", required=True)
    tag.add_argument("--name", required=True)
    tag.add_argument("--version", type=int, default=None)
    tag.add_argument("--input", required=True, help="JSON-lines file of sequences ('-' = stdin)")
    tag.add_argument("--output", help="write tag lines here instead of stdout")
    serving_defaults = ServingConfig()
    tag.add_argument("--streaming", action="store_true", help="decode token-by-token")
    tag.add_argument("--lag", type=int, default=None, help="fixed lag for --streaming")
    tag.add_argument(
        "--service",
        action="store_true",
        help="decode through the micro-batching TaggingService instead of "
        "the offline compiled-corpus path",
    )
    tag.add_argument("--max-batch-size", type=int, default=serving_defaults.max_batch_size)
    tag.add_argument("--max-wait-ms", type=float, default=serving_defaults.max_wait_ms)
    tag.add_argument(
        "--batch-size",
        type=int,
        default=256,
        help="sequences read + decoded per batch; bounds peak memory on "
        "large input files (the file is consumed lazily, one batch at a time)",
    )
    tag.set_defaults(func=_cmd_tag)

    route = sub.add_parser(
        "route", help="serve multi-model JSON-lines requests through one routed queue"
    )
    route.add_argument("--registry", required=True)
    route.add_argument(
        "--input",
        required=True,
        help="JSON-lines file of {'model':..,'sequence':..} requests ('-' = stdin)",
    )
    route.add_argument("--output", help="write JSON-lines results here instead of stdout")
    route.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="default per-request deadline (requests may override)",
    )
    route.add_argument(
        "--queue-capacity", type=int, default=serving_defaults.queue_capacity
    )
    route.add_argument(
        "--max-loaded-models", type=int, default=serving_defaults.max_loaded_models
    )
    route.add_argument("--max-batch-size", type=int, default=serving_defaults.max_batch_size)
    route.add_argument("--max-wait-ms", type=float, default=serving_defaults.max_wait_ms)
    route.add_argument(
        "--scheduling-policy",
        choices=SCHEDULING_POLICIES,
        default=serving_defaults.scheduling_policy,
        help="how pending requests are ordered into micro-batches",
    )
    route.add_argument(
        "--retries",
        type=int,
        default=0,
        help="extra attempts per request for transient failures (queue-full "
        "backpressure, open circuit breakers); 0 disables retries",
    )
    route.add_argument(
        "--retry-backoff-ms",
        type=float,
        default=25.0,
        help="initial exponential backoff between retries",
    )
    route.add_argument(
        "--stats",
        action="store_true",
        help="print the final ServiceStats snapshot as JSON (on stdout when "
        "results go to --output, on stderr when results own stdout)",
    )
    route.set_defaults(func=_cmd_route)

    serve = sub.add_parser(
        "serve", help="HTTP front end (tag/score/stream/stats/health) over a registry"
    )
    serve.add_argument("--registry", required=True)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765, help="0 picks an ephemeral port")
    serve.add_argument(
        "--warm-up",
        help="comma-separated model names to preload before serving traffic",
    )
    serve.add_argument(
        "--queue-capacity", type=int, default=serving_defaults.queue_capacity
    )
    serve.add_argument(
        "--max-loaded-models", type=int, default=serving_defaults.max_loaded_models
    )
    serve.add_argument("--max-batch-size", type=int, default=serving_defaults.max_batch_size)
    serve.add_argument("--max-wait-ms", type=float, default=serving_defaults.max_wait_ms)
    serve.add_argument(
        "--scheduling-policy",
        choices=SCHEDULING_POLICIES,
        default=serving_defaults.scheduling_policy,
        help="how pending requests are ordered into micro-batches",
    )
    serve.add_argument(
        "--request-timeout-s",
        type=float,
        default=serving_defaults.request_timeout_s,
        help="per-request HTTP bridge timeout (503 + Retry-After on expiry)",
    )
    serve.add_argument(
        "--drain-timeout-s",
        type=float,
        default=None,
        help="graceful-drain budget on SIGTERM/Ctrl-C: refuse new work, "
        "serve accepted requests up to this many seconds, shed the rest "
        "(default: hard shutdown after the classic flush)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes; >1 runs a multi-process cluster sharing "
        "the port (SO_REUSEPORT where supported, else a built-in balancer)",
    )
    serve.add_argument(
        "--no-reuse-port",
        action="store_true",
        help="force the balancer fallback even where SO_REUSEPORT works "
        "(enables sticky stream routing across plain connections)",
    )
    serve.add_argument(
        "--mmap-artifacts",
        action="store_true",
        help="memory-map schema-v3 model parameters read-only so worker "
        "processes share page-cache pages instead of private copies",
    )
    serve.set_defaults(func=_cmd_serve)

    bench = sub.add_parser("bench", help="micro-batched service vs sequential decode")
    bench.add_argument("--registry", required=True)
    bench.add_argument("--name", required=True)
    bench.add_argument("--version", type=int, default=None)
    bench.add_argument("--requests", type=int, default=200)
    bench.add_argument("--length", type=int, default=12)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--max-batch-size", type=int, default=serving_defaults.max_batch_size)
    bench.add_argument("--max-wait-ms", type=float, default=serving_defaults.max_wait_ms)
    bench.add_argument("--out", help="also write the JSON report to this path")
    bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "fit" and not (args.registry or args.out):
        parser.error("fit requires --registry/--name or --out")
    if args.command == "fit" and args.registry and not args.name:
        parser.error("--registry requires --name")
    try:
        return args.func(args)
    except ReproError as exc:
        _log(f"error: {exc}")
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
