"""Multi-model routed serving: every registry model behind one queue.

:class:`Router` generalizes :class:`~repro.serving.service.TaggingService`
from one model to a whole :class:`~repro.serving.registry.ModelRegistry`:
requests carry a ``(name, version)`` routing key, a single bounded queue
feeds a single dispatcher thread, and the dispatcher coalesces each drained
micro-batch *per model* so every group still becomes one batched engine
call.  Models are loaded lazily from the registry on first use and kept in
an LRU cache of at most ``ServingConfig.max_loaded_models`` resident
models — cold models cost one artifact load, hot models nothing.

Backpressure and deadlines are inherited from the shared dispatcher
machinery: the queue is bounded (``ServingConfig.queue_capacity``,
fast-fail :class:`~repro.exceptions.QueueFullError`) and per-request
``deadline_ms`` drops expired requests before any engine work
(:class:`~repro.exceptions.DeadlineExceededError`).

Version resolution happens at submit time — ``version=None`` pins the
request to the registry's latest version *at that moment* — so every
queued request has a concrete routing key and per-model grouping is exact
even while new versions are being saved concurrently.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.config import ServingConfig
from repro.serving.registry import ModelRegistry
from repro.serving.scheduler import _SCORE, _TAG, MicroBatchScheduler, Request
from repro.serving.service import _ModelExecutor

#: internal request kind for Router.warm_up: load the executor, compute
#: nothing.
_WARM = "warm"


class Router(MicroBatchScheduler):
    """Routed, load-aware tagging service over a model registry.

    Parameters
    ----------
    registry:
        A :class:`~repro.serving.registry.ModelRegistry` or its root path.
    config:
        Batching, backpressure and cache knobs (``max_batch_size``,
        ``max_wait_ms``, ``queue_capacity``, ``max_loaded_models``);
        defaults to the process-wide serving configuration.

    Examples
    --------
    >>> with Router("./registry") as router:                 # doctest: +SKIP
    ...     future = router.submit_tag("pos-tagger", sequence, deadline_ms=50)
    ...     labels = future.result()
    """

    _thread_name = "repro-serving-router"

    def __init__(
        self,
        registry: ModelRegistry | str | Path,
        config: ServingConfig | None = None,
    ) -> None:
        super().__init__(config)
        if not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry)
        self.registry = registry
        #: LRU of resident models, keyed by ``(name, version)``; mutated by
        #: the dispatcher thread, read by ``loaded_models`` from any thread.
        self._executors: OrderedDict[tuple[str, int], _ModelExecutor] = OrderedDict()
        self._executors_lock = threading.Lock()
        self._start()

    # -------------------------------------------------------------- #
    # Client API
    # -------------------------------------------------------------- #
    def _resolve_key(self, name: str, version: int | None) -> tuple[str, int]:
        """Pin a request to a concrete ``(name, version)`` at submit time.

        Unknown names/versions fail here, in the client thread, instead of
        poisoning a queued batch.  Explicit versions that are already
        resident skip the registry I/O entirely (version directories are
        immutable, so residency proves existence); ``version=None`` always
        rescans so "latest" means latest *now*, not latest-at-load-time —
        pin a version to avoid the per-request directory scan.
        """
        if version is None:
            return (name, int(self.registry.latest_version(name)))
        key = (name, int(version))
        with self._executors_lock:
            if key in self._executors:
                return key
        # Validates existence (raises ValidationError otherwise).
        self.registry.artifact_path(name, version)
        return key

    def submit_tag(
        self,
        name: str,
        sequence: np.ndarray,
        version: int | None = None,
        deadline_ms: float | None = None,
    ) -> Future:
        """Enqueue a Viterbi tagging request against one registry model."""
        key = self._resolve_key(name, version)
        return self._enqueue(_TAG, sequence, deadline_ms=deadline_ms, key=key)

    def submit_score(
        self,
        name: str,
        sequence: np.ndarray,
        version: int | None = None,
        deadline_ms: float | None = None,
    ) -> Future:
        """Enqueue a scoring request against one registry model."""
        key = self._resolve_key(name, version)
        return self._enqueue(_SCORE, sequence, deadline_ms=deadline_ms, key=key)

    def tag(self, name: str, sequence: np.ndarray, **kwargs) -> np.ndarray:
        """Synchronous tag through the routed queue."""
        return self.submit_tag(name, sequence, **kwargs).result()

    def score(self, name: str, sequence: np.ndarray, **kwargs) -> float:
        """Synchronous score through the routed queue."""
        return self.submit_score(name, sequence, **kwargs).result()

    def tag_many(
        self, name: str, sequences: Sequence[np.ndarray], **kwargs
    ) -> list[np.ndarray]:
        """Submit many tagging requests for one model; gather all results."""
        futures = [self.submit_tag(name, seq, **kwargs) for seq in sequences]
        return [future.result() for future in futures]

    def score_many(
        self, name: str, sequences: Sequence[np.ndarray], **kwargs
    ) -> list[float]:
        """Submit many scoring requests for one model; gather all results."""
        futures = [self.submit_score(name, seq, **kwargs) for seq in sequences]
        return [future.result() for future in futures]

    def loaded_models(self) -> list[tuple[str, int]]:
        """Resident ``(name, version)`` keys, least recently used first."""
        with self._executors_lock:
            return list(self._executors)

    def warm_up(
        self,
        names: Sequence[str | tuple[str, int | None]],
        timeout: float | None = 30.0,
    ) -> list[tuple[str, int]]:
        """Preload hot models before first traffic; returns the loaded keys.

        Each entry is a model name (latest version) or a ``(name, version)``
        pair.  Loading happens on the dispatcher thread — warm-up requests
        go through the same queue as traffic, so there is no concurrent
        artifact I/O against the executor cache — and this call blocks
        until every requested model is resident (or ``timeout`` expires).
        Listing more models than ``ServingConfig.max_loaded_models`` is
        allowed but pointless: the earliest ones are evicted again before
        this returns.
        """
        futures = []
        for entry in names:
            name, version = entry if isinstance(entry, tuple) else (entry, None)
            key = self._resolve_key(name, version)
            futures.append(
                self._enqueue(_WARM, np.zeros(1, dtype=np.int64), key=key)
            )
        return [future.result(timeout=timeout) for future in futures]

    # -------------------------------------------------------------- #
    # Dispatcher side
    # -------------------------------------------------------------- #
    def _executor_for(self, key: tuple[str, int]) -> _ModelExecutor:
        """The resident executor for ``key``, loading/evicting as needed."""
        with self._executors_lock:
            executor = self._executors.get(key)
            if executor is not None:
                self._executors.move_to_end(key)
                return executor
        # Artifact I/O happens outside the lock; only the dispatcher thread
        # loads, so there is no duplicate-load race.
        name, version = key
        executor = _ModelExecutor(self.registry.load(name, version))
        self.stats.record_model_load()
        with self._executors_lock:
            self._executors[key] = executor
            while len(self._executors) > self.config.max_loaded_models:
                self._executors.popitem(last=False)
                self.stats.record_model_eviction()
        return executor

    def _execute(self, batch: list[Request]) -> None:
        # Group per routing key, preserving batch order inside each group,
        # so one drained micro-batch becomes one coalesced engine call per
        # distinct model.
        groups: OrderedDict[tuple[str, int], list[Request]] = OrderedDict()
        for request in batch:
            groups.setdefault(request.key, []).append(request)
        for key, group in groups.items():
            try:
                executor = self._executor_for(key)
            except Exception as exc:
                # Loading failed (artifact vanished, corrupt manifest, ...):
                # fail this group's requests, keep serving the others.
                for request in group:
                    if request.future.set_running_or_notify_cancel():
                        request.future.set_exception(exc)
                continue
            # Warm-up requests only needed the load above; resolve them and
            # keep the engine out of it.
            compute = []
            for request in group:
                if request.kind == _WARM:
                    if request.future.set_running_or_notify_cancel():
                        request.future.set_result(key)
                else:
                    compute.append(request)
            # Deadlines were checked when the batch was drained, but an
            # earlier group's compute (or this group's cold-model load) may
            # have outlived a later group's deadline — re-check immediately
            # before the engine call so the "expired requests never reach
            # the engine" guarantee holds per group, not just per batch.
            compute = self._drop_expired(compute)
            if compute:
                executor.run(compute, self.stats)
