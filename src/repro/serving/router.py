"""Multi-model routed serving: every registry model behind one queue.

:class:`Router` generalizes :class:`~repro.serving.service.TaggingService`
from one model to a whole :class:`~repro.serving.registry.ModelRegistry`:
requests carry a ``(name, version)`` routing key, a single bounded queue
feeds a single dispatcher thread, and the dispatcher coalesces each drained
micro-batch *per model* so every group still becomes one batched engine
call.  Models are loaded lazily from the registry on first use and kept in
an LRU cache of at most ``ServingConfig.max_loaded_models`` resident
models — cold models cost one artifact load, hot models nothing.

Backpressure and deadlines are inherited from the shared dispatcher
machinery: the queue is bounded (``ServingConfig.queue_capacity``,
fast-fail :class:`~repro.exceptions.QueueFullError`) and per-request
``deadline_ms`` drops expired requests before any engine work
(:class:`~repro.exceptions.DeadlineExceededError`).

Version resolution happens at submit time — ``version=None`` pins the
request to the registry's latest version *at that moment* — so every
queued request has a concrete routing key and per-model grouping is exact
even while new versions are being saved concurrently.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.analysis.lockorder import make_lock
from repro.core.config import ServingConfig
from repro.exceptions import ModelUnavailableError
from repro.serving.registry import ModelRegistry
from repro.serving.scheduler import (
    _SCORE,
    _TAG,
    MicroBatchScheduler,
    Request,
    _model_label,
)
from repro.serving.service import _ModelExecutor

#: internal request kind for Router.warm_up: load the executor, compute
#: nothing.
_WARM = "warm"

#: circuit-breaker states
_CLOSED = "closed"
_OPEN = "open"
_HALF_OPEN = "half_open"


class _CircuitBreaker:
    """Per-``(name, version)`` failure accounting (state under the router's
    breaker lock).

    ``closed`` (normal) counts consecutive load/execute failures; at
    ``ServingConfig.breaker_threshold`` it trips ``open`` and requests for
    the key fast-fail without touching the registry.  After
    ``breaker_cooldown_s`` one dispatcher-side probe is let through
    (``half_open``): success re-closes the breaker, failure re-opens it for
    another full cooldown.
    """

    __slots__ = ("state", "consecutive_failures", "opened_at", "n_trips")

    def __init__(self) -> None:
        self.state = _CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.n_trips = 0


@dataclass
class WarmUpReport:
    """Per-model outcome of :meth:`Router.warm_up`.

    ``loaded`` holds the resident ``(name, version)`` keys in request
    order; ``errors`` maps each failed entry's model name to the exception
    it raised.  One corrupt artifact no longer aborts warm-up of the
    healthy fleet — iterate the report (or check :attr:`ok`) instead of
    assuming everything loaded.
    """

    loaded: list[tuple[str, int]] = field(default_factory=list)
    errors: dict[str, Exception] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every requested model loaded."""
        return not self.errors

    def __iter__(self):
        return iter(self.loaded)

    def __len__(self) -> int:
        return len(self.loaded)


class Router(MicroBatchScheduler):
    """Routed, load-aware tagging service over a model registry.

    Parameters
    ----------
    registry:
        A :class:`~repro.serving.registry.ModelRegistry` or its root path.
    config:
        Batching, backpressure and cache knobs (``max_batch_size``,
        ``max_wait_ms``, ``queue_capacity``, ``max_loaded_models``);
        defaults to the process-wide serving configuration.

    Examples
    --------
    >>> with Router("./registry") as router:                 # doctest: +SKIP
    ...     future = router.submit_tag("pos-tagger", sequence, deadline_ms=50)
    ...     labels = future.result()
    """

    _thread_name = "repro-serving-router"

    def __init__(
        self,
        registry: ModelRegistry | str | Path,
        config: ServingConfig | None = None,
    ) -> None:
        super().__init__(config)
        if not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry)
        self.registry = registry
        self._executors_lock = make_lock("router.executors")
        self._breakers_lock = make_lock("router.breakers")
        #: LRU of resident models, keyed by ``(name, version)``; mutated by
        #: the dispatcher thread, read by ``loaded_models`` from any thread.
        #: Invariant: no stats method is ever called while holding either
        #: lock below (snapshot's extra callback takes the breakers lock
        #: under the stats lock, so the reverse order would deadlock; the
        #: lock-order tracker enforces stats -> breakers).
        self._executors: OrderedDict[tuple[str, int], _ModelExecutor] = (
            OrderedDict()
        )  # repro: guarded-by[_executors_lock]
        #: per-key circuit breakers.
        self._breakers: dict[tuple[str, int], _CircuitBreaker] = (
            {}
        )  # repro: guarded-by[_breakers_lock]
        self._start()

    # -------------------------------------------------------------- #
    # Client API
    # -------------------------------------------------------------- #
    def _resolve_key(
        self, name: str, version: int | None, check_breaker: bool = True
    ) -> tuple[str, int]:
        """Pin a request to a concrete ``(name, version)`` at submit time.

        Unknown names/versions fail here, in the client thread, instead of
        poisoning a queued batch.  Explicit versions that are already
        resident skip the registry I/O entirely (version directories are
        immutable, so residency proves existence); ``version=None`` always
        rescans so "latest" means latest *now*, not latest-at-load-time —
        pin a version to avoid the per-request directory scan.

        A key whose circuit breaker is open (and still cooling down)
        fast-fails right here with
        :class:`~repro.exceptions.ModelUnavailableError`: no registry I/O,
        no queue slot.  ``check_breaker=False`` (warm-up) skips that, so an
        operator can always force a probe.
        """
        if version is None:
            key = (name, int(self.registry.latest_version(name)))
            if check_breaker:
                self._check_breaker(key)
            return key
        key = (name, int(version))
        if check_breaker:
            self._check_breaker(key)
        with self._executors_lock:
            if key in self._executors:
                return key
        # Validates existence (raises ValidationError otherwise).
        self.registry.artifact_path(name, version)
        return key

    # -------------------------------------------------------------- #
    # Circuit breakers
    # -------------------------------------------------------------- #
    def _check_breaker(self, key: tuple[str, int]) -> None:
        """Fast-fail (client thread) while ``key``'s breaker is cooling down."""
        with self._breakers_lock:
            breaker = self._breakers.get(key)
            if breaker is None or breaker.state != _OPEN:
                return
            remaining = (
                breaker.opened_at + self.config.breaker_cooldown_s
                - time.perf_counter()
            )
        if remaining > 0:
            raise ModelUnavailableError(
                f"circuit breaker for model {_model_label(key)} is open after "
                f"{self.config.breaker_threshold} consecutive failures; "
                f"retry in {remaining:.2f}s",
                retry_after_s=remaining,
            )
        # Cooldown elapsed: let the request through; the dispatcher turns
        # it into the half-open probe.

    def _breaker_failure(self, key: tuple[str, int]) -> None:
        """Record a load/execute failure; trip the breaker at the threshold."""
        with self._breakers_lock:
            breaker = self._breakers.setdefault(key, _CircuitBreaker())
            breaker.consecutive_failures += 1
            trip = breaker.state == _HALF_OPEN or (
                breaker.state == _CLOSED
                and breaker.consecutive_failures >= self.config.breaker_threshold
            )
            if trip:
                breaker.state = _OPEN
                breaker.opened_at = time.perf_counter()
                breaker.n_trips += 1

    def _breaker_success(self, key: tuple[str, int]) -> None:
        """A healthy load+execute: reset the count, re-close after a probe."""
        with self._breakers_lock:
            breaker = self._breakers.get(key)
            if breaker is not None:
                breaker.consecutive_failures = 0
                breaker.state = _CLOSED

    def breaker_states(self) -> dict[str, dict]:
        """Per-model breaker state/failure-count/trip-count (any thread)."""
        with self._breakers_lock:
            return {
                _model_label(key): {
                    "state": breaker.state,
                    "consecutive_failures": breaker.consecutive_failures,
                    "n_trips": breaker.n_trips,
                }
                for key, breaker in self._breakers.items()
            }

    def _stats_extra(self) -> dict:
        extra = super()._stats_extra()
        extra["breakers"] = self.breaker_states()
        return extra

    def submit_tag(
        self,
        name: str,
        sequence: np.ndarray,
        version: int | None = None,
        deadline_ms: float | None = None,
        trace_id: str | None = None,
    ) -> Future:
        """Enqueue a Viterbi tagging request against one registry model."""
        key = self._resolve_key(name, version)
        return self._enqueue(
            _TAG, sequence, deadline_ms=deadline_ms, key=key, trace_id=trace_id
        )

    def submit_score(
        self,
        name: str,
        sequence: np.ndarray,
        version: int | None = None,
        deadline_ms: float | None = None,
        trace_id: str | None = None,
    ) -> Future:
        """Enqueue a scoring request against one registry model."""
        key = self._resolve_key(name, version)
        return self._enqueue(
            _SCORE, sequence, deadline_ms=deadline_ms, key=key, trace_id=trace_id
        )

    def tag(self, name: str, sequence: np.ndarray, **kwargs) -> np.ndarray:
        """Synchronous tag through the routed queue."""
        return self.submit_tag(name, sequence, **kwargs).result()

    def score(self, name: str, sequence: np.ndarray, **kwargs) -> float:
        """Synchronous score through the routed queue."""
        return self.submit_score(name, sequence, **kwargs).result()

    def tag_many(
        self, name: str, sequences: Sequence[np.ndarray], **kwargs
    ) -> list[np.ndarray]:
        """Submit many tagging requests for one model; gather all results."""
        futures = [self.submit_tag(name, seq, **kwargs) for seq in sequences]
        return [future.result() for future in futures]

    def score_many(
        self, name: str, sequences: Sequence[np.ndarray], **kwargs
    ) -> list[float]:
        """Submit many scoring requests for one model; gather all results."""
        futures = [self.submit_score(name, seq, **kwargs) for seq in sequences]
        return [future.result() for future in futures]

    def loaded_models(self) -> list[tuple[str, int]]:
        """Resident ``(name, version)`` keys, least recently used first."""
        with self._executors_lock:
            return list(self._executors)

    def warm_up(
        self,
        names: Sequence[str | tuple[str, int | None]],
        timeout: float | None = 30.0,
    ) -> WarmUpReport:
        """Preload hot models before first traffic; per-model outcomes.

        Each entry is a model name (latest version) or a ``(name, version)``
        pair.  Loading happens on the dispatcher thread — warm-up requests
        go through the same queue as traffic, so there is no concurrent
        artifact I/O against the executor cache — and this call blocks
        until every requested model is resident or failed (or ``timeout``
        expires).  A broken entry (unknown name, corrupt artifact) lands in
        :attr:`WarmUpReport.errors` instead of aborting the rest: one bad
        artifact cannot block warm-up of the healthy fleet.  Warm-up
        ignores open circuit breakers on the submit side, so it doubles as
        a manual recovery probe.  Listing more models than
        ``ServingConfig.max_loaded_models`` is allowed but pointless: the
        earliest ones are evicted again before this returns.
        """
        report = WarmUpReport()
        futures: list[tuple[str, Future]] = []
        for entry in names:
            name, version = entry if isinstance(entry, tuple) else (entry, None)
            try:
                key = self._resolve_key(name, version, check_breaker=False)
                future = self._enqueue(_WARM, np.zeros(1, dtype=np.int64), key=key)
            except Exception as exc:
                report.errors[name] = exc
                continue
            futures.append((name, future))
        for name, future in futures:
            try:
                report.loaded.append(future.result(timeout=timeout))
            except Exception as exc:
                report.errors[name] = exc
        return report

    # -------------------------------------------------------------- #
    # Dispatcher side
    # -------------------------------------------------------------- #
    def _executor_for(self, key: tuple[str, int]) -> _ModelExecutor:
        """The resident executor for ``key``, loading/evicting as needed.

        The dispatcher-side breaker gate: while the key's breaker is open
        and cooling down this raises
        :class:`~repro.exceptions.ModelUnavailableError` *before* any
        registry read; once the cooldown has elapsed the breaker moves to
        half-open and this call proceeds as the probe.
        """
        with self._breakers_lock:
            breaker = self._breakers.get(key)
            if breaker is not None and breaker.state == _OPEN:
                remaining = (
                    breaker.opened_at + self.config.breaker_cooldown_s
                    - time.perf_counter()
                )
                if remaining > 0:
                    raise ModelUnavailableError(
                        f"circuit breaker for model {_model_label(key)} is "
                        f"open; retry in {remaining:.2f}s",
                        retry_after_s=remaining,
                    )
                breaker.state = _HALF_OPEN
        with self._executors_lock:
            executor = self._executors.get(key)
            if executor is not None:
                self._executors.move_to_end(key)
                return executor
        # Artifact I/O happens outside the lock; only the dispatcher thread
        # loads, so there is no duplicate-load race.  mmap is only forwarded
        # when enabled, so registries with a plain (name, version) load
        # signature keep working.
        name, version = key
        if self.config.mmap_artifacts:
            model = self.registry.load(name, version, mmap=True)
        else:
            model = self.registry.load(name, version)
        executor = _ModelExecutor(model)
        self.stats.record_model_load()
        n_evicted = 0
        with self._executors_lock:
            self._executors[key] = executor
            while len(self._executors) > self.config.max_loaded_models:
                self._executors.popitem(last=False)
                n_evicted += 1
        # Recorded after releasing the executors lock: stats methods take
        # the stats lock, and a lock held while calling into stats would
        # invert the documented stats-first order.
        for _ in range(n_evicted):
            self.stats.record_model_eviction()
        return executor

    def _execute(self, batch: list[Request]) -> None:
        # Group per routing key, preserving batch order inside each group,
        # so one drained micro-batch becomes one coalesced engine call per
        # distinct model.
        groups: OrderedDict[tuple[str, int], list[Request]] = OrderedDict()
        for request in batch:
            assert request.key is not None, "router requests always carry a key"
            groups.setdefault(request.key, []).append(request)
        for key, group in groups.items():
            try:
                executor = self._executor_for(key)
            except Exception as exc:
                # Loading failed (artifact vanished, corrupt manifest, ...)
                # or the breaker fast-failed: resolve this group's requests,
                # keep serving the others.  A breaker fast-fail is not a
                # *new* model failure — only real load attempts count.
                if not isinstance(exc, ModelUnavailableError):
                    self._breaker_failure(key)
                for request in group:
                    if request.future.set_running_or_notify_cancel():
                        request.future.set_exception(exc)
                continue
            # Warm-up requests only needed the load above; resolve them and
            # keep the engine out of it.
            compute = []
            for request in group:
                if request.kind == _WARM:
                    if request.future.set_running_or_notify_cancel():
                        request.future.set_result(key)
                else:
                    compute.append(request)
            # Deadlines were checked when the batch was drained, but an
            # earlier group's compute (or this group's cold-model load) may
            # have outlived a later group's deadline — re-check immediately
            # before the engine call so the "expired requests never reach
            # the engine" guarantee holds per group, not just per batch.
            compute = self._drop_expired(compute)
            try:
                if compute:
                    executor.run(compute, self.stats, policy=self.scheduling_policy)
            except Exception as exc:
                # The whole engine call hard-failed (per-request problems
                # are isolated inside run()): that's a model-level failure.
                self._breaker_failure(key)
                for request in compute:
                    future = request.future
                    if future.done():
                        continue
                    if future.set_running_or_notify_cancel():
                        future.set_exception(exc)
                continue
            self._breaker_success(key)
