"""Micro-batching tagging service: concurrent requests, coalesced decodes.

:class:`TaggingService` turns the batched :class:`~repro.hmm.engine.InferenceEngine`
from an offline trick into a serving primitive.  Clients submit individual
tag (Viterbi) or score (log-likelihood) requests and get
:class:`concurrent.futures.Future` handles back; a single dispatcher thread
drains the queue, coalesces up to ``max_batch_size`` requests (waiting at
most ``max_wait_ms`` for stragglers after the first arrival) and runs each
micro-batch through one engine call, where the length-bucketed backend does
the heavy lifting.  Per-request decoding pays the engine's per-call Python
overhead on every sequence; micro-batching amortizes it across the batch —
that gap is measured by ``benchmarks/test_bench_serving.py``.

The dispatcher is a single thread, so the engine and its parameter cache
are used from one thread only; submission is thread-safe and can come from
any number of client threads.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.config import ServingConfig, get_serving_config
from repro.exceptions import ValidationError
from repro.serving.persistence import resolve_hmm

_TAG = "tag"
_SCORE = "score"


@dataclass
class _Request:
    kind: str
    sequence: np.ndarray
    future: Future


class ServiceStats:
    """Running throughput / batch-occupancy counters (thread-safe snapshots)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started_at = time.perf_counter()
        self.n_requests = 0
        self.n_batches = 0
        self.n_tokens = 0
        self.max_batch_size = 0
        self.busy_seconds = 0.0

    def record_batch(self, n_requests: int, n_tokens: int, seconds: float) -> None:
        with self._lock:
            self.n_requests += n_requests
            self.n_batches += 1
            self.n_tokens += n_tokens
            self.max_batch_size = max(self.max_batch_size, n_requests)
            self.busy_seconds += seconds

    def snapshot(self) -> dict:
        """Point-in-time stats dict (safe to call from any thread)."""
        with self._lock:
            wall = time.perf_counter() - self.started_at
            batches = max(self.n_batches, 1)
            busy = max(self.busy_seconds, 1e-12)
            return {
                "n_requests": self.n_requests,
                "n_batches": self.n_batches,
                "n_tokens": self.n_tokens,
                "mean_batch_size": self.n_requests / batches,
                "max_batch_size": self.max_batch_size,
                "busy_seconds": self.busy_seconds,
                "wall_seconds": wall,
                "tokens_per_busy_second": self.n_tokens / busy,
            }


class TaggingService:
    """Queue-and-coalesce front end over one model's inference engine.

    Parameters
    ----------
    model:
        An :class:`~repro.hmm.model.HMM` or a fitted estimator wrapper.
    config:
        Batching knobs (``max_batch_size``, ``max_wait_ms``); defaults to
        the process-wide :func:`~repro.core.config.get_serving_config`.

    Use as a context manager (or call :meth:`close`) so the dispatcher
    thread is joined deterministically; queued requests are still served
    during shutdown.
    """

    def __init__(self, model: Any, config: ServingConfig | None = None) -> None:
        self._hmm = resolve_hmm(model)
        self._engine = self._hmm.inference_engine
        self.config = config or get_serving_config()
        self.stats = ServiceStats()
        # SimpleQueue: C-implemented put/get, noticeably cheaper per request
        # than queue.Queue (no task-tracking locks) on the submit hot path.
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._closed = False
        # Guards the closed-check-then-enqueue in _submit against close():
        # without it a request could land behind the shutdown sentinel and
        # its future would never resolve.
        self._lifecycle_lock = threading.Lock()
        self._dispatcher = threading.Thread(
            target=self._run, name="repro-tagging-service", daemon=True
        )
        self._dispatcher.start()

    # -------------------------------------------------------------- #
    # Client API
    # -------------------------------------------------------------- #
    def _submit(self, kind: str, sequence: np.ndarray) -> Future:
        seq = np.asarray(sequence)
        if seq.ndim < 1 or seq.shape[0] < 1:
            raise ValidationError(
                "requests must be sequences with at least one timestep, got "
                f"shape {seq.shape}"
            )
        future: Future = Future()
        with self._lifecycle_lock:
            if self._closed:
                raise ValidationError("TaggingService is closed")
            self._queue.put(_Request(kind=kind, sequence=seq, future=future))
        return future

    def submit_tag(self, sequence: np.ndarray) -> Future:
        """Enqueue a Viterbi tagging request; resolves to the label array."""
        return self._submit(_TAG, sequence)

    def submit_score(self, sequence: np.ndarray) -> Future:
        """Enqueue a scoring request; resolves to the log-likelihood float."""
        return self._submit(_SCORE, sequence)

    def tag(self, sequence: np.ndarray) -> np.ndarray:
        """Synchronous tag: submit and wait."""
        return self.submit_tag(sequence).result()

    def score(self, sequence: np.ndarray) -> float:
        """Synchronous score: submit and wait."""
        return self.submit_score(sequence).result()

    def tag_many(self, sequences: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Submit many tagging requests at once and gather all results.

        This is the high-throughput client pattern: all requests hit the
        queue immediately, so the dispatcher drains them in near-full
        micro-batches.
        """
        futures = [self.submit_tag(seq) for seq in sequences]
        return [future.result() for future in futures]

    def score_many(self, sequences: Sequence[np.ndarray]) -> list[float]:
        """Submit many scoring requests at once and gather all results."""
        futures = [self.submit_score(seq) for seq in sequences]
        return [future.result() for future in futures]

    # -------------------------------------------------------------- #
    # Dispatcher
    # -------------------------------------------------------------- #
    def _gather_batch(self, first: _Request) -> tuple[list[_Request], bool]:
        """Coalesce up to ``max_batch_size`` requests around ``first``.

        Returns the batch plus a flag signalling that the shutdown sentinel
        was consumed while gathering.
        """
        batch = [first]
        saw_sentinel = False
        deadline: float | None = None  # set lazily on the first empty poll
        while len(batch) < self.config.max_batch_size:
            try:
                # Fast path: drain whatever is already queued without
                # touching the clock — under burst load this fills the
                # whole batch with no timed waits at all.
                item = self._queue.get_nowait()
            except queue.Empty:
                if deadline is None:
                    deadline = time.perf_counter() + self.config.max_wait_ms / 1000.0
                timeout = deadline - time.perf_counter()
                if timeout <= 0:
                    break
                try:
                    item = self._queue.get(timeout=timeout)
                except queue.Empty:
                    break
            if item is None:
                saw_sentinel = True
                break
            batch.append(item)
        return batch, saw_sentinel

    def _process(self, batch: list[_Request]) -> None:
        started = time.perf_counter()
        try:
            outcomes = self._compute_coalesced(batch)
        except BaseException:
            # The batched call failed somewhere (typically one malformed
            # sequence poisoning the shared emission-table call).  Re-run
            # each request on its own so only the offending ones fail.
            outcomes = self._compute_individually(batch)
        # Record stats before resolving the futures: a client unblocked by
        # its result may snapshot the stats immediately, and the batch that
        # produced that result must already be counted.
        self.stats.record_batch(
            n_requests=len(batch),
            n_tokens=int(sum(r.sequence.shape[0] for r in batch)),
            seconds=time.perf_counter() - started,
        )
        for request, (ok, value) in zip(batch, outcomes):
            future = request.future
            # A client may have cancelled while the request was queued;
            # resolving a cancelled future raises InvalidStateError, which
            # would kill the dispatcher thread — skip those requests.
            if not future.set_running_or_notify_cancel():
                continue
            if ok:
                future.set_result(value)
            else:
                future.set_exception(value)

    def _compute_coalesced(self, batch: list[_Request]) -> list[tuple[bool, Any]]:
        """One engine call per request kind; results in batch order."""
        tables = self._hmm.emissions.log_likelihoods_batch(
            [request.sequence for request in batch]
        )
        tag_idx = [i for i, r in enumerate(batch) if r.kind == _TAG]
        score_idx = [i for i, r in enumerate(batch) if r.kind == _SCORE]
        outcomes: list[tuple[bool, Any]] = [(True, None)] * len(batch)
        if tag_idx:
            decoded = self._engine.viterbi_batch(
                self._hmm.startprob, self._hmm.transmat, [tables[i] for i in tag_idx]
            )
            for i, (path, _) in zip(tag_idx, decoded):
                outcomes[i] = (True, path)
        if score_idx:
            scores = self._engine.log_likelihood_batch(
                self._hmm.startprob, self._hmm.transmat, [tables[i] for i in score_idx]
            )
            for i, value in zip(score_idx, scores):
                outcomes[i] = (True, float(value))
        return outcomes

    def _compute_individually(self, batch: list[_Request]) -> list[tuple[bool, Any]]:
        """Slow path: isolate failures to the requests that caused them."""
        outcomes: list[tuple[bool, Any]] = []
        for request in batch:
            try:
                table = self._hmm.emissions.log_likelihoods(request.sequence)
                if request.kind == _TAG:
                    path, _ = self._engine.viterbi(
                        self._hmm.startprob, self._hmm.transmat, table
                    )
                    outcomes.append((True, path))
                else:
                    outcomes.append(
                        (
                            True,
                            self._engine.log_likelihood(
                                self._hmm.startprob, self._hmm.transmat, table
                            ),
                        )
                    )
            except BaseException as exc:
                outcomes.append((False, exc))
        return outcomes

    def _run(self) -> None:
        stopping = False
        while not stopping:
            item = self._queue.get()
            if item is None:
                break
            batch, stopping = self._gather_batch(item)
            self._process(batch)
        # Shutdown: serve whatever is still queued, in full batches.
        leftovers: list[_Request] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not None:
                leftovers.append(item)
        for start in range(0, len(leftovers), self.config.max_batch_size):
            self._process(leftovers[start : start + self.config.max_batch_size])

    # -------------------------------------------------------------- #
    def close(self, timeout: float | None = 10.0) -> None:
        """Stop accepting requests, flush the queue, join the dispatcher."""
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
            # The sentinel is enqueued under the lock, so it is guaranteed
            # to be the last item — every accepted request gets served.
            self._queue.put(None)
        self._dispatcher.join(timeout=timeout)

    def __enter__(self) -> "TaggingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
