"""Micro-batching tagging service: concurrent requests, coalesced decodes.

:class:`TaggingService` turns the batched :class:`~repro.hmm.engine.InferenceEngine`
from an offline trick into a serving primitive.  Clients submit individual
tag (Viterbi) or score (log-likelihood) requests and get
:class:`concurrent.futures.Future` handles back; the scheduling core
(:class:`~repro.serving.scheduler.MicroBatchScheduler`) coalesces them
into micro-batches and this module's :class:`_ModelExecutor` runs each
micro-batch through one engine call, where the length-bucketed backend
does the heavy lifting.  Per-request decoding pays the engine's per-call
Python overhead on every sequence; micro-batching amortizes it across the
batch — that gap is measured by ``benchmarks/test_bench_serving.py``.

Queueing policy — bounded-queue backpressure
(:class:`~repro.exceptions.QueueFullError`), per-request deadlines
(:class:`~repro.exceptions.DeadlineExceededError`), straggler coalescing
and the pluggable batch-ordering :class:`~repro.serving.scheduler.SchedulingPolicy`
(``ServingConfig.scheduling_policy``) — lives entirely in the scheduler
layer; this module contributes only the per-model compute (coalesced
engine calls with per-request failure isolation) that the multi-model
:class:`~repro.serving.router.Router` and the online
:class:`~repro.serving.streaming_service.StreamingService` share the
scheduler with.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from typing import Any, Sequence

import numpy as np

from repro.core.config import ServingConfig
from repro.serving import faults
from repro.serving.persistence import resolve_hmm
from repro.serving.scheduler import (
    _SCORE,
    _TAG,
    MicroBatchScheduler,
    Request,
    ServiceStats,
)

# Backward-compatible aliases: the dispatcher machinery moved to
# repro.serving.scheduler; the old private names keep working.
_MicroBatchDispatcher = MicroBatchScheduler
_Request = Request

__all__ = ["TaggingService", "ServiceStats"]


class _ModelExecutor:
    """Batched compute for one resolved model: coalesce, isolate failures.

    Holds the resolved :class:`~repro.hmm.model.HMM` and its engine; used
    from the single dispatcher thread only, so the engine's parameter
    cache stays single-threaded.
    """

    def __init__(self, model: Any) -> None:
        self._hmm = resolve_hmm(model)
        self._engine = self._hmm.inference_engine

    def run(
        self, batch: list[Request], stats: ServiceStats, policy: str | None = None
    ) -> None:
        """Compute one micro-batch and resolve its futures (stats first)."""
        started = time.perf_counter()
        # Fired before the isolation try-block: an injected executor fault
        # models the whole engine call hard-failing (not one bad sequence),
        # so it must propagate to the caller — the router's circuit breaker
        # or the scheduler's supervisor — instead of being re-run per
        # request.
        faults.fire(faults.EXECUTOR_RUN)
        try:
            outcomes = self._compute_coalesced(batch)
        except Exception:
            # The batched call failed somewhere (typically one malformed
            # sequence poisoning the shared emission-table call).  Re-run
            # each request on its own so only the offending ones fail.
            # Control-flow exceptions (KeyboardInterrupt, SystemExit) are
            # deliberately NOT caught: they must stop the dispatcher, not
            # be swallowed into a client future.
            outcomes = self._compute_individually(batch)
        # Record stats before resolving the futures: a client unblocked by
        # its result may snapshot the stats immediately, and the batch that
        # produced that result must already be counted.
        stats.record_batch(
            n_requests=len(batch),
            n_tokens=int(sum(r.sequence.shape[0] for r in batch)),
            seconds=time.perf_counter() - started,
            key=batch[0].key,
        )
        stats.record_completed(batch, policy=policy)
        for request, (ok, value) in zip(batch, outcomes):
            future = request.future
            # A client may have cancelled while the request was queued;
            # resolving a cancelled future raises InvalidStateError, which
            # would kill the dispatcher thread — skip those requests.
            if not future.set_running_or_notify_cancel():
                continue
            if ok:
                future.set_result(value)
            else:
                future.set_exception(value)

    def _compute_coalesced(self, batch: list[Request]) -> list[tuple[bool, Any]]:
        """One engine call per request kind; results in batch order."""
        tables = self._hmm.emissions.log_likelihoods_batch(
            [request.sequence for request in batch]
        )
        tag_idx = [i for i, r in enumerate(batch) if r.kind == _TAG]
        score_idx = [i for i, r in enumerate(batch) if r.kind == _SCORE]
        outcomes: list[tuple[bool, Any]] = [(True, None)] * len(batch)
        if tag_idx:
            decoded = self._engine.viterbi_batch(
                self._hmm.startprob, self._hmm.transmat, [tables[i] for i in tag_idx]
            )
            for i, (path, _) in zip(tag_idx, decoded):
                outcomes[i] = (True, path)
        if score_idx:
            scores = self._engine.log_likelihood_batch(
                self._hmm.startprob, self._hmm.transmat, [tables[i] for i in score_idx]
            )
            for i, value in zip(score_idx, scores):
                outcomes[i] = (True, float(value))
        return outcomes

    def _compute_individually(self, batch: list[Request]) -> list[tuple[bool, Any]]:
        """Slow path: isolate failures to the requests that caused them."""
        outcomes: list[tuple[bool, Any]] = []
        for request in batch:
            try:
                table = self._hmm.emissions.log_likelihoods(request.sequence)
                if request.kind == _TAG:
                    path, _ = self._engine.viterbi(
                        self._hmm.startprob, self._hmm.transmat, table
                    )
                    outcomes.append((True, path))
                else:
                    outcomes.append(
                        (
                            True,
                            self._engine.log_likelihood(
                                self._hmm.startprob, self._hmm.transmat, table
                            ),
                        )
                    )
            except Exception as exc:
                outcomes.append((False, exc))
        return outcomes


class TaggingService(MicroBatchScheduler):
    """Queue-and-coalesce front end over one model's inference engine.

    Parameters
    ----------
    model:
        An :class:`~repro.hmm.model.HMM` or a fitted estimator wrapper.
    config:
        Batching and backpressure knobs (``max_batch_size``,
        ``max_wait_ms``, ``queue_capacity``, ``scheduling_policy``);
        defaults to the process-wide
        :func:`~repro.core.config.get_serving_config`.

    Use as a context manager (or call :meth:`close`) so the dispatcher
    thread is joined deterministically; queued requests are still served
    during shutdown.  For serving several registry models through one
    queue see :class:`~repro.serving.router.Router`.
    """

    _thread_name = "repro-tagging-service"

    def __init__(self, model: Any, config: ServingConfig | None = None) -> None:
        super().__init__(config)
        self._executor = _ModelExecutor(model)
        self._start()

    # -------------------------------------------------------------- #
    # Client API
    # -------------------------------------------------------------- #
    def submit_tag(
        self,
        sequence: np.ndarray,
        deadline_ms: float | None = None,
        trace_id: str | None = None,
    ) -> Future:
        """Enqueue a Viterbi tagging request; resolves to the label array."""
        return self._enqueue(_TAG, sequence, deadline_ms=deadline_ms, trace_id=trace_id)

    def submit_score(
        self,
        sequence: np.ndarray,
        deadline_ms: float | None = None,
        trace_id: str | None = None,
    ) -> Future:
        """Enqueue a scoring request; resolves to the log-likelihood float."""
        return self._enqueue(
            _SCORE, sequence, deadline_ms=deadline_ms, trace_id=trace_id
        )

    def tag(self, sequence: np.ndarray) -> np.ndarray:
        """Synchronous tag: submit and wait."""
        return self.submit_tag(sequence).result()

    def score(self, sequence: np.ndarray) -> float:
        """Synchronous score: submit and wait."""
        return self.submit_score(sequence).result()

    def tag_many(self, sequences: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Submit many tagging requests at once and gather all results.

        This is the high-throughput client pattern: all requests hit the
        queue immediately, so the dispatcher drains them in near-full
        micro-batches.
        """
        futures = [self.submit_tag(seq) for seq in sequences]
        return [future.result() for future in futures]

    def score_many(self, sequences: Sequence[np.ndarray]) -> list[float]:
        """Submit many scoring requests at once and gather all results."""
        futures = [self.submit_score(seq) for seq in sequences]
        return [future.result() for future in futures]

    # -------------------------------------------------------------- #
    def _execute(self, batch: list[Request]) -> None:
        self._executor.run(batch, self.stats, policy=self.scheduling_policy)
