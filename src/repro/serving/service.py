"""Micro-batching tagging service: concurrent requests, coalesced decodes.

:class:`TaggingService` turns the batched :class:`~repro.hmm.engine.InferenceEngine`
from an offline trick into a serving primitive.  Clients submit individual
tag (Viterbi) or score (log-likelihood) requests and get
:class:`concurrent.futures.Future` handles back; a single dispatcher thread
drains the queue, coalesces up to ``max_batch_size`` requests (waiting at
most ``max_wait_ms`` for stragglers after the first arrival) and runs each
micro-batch through one engine call, where the length-bucketed backend does
the heavy lifting.  Per-request decoding pays the engine's per-call Python
overhead on every sequence; micro-batching amortizes it across the batch —
that gap is measured by ``benchmarks/test_bench_serving.py``.

The service is load-aware:

* the request queue is **bounded** (``ServingConfig.queue_capacity``);
  submissions beyond capacity fast-fail with
  :class:`~repro.exceptions.QueueFullError` instead of growing an
  unbounded backlog under overload;
* requests may carry a **deadline** (``deadline_ms``); requests whose
  deadline expired while queued are dropped *before* any engine work is
  spent on them, their futures resolving with
  :class:`~repro.exceptions.DeadlineExceededError`;
* :class:`ServiceStats` counts rejected and expired requests and exposes
  the instantaneous queue depth alongside the throughput counters.

The queue/dispatcher machinery lives in :class:`_MicroBatchDispatcher` and
is shared with the multi-model :class:`~repro.serving.router.Router`; the
per-model compute (coalesced engine calls with per-request failure
isolation) lives in :class:`_ModelExecutor`.

The dispatcher is a single thread, so each engine and its parameter cache
are used from one thread only; submission is thread-safe and can come from
any number of client threads.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.config import ServingConfig, get_serving_config
from repro.exceptions import (
    DeadlineExceededError,
    QueueFullError,
    ServingError,
    ValidationError,
)
from repro.serving.persistence import resolve_hmm

_TAG = "tag"
_SCORE = "score"


@dataclass
class _Request:
    kind: str
    sequence: np.ndarray
    future: Future
    #: absolute ``time.perf_counter()`` deadline; ``None`` = no deadline.
    deadline: float | None = None
    #: routing key ``(name, version)``; ``None`` in a single-model service.
    key: tuple[str, int] | None = None


class ServiceStats:
    """Running throughput / batch-occupancy counters (thread-safe snapshots).

    Besides the engine-side counters (batches, tokens, busy time) it tracks
    the load-shedding events of the bounded queue — rejected (queue full)
    and expired (deadline passed) requests — plus, for routed services,
    per-model request counts and model load/evict churn.
    """

    def __init__(self, queue_depth: Callable[[], int] | None = None) -> None:
        self._lock = threading.Lock()
        self._queue_depth = queue_depth
        self.started_at = time.perf_counter()
        self.n_requests = 0
        self.n_batches = 0
        self.n_tokens = 0
        self.max_batch_size = 0
        self.busy_seconds = 0.0
        self.n_rejected = 0
        self.n_expired = 0
        self.n_model_loads = 0
        self.n_model_evictions = 0
        self.per_model: dict[str, int] = {}

    def record_batch(
        self, n_requests: int, n_tokens: int, seconds: float, key: tuple | None = None
    ) -> None:
        with self._lock:
            self.n_requests += n_requests
            self.n_batches += 1
            self.n_tokens += n_tokens
            self.max_batch_size = max(self.max_batch_size, n_requests)
            self.busy_seconds += seconds
            if key is not None:
                label = _model_label(key)
                self.per_model[label] = self.per_model.get(label, 0) + n_requests

    def record_rejected(self) -> None:
        with self._lock:
            self.n_rejected += 1

    def record_expired(self) -> None:
        with self._lock:
            self.n_expired += 1

    def record_model_load(self) -> None:
        with self._lock:
            self.n_model_loads += 1

    def record_model_eviction(self) -> None:
        with self._lock:
            self.n_model_evictions += 1

    def snapshot(self) -> dict:
        """Point-in-time stats dict (safe to call from any thread)."""
        with self._lock:
            wall = time.perf_counter() - self.started_at
            batches = max(self.n_batches, 1)
            busy = max(self.busy_seconds, 1e-12)
            return {
                "n_requests": self.n_requests,
                "n_batches": self.n_batches,
                "n_tokens": self.n_tokens,
                "mean_batch_size": self.n_requests / batches,
                "max_batch_size": self.max_batch_size,
                "busy_seconds": self.busy_seconds,
                "wall_seconds": wall,
                "tokens_per_busy_second": self.n_tokens / busy,
                "queue_depth": self._queue_depth() if self._queue_depth else 0,
                "n_rejected": self.n_rejected,
                "n_expired": self.n_expired,
                "n_model_loads": self.n_model_loads,
                "n_model_evictions": self.n_model_evictions,
                "per_model": dict(self.per_model),
            }


def _model_label(key: tuple[str, int]) -> str:
    name, version = key
    return f"{name}:v{version:04d}"


class _ModelExecutor:
    """Batched compute for one resolved model: coalesce, isolate failures.

    Holds the resolved :class:`~repro.hmm.model.HMM` and its engine; used
    from the single dispatcher thread only, so the engine's parameter
    cache stays single-threaded.
    """

    def __init__(self, model: Any) -> None:
        self._hmm = resolve_hmm(model)
        self._engine = self._hmm.inference_engine

    def run(self, batch: list[_Request], stats: ServiceStats) -> None:
        """Compute one micro-batch and resolve its futures (stats first)."""
        started = time.perf_counter()
        try:
            outcomes = self._compute_coalesced(batch)
        except Exception:
            # The batched call failed somewhere (typically one malformed
            # sequence poisoning the shared emission-table call).  Re-run
            # each request on its own so only the offending ones fail.
            # Control-flow exceptions (KeyboardInterrupt, SystemExit) are
            # deliberately NOT caught: they must stop the dispatcher, not
            # be swallowed into a client future.
            outcomes = self._compute_individually(batch)
        # Record stats before resolving the futures: a client unblocked by
        # its result may snapshot the stats immediately, and the batch that
        # produced that result must already be counted.
        stats.record_batch(
            n_requests=len(batch),
            n_tokens=int(sum(r.sequence.shape[0] for r in batch)),
            seconds=time.perf_counter() - started,
            key=batch[0].key,
        )
        for request, (ok, value) in zip(batch, outcomes):
            future = request.future
            # A client may have cancelled while the request was queued;
            # resolving a cancelled future raises InvalidStateError, which
            # would kill the dispatcher thread — skip those requests.
            if not future.set_running_or_notify_cancel():
                continue
            if ok:
                future.set_result(value)
            else:
                future.set_exception(value)

    def _compute_coalesced(self, batch: list[_Request]) -> list[tuple[bool, Any]]:
        """One engine call per request kind; results in batch order."""
        tables = self._hmm.emissions.log_likelihoods_batch(
            [request.sequence for request in batch]
        )
        tag_idx = [i for i, r in enumerate(batch) if r.kind == _TAG]
        score_idx = [i for i, r in enumerate(batch) if r.kind == _SCORE]
        outcomes: list[tuple[bool, Any]] = [(True, None)] * len(batch)
        if tag_idx:
            decoded = self._engine.viterbi_batch(
                self._hmm.startprob, self._hmm.transmat, [tables[i] for i in tag_idx]
            )
            for i, (path, _) in zip(tag_idx, decoded):
                outcomes[i] = (True, path)
        if score_idx:
            scores = self._engine.log_likelihood_batch(
                self._hmm.startprob, self._hmm.transmat, [tables[i] for i in score_idx]
            )
            for i, value in zip(score_idx, scores):
                outcomes[i] = (True, float(value))
        return outcomes

    def _compute_individually(self, batch: list[_Request]) -> list[tuple[bool, Any]]:
        """Slow path: isolate failures to the requests that caused them."""
        outcomes: list[tuple[bool, Any]] = []
        for request in batch:
            try:
                table = self._hmm.emissions.log_likelihoods(request.sequence)
                if request.kind == _TAG:
                    path, _ = self._engine.viterbi(
                        self._hmm.startprob, self._hmm.transmat, table
                    )
                    outcomes.append((True, path))
                else:
                    outcomes.append(
                        (
                            True,
                            self._engine.log_likelihood(
                                self._hmm.startprob, self._hmm.transmat, table
                            ),
                        )
                    )
            except Exception as exc:
                outcomes.append((False, exc))
        return outcomes


class _MicroBatchDispatcher:
    """Bounded queue + single dispatcher thread, shared by the services.

    Subclasses implement :meth:`_execute` (compute one micro-batch of
    *live* requests and resolve their futures) and call :meth:`_start`
    once their own state is ready.  Everything else — thread-safe bounded
    submission, coalescing with ``max_wait_ms``, deadline expiry before
    compute, drain-on-close — lives here.
    """

    _thread_name = "repro-serving-dispatcher"

    def __init__(self, config: ServingConfig | None = None) -> None:
        self.config = config or get_serving_config()
        # queue.Queue rather than SimpleQueue: qsize() is exact in CPython,
        # which the bounded-capacity check and the queue_depth gauge need.
        self._queue: queue.Queue = queue.Queue()
        self.stats = ServiceStats(queue_depth=self._queue.qsize)
        self._closed = False
        # Guards the closed/capacity-check-then-enqueue in _enqueue against
        # close() and concurrent submitters: without it a request could land
        # behind the shutdown sentinel (its future would never resolve) or
        # two submitters could both pass the capacity check.
        self._lifecycle_lock = threading.Lock()
        #: batch currently being processed; read by _abandon_pending when
        #: the dispatcher dies mid-batch (single-writer: dispatcher thread).
        self._in_flight: list[_Request] = []
        self._dispatcher = threading.Thread(
            target=self._run, name=self._thread_name, daemon=True
        )

    def _start(self) -> None:
        self._dispatcher.start()

    @property
    def queue_depth(self) -> int:
        """Instantaneous number of queued requests (the stats gauge)."""
        return self._queue.qsize()

    # -------------------------------------------------------------- #
    # Submission
    # -------------------------------------------------------------- #
    @staticmethod
    def _absolute_deadline(deadline_ms: float | None) -> float | None:
        if deadline_ms is None:
            return None
        if deadline_ms <= 0:
            raise ValidationError(
                f"deadline_ms must be positive, got {deadline_ms}"
            )
        return time.perf_counter() + deadline_ms / 1000.0

    def _enqueue(
        self,
        kind: str,
        sequence: np.ndarray,
        deadline_ms: float | None = None,
        key: tuple[str, int] | None = None,
    ) -> Future:
        seq = np.asarray(sequence)
        if seq.ndim < 1 or seq.shape[0] < 1:
            raise ValidationError(
                "requests must be sequences with at least one timestep, got "
                f"shape {seq.shape}"
            )
        request = _Request(
            kind=kind,
            sequence=seq,
            future=Future(),
            deadline=self._absolute_deadline(deadline_ms),
            key=key,
        )
        capacity = self.config.queue_capacity
        with self._lifecycle_lock:
            if self._closed:
                raise ValidationError(f"{type(self).__name__} is closed")
            # Only submitters (all serialized by this lock) grow the queue,
            # so check-then-put cannot overshoot the capacity: the
            # dispatcher draining concurrently only shrinks it.
            if capacity is not None and self._queue.qsize() >= capacity:
                self.stats.record_rejected()
                raise QueueFullError(
                    f"serving queue is at capacity ({capacity}); retry later "
                    "or raise ServingConfig.queue_capacity"
                )
            self._queue.put(request)
        return request.future

    # -------------------------------------------------------------- #
    # Dispatcher
    # -------------------------------------------------------------- #
    def _gather_batch(self, first: _Request) -> tuple[list[_Request], bool]:
        """Coalesce up to ``max_batch_size`` requests around ``first``.

        Returns the batch plus a flag signalling that the shutdown sentinel
        was consumed while gathering.
        """
        batch = [first]
        saw_sentinel = False
        deadline: float | None = None  # set lazily on the first empty poll
        while len(batch) < self.config.max_batch_size:
            try:
                # Fast path: drain whatever is already queued without
                # touching the clock — under burst load this fills the
                # whole batch with no timed waits at all.
                item = self._queue.get_nowait()
            except queue.Empty:
                if deadline is None:
                    deadline = time.perf_counter() + self.config.max_wait_ms / 1000.0
                timeout = deadline - time.perf_counter()
                if timeout <= 0:
                    break
                try:
                    item = self._queue.get(timeout=timeout)
                except queue.Empty:
                    break
            if item is None:
                saw_sentinel = True
                break
            batch.append(item)
        return batch, saw_sentinel

    def _drop_expired(self, batch: list[_Request]) -> list[_Request]:
        """Resolve expired requests with DeadlineExceededError; return the rest.

        Runs immediately before compute, so an expired request never costs
        an engine call.
        """
        now = time.perf_counter()
        live: list[_Request] = []
        for request in batch:
            if request.deadline is not None and now > request.deadline:
                self.stats.record_expired()
                if request.future.set_running_or_notify_cancel():
                    request.future.set_exception(
                        DeadlineExceededError(
                            "request deadline expired after "
                            f"{(now - request.deadline) * 1e3:.1f} ms in queue"
                        )
                    )
            else:
                live.append(request)
        return live

    def _dispatch(self, batch: list[_Request]) -> None:
        live = self._drop_expired(batch)
        if live:
            self._execute(live)

    def _execute(self, batch: list[_Request]) -> None:
        raise NotImplementedError

    def _run(self) -> None:
        try:
            self._serve()
        except BaseException as exc:
            # The dispatcher is dying (a control-flow exception such as
            # KeyboardInterrupt escaped a batch, by design uncaught by the
            # compute path).  No thread will ever drain the queue again, so
            # fail every accepted-but-unserved future — a client blocked in
            # an untimed result() must not hang forever — and refuse new
            # submissions, then let the exception terminate the thread.
            self._abandon_pending(exc)
            raise

    def _serve(self) -> None:
        stopping = False
        while not stopping:
            item = self._queue.get()
            if item is None:
                break
            self._in_flight, stopping = self._gather_batch(item)
            self._dispatch(self._in_flight)
            self._in_flight = []
        # Shutdown: serve whatever is still queued, in full batches.
        leftovers = self._drain_queue()
        for start in range(0, len(leftovers), self.config.max_batch_size):
            self._in_flight = leftovers[start : start + self.config.max_batch_size]
            self._dispatch(self._in_flight)
            self._in_flight = []

    def _drain_queue(self) -> list[_Request]:
        drained: list[_Request] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return drained
            if item is not None:
                drained.append(item)

    def _abandon_pending(self, cause: BaseException) -> None:
        """Fail the in-flight batch and every queued future after a fatal
        dispatcher error, so no client waits on a request nobody will serve."""
        with self._lifecycle_lock:
            self._closed = True
        error = ServingError(
            f"serving dispatcher died ({type(cause).__name__}) before this "
            "request was served"
        )
        for request in [*self._in_flight, *self._drain_queue()]:
            future = request.future
            # Requests resolved before the failure (e.g. expired ones) are
            # kept; only still-pending futures get the abandonment error.
            if future.done():
                continue
            if future.set_running_or_notify_cancel():
                future.set_exception(error)

    # -------------------------------------------------------------- #
    def close(self, timeout: float | None = 10.0) -> bool:
        """Stop accepting requests, flush the queue, join the dispatcher.

        Returns ``True`` when the dispatcher finished flushing within
        ``timeout``, ``False`` when it is still running (the flush did not
        complete — accepted futures may still be pending).  Calling
        ``close`` again re-joins and reports the current status.
        """
        with self._lifecycle_lock:
            if not self._closed:
                self._closed = True
                # The sentinel is enqueued under the lock, so it is
                # guaranteed to be the last item — every accepted request
                # gets served.
                self._queue.put(None)
        self._dispatcher.join(timeout=timeout)
        return not self._dispatcher.is_alive()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TaggingService(_MicroBatchDispatcher):
    """Queue-and-coalesce front end over one model's inference engine.

    Parameters
    ----------
    model:
        An :class:`~repro.hmm.model.HMM` or a fitted estimator wrapper.
    config:
        Batching and backpressure knobs (``max_batch_size``,
        ``max_wait_ms``, ``queue_capacity``); defaults to the process-wide
        :func:`~repro.core.config.get_serving_config`.

    Use as a context manager (or call :meth:`close`) so the dispatcher
    thread is joined deterministically; queued requests are still served
    during shutdown.  For serving several registry models through one
    queue see :class:`~repro.serving.router.Router`.
    """

    _thread_name = "repro-tagging-service"

    def __init__(self, model: Any, config: ServingConfig | None = None) -> None:
        super().__init__(config)
        self._executor = _ModelExecutor(model)
        self._start()

    # -------------------------------------------------------------- #
    # Client API
    # -------------------------------------------------------------- #
    def submit_tag(
        self, sequence: np.ndarray, deadline_ms: float | None = None
    ) -> Future:
        """Enqueue a Viterbi tagging request; resolves to the label array."""
        return self._enqueue(_TAG, sequence, deadline_ms=deadline_ms)

    def submit_score(
        self, sequence: np.ndarray, deadline_ms: float | None = None
    ) -> Future:
        """Enqueue a scoring request; resolves to the log-likelihood float."""
        return self._enqueue(_SCORE, sequence, deadline_ms=deadline_ms)

    def tag(self, sequence: np.ndarray) -> np.ndarray:
        """Synchronous tag: submit and wait."""
        return self.submit_tag(sequence).result()

    def score(self, sequence: np.ndarray) -> float:
        """Synchronous score: submit and wait."""
        return self.submit_score(sequence).result()

    def tag_many(self, sequences: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Submit many tagging requests at once and gather all results.

        This is the high-throughput client pattern: all requests hit the
        queue immediately, so the dispatcher drains them in near-full
        micro-batches.
        """
        futures = [self.submit_tag(seq) for seq in sequences]
        return [future.result() for future in futures]

    def score_many(self, sequences: Sequence[np.ndarray]) -> list[float]:
        """Submit many scoring requests at once and gather all results."""
        futures = [self.submit_score(seq) for seq in sequences]
        return [future.result() for future in futures]

    # -------------------------------------------------------------- #
    def _execute(self, batch: list[_Request]) -> None:
        self._executor.run(batch, self.stats)
