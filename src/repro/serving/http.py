"""Asyncio HTTP front end over the routed serving stack (stdlib only).

:class:`HTTPServingServer` exposes a :class:`~repro.serving.router.Router`
(and per-model :class:`~repro.serving.streaming_service.StreamingService`
sessions) over HTTP/1.1 without any third-party dependency: a hand-rolled
request loop on :func:`asyncio.start_server` parses requests, and the
thread-based dispatcher futures are bridged onto the event loop —
blocking calls (submit-time registry scans, stream opens, model loads) run
via ``loop.run_in_executor`` and the resulting
:class:`concurrent.futures.Future` handles are awaited through
:func:`asyncio.wrap_future` — so one asyncio thread multiplexes any number
of slow clients while the scheduler threads do the compute.

Endpoints (all request/response bodies are JSON):

=======  ==============================  =====================================
method   path                            body -> response
=======  ==============================  =====================================
GET      ``/healthz``                    -> ``{"status": "ok", ...}``
GET      ``/stats``                      -> scheduler + stream-service stats
GET      ``/metrics``                    -> latency histograms + per-policy
                                         queue waits (``?format=prometheus``
                                         for text exposition)
GET      ``/v1/models``                  -> registered names and versions
POST     ``/v1/models/<name>/tag``       ``{"sequence": [...], "version"?,
                                         "deadline_ms"?}`` -> ``{"tags"}``
POST     ``/v1/models/<name>/score``     same -> ``{"score"}``
POST     ``/v1/streams``                 ``{"model":.., "version"?, "lag"?}``
                                         -> ``{"stream_id"}``
POST     ``/v1/streams/<id>/push``       ``{"observation": ..}`` -> one step
POST     ``/v1/streams/<id>/finish``     -> final path + log-likelihood
=======  ==============================  =====================================

Error mapping: validation failures are ``400``, unknown routes/streams
``404``, queue-full backpressure ``429`` (+ ``Retry-After``), an open
circuit breaker / a draining or failed server / a request that outlived
``ServingConfig.request_timeout_s`` all ``503`` (+ ``Retry-After``),
expired deadlines ``504``, anything else ``500`` — always as
``{"error": <message>}``.  ``/healthz`` reports the dispatcher health
state machine: ``ok``/``degraded`` are 200, ``failed``/``draining`` 503.

Every response carries an ``X-Trace-Id`` header: a well-formed inbound
``X-Trace-Id`` is adopted, anything else replaced by a fresh ID.  The same
ID rides the scheduler request through to the executor, so it shows up in
``/metrics`` ``recent_traces`` once the request completes.

``repro-serve serve`` is the CLI entry point; tests drive the server
in-process via :meth:`HTTPServingServer.start` on an ephemeral port.
"""

from __future__ import annotations

import asyncio
import json
import math
import signal
import threading
import time
import uuid
from pathlib import Path

import numpy as np

from repro.analysis.lockorder import make_lock
from repro.core.config import ServingConfig
from repro.exceptions import (
    DeadlineExceededError,
    ModelUnavailableError,
    QueueFullError,
    ServiceShuttingDownError,
    ServingError,
    ValidationError,
)
from repro.serving.observability import clean_trace_id, new_trace_id, render_prometheus
from repro.serving.registry import ModelRegistry
from repro.serving.router import Router
from repro.serving.scheduler import FAILED, _model_label
from repro.serving.streaming import _UNSET
from repro.serving.streaming_service import ServiceStream, StreamingService

_MAX_BODY_BYTES = 16 << 20  # 16 MiB: far beyond any sane request

_STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _query_param(query: str, name: str) -> str | None:
    """First value of ``name`` in a raw query string (no unquoting needed)."""
    for pair in query.split("&"):
        key, _, value = pair.partition("=")
        if key == name:
            return value
    return None


def _retry_after_header(seconds: float | None) -> dict[str, str]:
    """``Retry-After`` header dict from a backoff hint (>= 1 whole second)."""
    if seconds is None or seconds <= 0:
        seconds = 1.0
    return {"Retry-After": str(max(1, int(math.ceil(seconds))))}


class _HTTPError(ServingError):
    """A request failure that already knows its HTTP status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class HTTPServingServer:
    """HTTP transport over one registry's router and streaming services.

    Parameters
    ----------
    registry:
        A :class:`~repro.serving.registry.ModelRegistry` or its root path.
    config:
        Scheduling/backpressure knobs shared by the router and every
        per-model streaming service; defaults to the process-wide config.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read ``.port``
        after :meth:`start`).
    reuse_port:
        Bind with ``SO_REUSEPORT`` so several fully independent server
        processes can listen on the same port and let the kernel spread
        connections across them (see :mod:`repro.serving.cluster`).

    The server owns its :class:`Router` (and lazily, one
    :class:`StreamingService` per ``(name, version)`` that receives stream
    traffic); :meth:`close` shuts them all down.  Use :meth:`start` /
    :meth:`close` (or the context manager) from tests, and
    :meth:`serve_forever` from the CLI.
    """

    def __init__(
        self,
        registry: ModelRegistry | str | Path,
        config: ServingConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 8765,
        reuse_port: bool = False,
    ) -> None:
        if not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry)
        self.registry = registry
        self.router = Router(registry, config=config)
        self.config = self.router.config
        self.host = host
        self.port = port
        self.reuse_port = bool(reuse_port)
        self._state_lock = make_lock("http.state")
        self._streams: dict[str, tuple[ServiceStream, tuple[str, int]]] = (
            {}
        )  # repro: guarded-by[_state_lock]
        self._stream_services: dict[tuple[str, int], StreamingService] = (
            {}
        )  # repro: guarded-by[_state_lock]
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.AbstractServer | None = None
        self._closed = False
        #: drain mode: new work is refused (503) but accepted requests and
        #: open streams keep being served until the drain deadline.
        self._draining = False
        #: requests currently inside _dispatch; touched only on the event
        #: loop thread, read (a plain int) by the draining thread.
        self._inflight = 0

    # -------------------------------------------------------------- #
    # Lifecycle
    # -------------------------------------------------------------- #
    def start(self) -> "HTTPServingServer":
        """Bind and begin serving on a background event-loop thread.

        Returns once the socket is listening; ``.port`` holds the actual
        (possibly ephemeral) port.
        """
        if self._loop is not None:
            raise ValidationError("server already started")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-serving-http", daemon=True
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(self._bind(), self._loop)
        future.result(timeout=30)
        return self

    async def _bind(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self.port,
            reuse_port=self.reuse_port or None,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def close(
        self,
        timeout: float | None = 10.0,
        drain: bool = False,
        drain_timeout_s: float | None = None,
    ) -> None:
        """Stop listening, stop the loop, and close every service.

        ``drain=True`` makes the shutdown graceful: new work is refused
        immediately (503 + ``Retry-After``) while in-flight requests and
        open streams keep being served, up to ``drain_timeout_s``
        (defaulting to ``ServingConfig.drain_timeout_s``, else 30s);
        whatever the scheduler still holds past the deadline is shed with
        :class:`~repro.exceptions.ServiceShuttingDownError`.
        """
        if self._closed:
            return
        drain_budget: float | None = None
        if drain:
            effective = (
                drain_timeout_s
                if drain_timeout_s is not None
                else (
                    self.config.drain_timeout_s
                    if self.config.drain_timeout_s is not None
                    else 30.0
                )
            )
            deadline = time.monotonic() + effective
            self._draining = True
            # Serve out the accepted work: in-flight requests and open
            # streams.  The event loop is still running, so clients keep
            # getting real responses during this window.
            while time.monotonic() < deadline:
                with self._state_lock:
                    n_streams = len(self._streams)
                if self._inflight == 0 and n_streams == 0:
                    break
                time.sleep(0.02)
            drain_budget = max(0.0, deadline - time.monotonic())
        self._closed = True
        loop = self._loop
        if loop is not None:

            def _shutdown() -> None:
                if self._server is not None:
                    self._server.close()
                loop.stop()

            loop.call_soon_threadsafe(_shutdown)
            if self._thread is not None:
                self._thread.join(timeout=timeout)
            loop.close()
        with self._state_lock:
            services = list(self._stream_services.values())
            self._stream_services.clear()
            self._streams.clear()
        for service in services:
            service.close(timeout=timeout, drain_timeout_s=drain_budget)
        self.router.close(timeout=timeout, drain_timeout_s=drain_budget)

    def serve_forever(self, drain_timeout_s: float | None = None) -> None:
        """CLI mode: serve until interrupted, then shut down cleanly.

        Starts the server if :meth:`start` was not already called — the CLI
        starts it first so warm-up runs between binding and blocking.  A
        ``drain_timeout_s`` (or ``ServingConfig.drain_timeout_s``) turns
        the interrupt-triggered shutdown into a graceful drain.
        """
        if self._loop is None:
            self.start()
        wants_drain = (
            drain_timeout_s is not None or self.config.drain_timeout_s is not None
        )
        stop = threading.Event()
        previous_handler = None
        installed = False
        try:
            # SIGTERM (the orchestrator's stop signal) takes the same clean
            # shutdown path as Ctrl-C — with a drain timeout configured,
            # that path is a graceful drain.
            previous_handler = signal.signal(
                signal.SIGTERM, lambda _signum, _frame: stop.set()
            )
            installed = True
        except ValueError:
            pass  # not the main thread: SIGINT-only mode
        try:
            stop.wait()
        except KeyboardInterrupt:
            pass
        finally:
            if installed:
                signal.signal(signal.SIGTERM, previous_handler)
            self.close(drain=wants_drain, drain_timeout_s=drain_timeout_s)

    def __enter__(self) -> "HTTPServingServer":
        return self.start() if self._loop is None else self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- #
    # Connection handling
    # -------------------------------------------------------------- #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or request_line in (b"\r\n", b"\n"):
                    break
                trace_id = new_trace_id()
                try:
                    method, target, _version = (
                        request_line.decode("latin1").rstrip("\r\n").split(" ", 2)
                    )
                except ValueError:
                    await self._respond(
                        writer, 400, {"error": "malformed request line"},
                        headers={"X-Trace-Id": trace_id},
                    )
                    break
                headers: dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                # Adopt a well-formed inbound trace ID (client/balancer
                # correlation); anything malformed keeps the fresh one.
                trace_id = clean_trace_id(headers.get("x-trace-id")) or trace_id
                try:
                    length = int(headers.get("content-length", "0") or 0)
                except ValueError:
                    length = -1
                if length < 0:
                    await self._respond(
                        writer, 400, {"error": "malformed Content-Length header"},
                        headers={"X-Trace-Id": trace_id},
                    )
                    break
                if length > _MAX_BODY_BYTES:
                    await self._respond(
                        writer, 413, {"error": "request body too large"},
                        headers={"X-Trace-Id": trace_id},
                    )
                    break
                body = await reader.readexactly(length) if length else b""
                status, payload, extra_headers = await self._dispatch(
                    method, target, body, trace_id
                )
                response_headers = {"X-Trace-Id": trace_id}
                response_headers.update(extra_headers or {})
                keep_alive = headers.get("connection", "").lower() != "close"
                await self._respond(
                    writer, status, payload,
                    keep_alive=keep_alive, headers=response_headers,
                )
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict | str,
        keep_alive: bool = False,
        headers: dict[str, str] | None = None,
    ) -> None:
        if isinstance(payload, str):
            # Prometheus text exposition (the only non-JSON payload).
            data = payload.encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            data = json.dumps(payload).encode()
            content_type = "application/json"
        phrase = _STATUS_PHRASES.get(status, "Unknown")
        connection = "keep-alive" if keep_alive else "close"
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {phrase}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"{extra}"
            f"Connection: {connection}\r\n\r\n"
        )
        writer.write(head.encode("latin1") + data)
        await writer.drain()

    # -------------------------------------------------------------- #
    # Routing
    # -------------------------------------------------------------- #
    async def _dispatch(
        self, method: str, target: str, body: bytes, trace_id: str
    ) -> tuple[int, dict | str, dict[str, str] | None]:
        self._inflight += 1
        path, _, query = target.partition("?")
        try:
            result = await self._route(method, path, query, body, trace_id)
            if isinstance(result, tuple):  # (status, payload) — healthz
                status, payload = result
                return status, payload, None
            return 200, result, None
        except _HTTPError as exc:
            return exc.status, {"error": str(exc)}, None
        except QueueFullError as exc:
            return 429, {"error": str(exc)}, _retry_after_header(1.0)
        except ModelUnavailableError as exc:
            # breaker open: tell the client when the cooldown lets a retry in
            return 503, {"error": str(exc)}, _retry_after_header(exc.retry_after_s)
        except ServiceShuttingDownError as exc:
            return 503, {"error": str(exc)}, _retry_after_header(1.0)
        except (TimeoutError, asyncio.TimeoutError) as exc:
            # the scheduler future outlived request_timeout_s: the server is
            # overloaded, not broken — 503 + Retry-After, never a raw 500
            return (
                503,
                {
                    "error": "request timed out after "
                    f"{self.config.request_timeout_s}s in the serving queue"
                },
                _retry_after_header(1.0),
            )
        except DeadlineExceededError as exc:
            return 504, {"error": str(exc)}, None
        except ValidationError as exc:
            return 400, {"error": str(exc)}, None
        except Exception as exc:  # a corrupt artifact, a numpy error, ...
            return 500, {"error": f"{type(exc).__name__}: {exc}"}, None
        finally:
            self._inflight -= 1

    async def _route(
        self, method: str, path: str, query: str, body: bytes, trace_id: str
    ) -> dict | str | tuple[int, dict]:
        parts = [part for part in path.split("/") if part]
        if method == "GET":
            # Health and stats take cross-thread locks (stats, lifecycle,
            # stream state): keep them off the event loop like any other
            # blocking work.
            if parts in (["healthz"], ["health"]):
                return await self._run_blocking(self._healthz)
            if parts == ["stats"]:
                return await self._run_blocking(self._stats_payload)
            if parts == ["metrics"]:
                if _query_param(query, "format") == "prometheus":
                    return await self._run_blocking(self._metrics_prometheus)
                return await self._run_blocking(self._metrics_payload)
            if parts == ["v1", "models"]:
                return await self._run_blocking(self._list_models)
            raise _HTTPError(404, f"no such resource: GET {path}")
        if method != "POST":
            raise _HTTPError(405, f"unsupported method {method}")
        if self._draining and not (
            len(parts) == 4 and parts[:2] == ["v1", "streams"]
        ):
            # Pushes/finishes on already-open streams stay allowed so the
            # drain can complete them; everything else is new work.
            raise ServiceShuttingDownError(
                "server is draining; retry against another instance"
            )
        payload = self._parse_body(body)
        if len(parts) == 4 and parts[:2] == ["v1", "models"]:
            name, action = parts[2], parts[3]
            if action not in ("tag", "score"):
                raise _HTTPError(404, f"no such model action: {action}")
            return await self._tag_or_score(name, action, payload, trace_id)
        if parts == ["v1", "streams"]:
            return await self._open_stream(payload)
        if len(parts) == 4 and parts[:2] == ["v1", "streams"]:
            stream_id, action = parts[2], parts[3]
            if action == "push":
                return await self._push_stream(stream_id, payload, trace_id)
            if action == "finish":
                return await self._finish_stream(stream_id, trace_id)
            raise _HTTPError(404, f"no such stream action: {action}")
        raise _HTTPError(404, f"no such resource: POST {path}")

    @staticmethod
    def _parse_body(body: bytes) -> dict:
        if not body:
            return {}
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise _HTTPError(400, f"request body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise _HTTPError(400, "request body must be a JSON object")
        return payload

    async def _run_blocking(self, fn, *args):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, fn, *args)

    async def _await_scheduler(self, future):
        """Await a scheduler future, bounded by ``request_timeout_s``.

        The timeout comes from config (no more hardcoded bridge timeouts);
        ``None`` waits forever.  On expiry the scheduler-side request keeps
        its queue slot (its future simply loses its HTTP waiter) and the
        client sees 503 + ``Retry-After`` via the dispatch error mapping.
        """
        wrapped = asyncio.wrap_future(future)
        timeout = self.config.request_timeout_s
        if timeout is None:
            return await wrapped
        return await asyncio.wait_for(wrapped, timeout=timeout)

    # -------------------------------------------------------------- #
    # Handlers
    # -------------------------------------------------------------- #
    def _healthz(self) -> tuple[int, dict]:
        """Health state machine -> HTTP status: ok/degraded 200, else 503."""
        health = self.router.health
        if self._draining:
            status, state = 503, "draining"
        elif health == FAILED:
            status, state = 503, "failed"
        else:
            status, state = 200, "ok" if health == "healthy" else health
        return status, {
            "status": state,
            "health": health,
            "n_dispatcher_restarts": self.router.stats.snapshot()[
                "n_dispatcher_restarts"
            ],
            "scheduling_policy": self.router.scheduling_policy,
            "queue_depth": self.router.queue_depth,
        }

    def _stats_payload(self) -> dict:
        with self._state_lock:
            stream_services = dict(self._stream_services)
            n_open = len(self._streams)
        return {
            "scheduling_policy": self.router.scheduling_policy,
            "router": self.router.stats.snapshot(),
            "streams": {
                _model_label(key): service.stats.snapshot()
                for key, service in stream_services.items()
            },
            "n_open_streams": n_open,
        }

    def _metrics_payload(self) -> dict:
        """Request-level metrics: latency histograms, queue waits, traces."""
        with self._state_lock:
            stream_services = dict(self._stream_services)
        router = self.router.stats.snapshot()
        streams = {}
        for key, service in stream_services.items():
            snap = service.stats.snapshot()
            streams[_model_label(key)] = {
                "n_requests": snap["n_requests"],
                "latency": snap["latency"],
                "queue_wait_by_policy": snap["queue_wait_by_policy"],
                "recent_traces": snap["recent_traces"],
            }
        return {
            "router": {
                "n_requests": router["n_requests"],
                "latency": router["latency"],
                "queue_wait_by_policy": router["queue_wait_by_policy"],
                "recent_traces": router["recent_traces"],
            },
            "streams": streams,
        }

    def _metrics_prometheus(self) -> str:
        """The same metrics in Prometheus text exposition format."""
        metrics = self._metrics_payload()
        histograms: list[tuple[str, dict[str, str], dict]] = []
        counters: list[tuple[str, dict[str, str], float]] = []

        def emit(labels: dict[str, str], section: dict) -> None:
            histograms.append(
                ("repro_request_latency_seconds", labels, section["latency"])
            )
            for policy, snap in section["queue_wait_by_policy"].items():
                histograms.append(
                    ("repro_queue_wait_seconds", {**labels, "policy": policy}, snap)
                )
            counters.append(
                ("repro_requests_total", labels, float(section["n_requests"]))
            )

        emit({"component": "router"}, metrics["router"])
        for label, section in metrics["streams"].items():
            emit({"component": "stream", "model": label}, section)
        return render_prometheus(histograms, counters)

    def _list_models(self) -> dict:
        models = []
        for name in self.registry.list_models():
            versions = self.registry.versions(name)
            models.append(
                {"name": name, "versions": versions, "latest": versions[-1]}
            )
        return {"models": models}

    async def _tag_or_score(
        self, name: str, action: str, payload: dict, trace_id: str
    ) -> dict:
        if "sequence" not in payload:
            raise _HTTPError(400, "request body needs a 'sequence' field")
        sequence = np.asarray(payload["sequence"])
        version = payload.get("version")
        deadline_ms = payload.get("deadline_ms")
        submit = self.router.submit_tag if action == "tag" else self.router.submit_score
        # Submission touches the registry (latest-version scans) and the
        # queue lock: keep it off the event loop, then await the scheduler
        # future without blocking anything.
        future = await self._run_blocking(
            lambda: submit(
                name,
                sequence,
                version=version,
                deadline_ms=deadline_ms,
                trace_id=trace_id,
            )
        )
        result = await self._await_scheduler(future)
        if action == "tag":
            return {"model": name, "tags": [int(s) for s in result]}
        return {"model": name, "score": float(result)}

    def _stream_service_for(self, name: str, version: int | None) -> tuple:
        key = (name, int(version) if version is not None else self.registry.latest_version(name))
        with self._state_lock:
            service = self._stream_services.get(key)
        if service is None:
            model = self.registry.load(*key)
            with self._state_lock:
                # another request may have won the creation race
                service = self._stream_services.get(key)
                if service is None:
                    service = StreamingService(model, config=self.config)
                    self._stream_services[key] = service
        return key, service

    async def _open_stream(self, payload: dict) -> dict:
        if "model" not in payload:
            raise _HTTPError(400, "request body needs a 'model' field")
        lag = payload.get("lag", _UNSET)

        def blocking_open():
            key, service = self._stream_service_for(
                payload["model"], payload.get("version")
            )
            handle = service.open(lag=lag)
            stream_id = uuid.uuid4().hex
            with self._state_lock:
                self._streams[stream_id] = (handle, key)
            return stream_id, key

        stream_id, key = await self._run_blocking(blocking_open)
        return {
            "stream_id": stream_id,
            "model": key[0],
            "version": key[1],
        }

    async def _push_stream(
        self, stream_id: str, payload: dict, trace_id: str
    ) -> dict:
        if "observation" not in payload:
            raise _HTTPError(400, "request body needs an 'observation' field")
        observation = np.asarray(payload["observation"])
        # Lookup and submission happen under one lock: a ServiceStream
        # expects its pushes serialized, but HTTP exposes the stream id to
        # arbitrary concurrent connections — without the lock a push racing
        # a finish could slip past the finished check and, after the
        # session slot is reused, advance another client's stream.  The
        # critical section runs in the executor (the lock and scheduler
        # submission both block), never on the event loop.
        def blocking_push():
            with self._state_lock:
                entry = self._streams.get(stream_id)
                if entry is None:
                    raise _HTTPError(404, f"no such stream: {stream_id}")
                handle, _key = entry
                return handle.submit_push(observation, trace_id=trace_id)

        future = await self._run_blocking(blocking_push)
        step = await self._await_scheduler(future)
        return {
            "filtering": [float(p) for p in step.filtering],
            "finalized": [[int(t), int(s)] for t, s in step.finalized],
            "log_likelihood": float(step.log_likelihood),
        }

    async def _finish_stream(self, stream_id: str, trace_id: str) -> dict:
        def blocking_finish():
            with self._state_lock:
                entry = self._streams.get(stream_id)
                if entry is None:
                    raise _HTTPError(404, f"no such stream: {stream_id}")
                handle, _key = entry
                # submit_finish flips the handle to finished before we
                # release the lock, so a concurrent push observes it and
                # fails with 400 instead of landing behind the finish in
                # the queue.
                future = handle.submit_finish(trace_id=trace_id)
                del self._streams[stream_id]
                return future

        future = await self._run_blocking(blocking_finish)
        result = await self._await_scheduler(future)
        return {
            "path": [int(s) for s in result.path],
            "log_likelihood": float(result.log_likelihood),
            "n_tokens": int(result.path.shape[0]),
        }
