"""On-disk registry of named, versioned model artifacts.

Layout (all paths relative to the registry root)::

    <root>/
        <name>/
            v0001/  manifest.json  arrays-0000.npy  arrays-0001.npy ...
            v0002/  ...

Versions are monotonically increasing integers assigned at save time; the
latest version is simply the largest one present.  The registry is a thin
convention over :mod:`repro.serving.persistence` — each version directory
is a plain artifact, loadable with :func:`~repro.serving.persistence.load_artifact`
even without going through the registry.
"""

from __future__ import annotations

import re
import shutil
from pathlib import Path
from typing import Any, Iterable

from repro.exceptions import ValidationError
from repro.serving import faults
from repro.serving.persistence import (
    MANIFEST_NAME,
    load_artifact,
    read_manifest,
    save_artifact,
)

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_VERSION_RE = re.compile(r"^v(\d{4,})$")


def _version_dirname(version: int) -> str:
    return f"v{version:04d}"


class ModelRegistry:
    """Named, versioned model artifacts under one root directory.

    Parameters
    ----------
    root:
        Registry root directory; created lazily on the first save.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # -------------------------------------------------------------- #
    def _model_dir(self, name: str) -> Path:
        if not _NAME_RE.match(name):
            raise ValidationError(
                f"invalid model name {name!r}: use letters, digits, '.', '_', '-' "
                "and start with a letter or digit"
            )
        return self.root / name

    def list_models(self) -> list[str]:
        """Registered model names (sorted).

        Entries that are not valid model names (stray hidden directories,
        editor leftovers) are skipped, not rejected.
        """
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and _NAME_RE.match(entry.name) and self.versions(entry.name)
        )

    def versions(self, name: str) -> list[int]:
        """All stored versions of a model (sorted ascending)."""
        model_dir = self._model_dir(name)
        if not model_dir.is_dir():
            return []
        found = []
        for entry in model_dir.iterdir():
            match = _VERSION_RE.match(entry.name)
            if match and (entry / MANIFEST_NAME).is_file():
                found.append(int(match.group(1)))
        return sorted(found)

    def latest_version(self, name: str) -> int:
        """The newest stored version of a model."""
        versions = self.versions(name)
        if not versions:
            raise ValidationError(f"no versions of model {name!r} in {self.root}")
        return versions[-1]

    def artifact_path(self, name: str, version: int | None = None) -> Path:
        """Directory of one stored artifact (latest version by default)."""
        if version is None:
            version = self.latest_version(name)
        path = self._model_dir(name) / _version_dirname(version)
        if not (path / MANIFEST_NAME).is_file():
            raise ValidationError(f"no artifact for {name!r} version {version} in {self.root}")
        return path

    # -------------------------------------------------------------- #
    def save(self, name: str, model: Any, metadata: dict | None = None) -> int:
        """Store a model as the next version of ``name``; returns the version.

        The version directory is created with ``exist_ok=False`` and the
        number retried on collision, so concurrent savers to the same name
        get distinct versions instead of silently overwriting each other.
        """
        model_dir = self._model_dir(name)
        existing = self.versions(name)
        version = (existing[-1] + 1) if existing else 1
        while True:
            target = model_dir / _version_dirname(version)
            try:
                target.mkdir(parents=True, exist_ok=False)
                break
            except FileExistsError:
                version += 1
        faults.fire(faults.REGISTRY_WRITE)
        save_artifact(model, target, metadata=metadata)
        return version

    def load(self, name: str, version: int | None = None, mmap: bool = False) -> Any:
        """Load a stored model (latest version by default).

        ``mmap=True`` maps schema-v3 parameter arrays read-only so
        concurrent worker processes share page-cache pages (see
        :func:`~repro.serving.persistence.load_artifact`); pre-v3 artifacts
        fall back to a regular private-copy load.

        A checksum-mismatched or truncated v2/v3 artifact surfaces as
        :class:`~repro.exceptions.ArtifactCorruptError` (see
        :func:`~repro.serving.persistence.verify_checksums`).
        """
        path = self.artifact_path(name, version)
        faults.fire(faults.ARTIFACT_LOAD)
        return load_artifact(path, mmap=mmap)

    def gc(
        self,
        keep_last_n: int,
        name: str | None = None,
        protect: Iterable[tuple[str, int]] = (),
    ) -> list[tuple[str, int]]:
        """Retention: delete all but the newest ``keep_last_n`` versions.

        Parameters
        ----------
        keep_last_n:
            How many of the newest versions of each model to retain (at
            least 1, so the version pinned as "latest" is never collected).
        name:
            Restrict collection to one model; default sweeps every model
            in the registry.
        protect:
            ``(name, version)`` pairs that must survive regardless of age —
            pass a router's :meth:`~repro.serving.router.Router.loaded_models`
            so versions currently serving traffic are never deleted under it.

        Returns the deleted ``(name, version)`` pairs (sorted).  Version
        numbering is append-only: a collected version's number is never
        reused, because :meth:`save` always allocates past the largest
        *directory* present and deletion only happens behind the newest
        ``keep_last_n`` survivors.
        """
        if keep_last_n < 1:
            raise ValidationError(
                f"keep_last_n must be at least 1, got {keep_last_n}"
            )
        protected = set(protect)
        names = [name] if name is not None else self.list_models()
        removed: list[tuple[str, int]] = []
        for model_name in names:
            versions = self.versions(model_name)
            for version in versions[:-keep_last_n]:
                if (model_name, version) in protected:
                    continue
                shutil.rmtree(self._model_dir(model_name) / _version_dirname(version))
                removed.append((model_name, version))
        return sorted(removed)

    def describe(self, name: str, version: int | None = None) -> dict:
        """Manifest header of one artifact: model type, schema, metadata.

        "latest" is resolved exactly once, so the reported version number
        always belongs to the manifest that was read — a concurrent
        ``save`` cannot make this pair versions N and N+1.

        An unreadable manifest (torn write, invalid JSON, missing fields)
        does not crash the call: the returned dict carries
        ``"unreadable": True`` and the error string instead, so operators
        can inventory a registry with one rotten version in it.
        """
        if version is None:
            version = self.latest_version(name)
        try:
            manifest = read_manifest(self.artifact_path(name, version))
            return {
                "name": name,
                "version": version,
                "model_type": manifest["model_type"],
                "schema_version": manifest["schema_version"],
                "metadata": manifest.get("metadata", {}),
            }
        except Exception as exc:
            return {
                "name": name,
                "version": version,
                "unreadable": True,
                "error": f"{type(exc).__name__}: {exc}",
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ModelRegistry(root={str(self.root)!r})"
