"""Scheduling core of the serving stack: queueing, coalescing, policies.

This module is the bottom layer of the serving architecture (scheduling /
transport / storage / execution).  It owns everything between ``submit``
and the service-specific compute callback:

* a **bounded intake queue** (``ServingConfig.queue_capacity``) whose
  overflow fast-fails with :class:`~repro.exceptions.QueueFullError`;
* a single **dispatcher thread** per scheduler that drains the intake
  queue, waits up to ``max_wait_ms`` for stragglers, and hands batches of
  at most ``max_batch_size`` requests to the service's ``_execute`` hook;
* a pluggable :class:`SchedulingPolicy` deciding *which* pending requests
  form the next batch — :class:`FIFOPolicy` (arrival order, the default
  and behavior-identical to the pre-policy dispatcher),
  :class:`WeightedFairPolicy` (deficit-round-robin across models, so one
  chatty model cannot starve the others) and :class:`EDFPolicy`
  (earliest-deadline-first) — selected via
  ``ServingConfig.scheduling_policy``;
* **deadline expiry**: requests whose ``deadline_ms`` lapsed while queued
  resolve with :class:`~repro.exceptions.DeadlineExceededError` *before*
  any engine work is spent on them;
* :class:`ServiceStats` — throughput, occupancy, shed/expiry counters and
  the queue-depth gauge, snapshot-able from any thread.

:class:`~repro.serving.service.TaggingService`,
:class:`~repro.serving.router.Router` and
:class:`~repro.serving.streaming_service.StreamingService` all subclass
:class:`MicroBatchScheduler` and implement only their compute
(`_execute`); transport front ends such as :mod:`repro.serving.http` sit
on top of their ``submit`` APIs.

The dispatcher is a single thread, so each engine and its parameter cache
are used from one thread only; submission is thread-safe and can come from
any number of client threads.
"""

from __future__ import annotations

import heapq
import itertools
import math
import queue
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.analysis.lockorder import make_lock
from repro.core.config import SCHEDULING_POLICIES, ServingConfig, get_serving_config
from repro.exceptions import (
    DeadlineExceededError,
    QueueFullError,
    ServiceShuttingDownError,
    ServingError,
    ValidationError,
)
from repro.serving import faults
from repro.serving.observability import LatencyHistogram, new_trace_id

#: ring-buffer size of per-request trace records kept in ServiceStats.
RECENT_TRACES = 256

#: Dispatcher health states (see :attr:`MicroBatchScheduler.health`).
HEALTHY = "healthy"
DEGRADED = "degraded"
FAILED = "failed"

_TAG = "tag"
_SCORE = "score"


@dataclass
class Request:
    """One queued unit of work, resolved through its future."""

    kind: str
    sequence: np.ndarray
    future: Future
    #: absolute ``time.perf_counter()`` deadline; ``None`` = no deadline.
    deadline: float | None = None
    #: routing key ``(name, version)``; ``None`` in a single-model service.
    key: tuple[str, int] | None = None
    #: service-specific payload (e.g. the stream handle of a push).
    payload: Any = None
    #: opaque per-request identifier, minted at submission when the
    #: transport did not provide one; echoed in stats trace records.
    trace_id: str = ""
    #: ``time.perf_counter()`` at admission; basis for latency histograms.
    enqueued_at: float | None = None
    #: ``time.perf_counter()`` when the dispatcher popped the request into
    #: a batch; ``dequeued_at - enqueued_at`` is the queue wait.  Written
    #: by the dispatcher thread only.
    dequeued_at: float | None = None


def _model_label(key: tuple[str, int]) -> str:
    name, version = key
    return f"{name}:v{version:04d}"


class ServiceStats:
    """Running throughput / batch-occupancy counters (thread-safe snapshots).

    Besides the engine-side counters (batches, tokens, busy time) it tracks
    the load-shedding events of the bounded queue — rejected (queue full)
    and expired (deadline passed) requests — plus, for routed services,
    per-model request counts and model load/evict churn.
    """

    def __init__(
        self,
        queue_depth: Callable[[], int] | None = None,
        extra: Callable[[], dict] | None = None,
    ) -> None:
        self._lock = make_lock("stats")
        #: providers of the queue-depth gauge and additional snapshot
        #: entries (the owning service's health / breaker states).  Called
        #: under the stats lock, so they may only take locks that are
        #: *never* held while calling into this stats object — the
        #: documented order is stats -> {lifecycle, breakers}; the
        #: lock-order tracker verifies it at runtime.
        self._queue_depth = queue_depth
        self._extra = extra
        self.started_at = time.perf_counter()
        self.n_requests = 0  # repro: guarded-by[_lock]
        self.n_batches = 0  # repro: guarded-by[_lock]
        self.n_tokens = 0  # repro: guarded-by[_lock]
        self.max_batch_size = 0  # repro: guarded-by[_lock]
        self.busy_seconds = 0.0  # repro: guarded-by[_lock]
        self.n_rejected = 0  # repro: guarded-by[_lock]
        self.n_expired = 0  # repro: guarded-by[_lock]
        self.n_shed = 0  # repro: guarded-by[_lock]
        self.n_model_loads = 0  # repro: guarded-by[_lock]
        self.n_model_evictions = 0  # repro: guarded-by[_lock]
        self.per_model: dict[str, int] = {}  # repro: guarded-by[_lock]
        #: end-to-end latency (admission -> futures resolved), all requests.
        self.latency = LatencyHistogram()  # repro: guarded-by[_lock]
        #: queue wait (admission -> batch formation), keyed by the
        #: scheduling policy that formed the batch.
        self.queue_wait_by_policy: dict[str, LatencyHistogram] = {}  # repro: guarded-by[_lock]
        #: ring buffer of per-request trace records (newest last).
        self.recent_traces: deque[dict] = deque(maxlen=RECENT_TRACES)  # repro: guarded-by[_lock]

    def record_batch(
        self, n_requests: int, n_tokens: int, seconds: float, key: tuple | None = None
    ) -> None:
        with self._lock:
            self.n_requests += n_requests
            self.n_batches += 1
            self.n_tokens += n_tokens
            self.max_batch_size = max(self.max_batch_size, n_requests)
            self.busy_seconds += seconds
            if key is not None:
                label = _model_label(key)
                self.per_model[label] = self.per_model.get(label, 0) + n_requests

    def record_completed(
        self, requests: Sequence["Request"], policy: str | None = None
    ) -> None:
        """Record per-request latency, queue wait and trace records.

        Called by the executor right before the batch's futures are
        resolved, so a trace ID returned to a client is already visible in
        the stats.  ``policy`` names the scheduling policy that formed the
        batch (the per-policy queue-wait breakdown).
        """
        now = time.perf_counter()
        with self._lock:
            wait_hist = None
            for request in requests:
                if request.enqueued_at is None:
                    continue
                latency = now - request.enqueued_at
                self.latency.record(latency)
                wait = None
                if request.dequeued_at is not None:
                    wait = request.dequeued_at - request.enqueued_at
                    if wait_hist is None:
                        wait_hist = self.queue_wait_by_policy.setdefault(
                            policy or "unknown", LatencyHistogram()
                        )
                    wait_hist.record(wait)
                if request.trace_id:
                    self.recent_traces.append(
                        {
                            "trace_id": request.trace_id,
                            "kind": request.kind,
                            "model": (
                                _model_label(request.key)
                                if request.key is not None
                                else None
                            ),
                            "latency_ms": latency * 1e3,
                            "queue_wait_ms": None if wait is None else wait * 1e3,
                        }
                    )

    def record_rejected(self) -> None:
        with self._lock:
            self.n_rejected += 1

    def record_expired(self) -> None:
        with self._lock:
            self.n_expired += 1

    def record_shed(self) -> None:
        with self._lock:
            self.n_shed += 1

    def record_model_load(self) -> None:
        with self._lock:
            self.n_model_loads += 1

    def record_model_eviction(self) -> None:
        with self._lock:
            self.n_model_evictions += 1

    def snapshot(self) -> dict:
        """Point-in-time stats dict (safe to call from any thread)."""
        with self._lock:
            wall = time.perf_counter() - self.started_at
            batches = max(self.n_batches, 1)
            busy = max(self.busy_seconds, 1e-12)
            snapshot = {
                "n_requests": self.n_requests,
                "n_batches": self.n_batches,
                "n_tokens": self.n_tokens,
                "mean_batch_size": self.n_requests / batches,
                "max_batch_size": self.max_batch_size,
                "busy_seconds": self.busy_seconds,
                "wall_seconds": wall,
                "tokens_per_busy_second": self.n_tokens / busy,
                "queue_depth": self._queue_depth() if self._queue_depth else 0,
                "n_rejected": self.n_rejected,
                "n_expired": self.n_expired,
                "n_shed": self.n_shed,
                "n_model_loads": self.n_model_loads,
                "n_model_evictions": self.n_model_evictions,
                "per_model": dict(self.per_model),
                "latency": self.latency.snapshot(),
                "queue_wait_by_policy": {
                    policy: hist.snapshot()
                    for policy, hist in self.queue_wait_by_policy.items()
                },
                "recent_traces": list(self.recent_traces),
            }
            if self._extra is not None:
                snapshot.update(self._extra())
            return snapshot


# ------------------------------------------------------------------ #
# Scheduling policies
# ------------------------------------------------------------------ #
class SchedulingPolicy:
    """Orders pending requests into micro-batches.

    A policy is a pure in-memory container used from the dispatcher thread
    only: the scheduler pushes every drained request into it and asks it
    for the next batch.  Policies never resolve futures, never drop
    requests and never block — admission control (backpressure) and
    deadline expiry stay in the scheduler.
    """

    #: registry name; also the ``ServingConfig.scheduling_policy`` value.
    name: str

    def push(self, request: Request) -> None:
        raise NotImplementedError

    def pop_batch(self, limit: int) -> list[Request]:
        """Remove and return the next batch (at most ``limit`` requests)."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class FIFOPolicy(SchedulingPolicy):
    """Arrival order, batch after batch — the pre-policy dispatcher behavior."""

    name = "fifo"

    def __init__(self) -> None:
        self._pending: deque[Request] = deque()

    def push(self, request: Request) -> None:
        self._pending.append(request)

    def pop_batch(self, limit: int) -> list[Request]:
        take = min(limit, len(self._pending))
        return [self._pending.popleft() for _ in range(take)]

    def __len__(self) -> int:
        return len(self._pending)


class WeightedFairPolicy(SchedulingPolicy):
    """Deficit round-robin across models: weighted fairness, no starvation.

    Requests are classed by model name (the first element of the routing
    key; single-model services form one class).  Each round every backlogged
    class earns its weight in credits and yields ``floor(credit)`` requests
    (arrival order within the class), so over time class throughput is
    proportional to its weight while every backlogged class is served at
    least once every ``ceil(1 / weight)`` rounds — a flood on one model can
    delay, but never starve, the others.

    Weights come from ``ServingConfig.model_weights`` (missing names
    default to 1.0) and must be positive.
    """

    name = "weighted_fair"

    def __init__(self, weights: Mapping[str, float] | None = None) -> None:
        weights = dict(weights or {})
        for name, weight in weights.items():
            if not weight > 0:
                raise ValidationError(
                    f"model weight for {name!r} must be positive, got {weight}"
                )
        self._weights = weights
        self._queues: OrderedDict[str, deque[Request]] = OrderedDict()
        self._deficits: dict[str, float] = {}
        self._size = 0

    @staticmethod
    def _class_of(request: Request) -> str:
        return request.key[0] if request.key is not None else ""

    def push(self, request: Request) -> None:
        cls = self._class_of(request)
        pending = self._queues.get(cls)
        if pending is None:
            self._queues[cls] = pending = deque()
            # a class re-entering the backlog starts with a clean slate, so
            # idle periods do not bank credit
            self._deficits[cls] = 0.0
        pending.append(request)
        self._size += 1

    def pop_batch(self, limit: int) -> list[Request]:
        batch: list[Request] = []
        while self._size and len(batch) < limit:
            took_any = False
            for cls in list(self._queues):
                pending = self._queues[cls]
                self._deficits[cls] += self._weights.get(cls, 1.0)
                # forced-progress pops can leave a deficit below -1, so the
                # credit term must clamp at zero or "take" would go negative
                take = max(
                    0,
                    min(len(pending), int(self._deficits[cls]), limit - len(batch)),
                )
                for _ in range(take):
                    batch.append(pending.popleft())
                self._size -= take
                self._deficits[cls] -= take
                took_any = took_any or take > 0
                if not pending:
                    del self._queues[cls]
                    del self._deficits[cls]
                if len(batch) >= limit:
                    break
            if not took_any:
                # Every backlogged class has a sub-unit credit (tiny
                # weights): instead of spinning ~1/weight rounds, force one
                # request from the class closest to a full credit.  Its
                # deficit goes negative, which is exactly deficit round
                # robin's memory — long-run shares stay weight-proportional.
                cls = max(self._queues, key=self._deficits.__getitem__)
                batch.append(self._queues[cls].popleft())
                self._size -= 1
                self._deficits[cls] -= 1.0
                if not self._queues[cls]:
                    del self._queues[cls]
                    del self._deficits[cls]
        return batch

    def __len__(self) -> int:
        return self._size


class EDFPolicy(SchedulingPolicy):
    """Earliest deadline first: the most urgent pending requests batch first.

    Requests without a deadline sort last; ties (equal deadlines, and all
    deadline-free requests) break by arrival order, so a deadline-free
    workload degenerates to exact FIFO.
    """

    name = "edf"

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Request]] = []
        self._arrivals = itertools.count()

    def push(self, request: Request) -> None:
        deadline = request.deadline if request.deadline is not None else math.inf
        heapq.heappush(self._heap, (deadline, next(self._arrivals), request))

    def pop_batch(self, limit: int) -> list[Request]:
        take = min(limit, len(self._heap))
        return [heapq.heappop(self._heap)[2] for _ in range(take)]

    def __len__(self) -> int:
        return len(self._heap)


#: policy name -> constructor taking the ServingConfig.
_POLICY_FACTORIES: dict[str, Callable[[ServingConfig], SchedulingPolicy]] = {
    "fifo": lambda config: FIFOPolicy(),
    "weighted_fair": lambda config: WeightedFairPolicy(config.model_weights),
    "edf": lambda config: EDFPolicy(),
}

assert set(_POLICY_FACTORIES) == set(SCHEDULING_POLICIES)


def make_policy(config: ServingConfig) -> SchedulingPolicy:
    """Instantiate the scheduling policy selected by a serving config."""
    try:
        factory = _POLICY_FACTORIES[config.scheduling_policy]
    except KeyError:
        raise ValidationError(
            f"unknown scheduling policy {config.scheduling_policy!r}; "
            f"available: {sorted(_POLICY_FACTORIES)}"
        ) from None
    return factory(config)


# ------------------------------------------------------------------ #
# Scheduler
# ------------------------------------------------------------------ #
class MicroBatchScheduler:
    """Bounded queue + policy + single dispatcher thread, shared by services.

    Subclasses implement :meth:`_execute` (compute one micro-batch of
    *live* requests and resolve their futures) and call :meth:`_start`
    once their own state is ready.  Everything else — thread-safe bounded
    submission, straggler coalescing with ``max_wait_ms``, policy-ordered
    batch formation, deadline expiry before compute, drain-on-close —
    lives here.
    """

    _thread_name = "repro-serving-dispatcher"

    def __init__(self, config: ServingConfig | None = None) -> None:
        self.config = config or get_serving_config()
        self._policy = make_policy(self.config)
        self._queue: queue.Queue = queue.Queue()
        # Guards the closed/capacity-check-then-enqueue in _enqueue against
        # close() and concurrent submitters: without it a request could land
        # behind the shutdown sentinel (its future would never resolve) or
        # two submitters could both pass the capacity check.  Also guards
        # the health/restart-count/drain-deadline lifecycle fields below.
        # Lock order: the stats lock may be taken first (snapshot ->
        # _stats_extra -> this lock); this lock is never held while calling
        # into stats.
        self._lifecycle_lock = make_lock("scheduler.lifecycle")
        #: dispatcher health: HEALTHY, DEGRADED (running on a supervised
        #: restart that has not completed a batch yet) or FAILED (restart
        #: budget exhausted / control-flow exception; nothing drains the
        #: queue anymore).
        self._health = HEALTHY  # repro: guarded-by[_lifecycle_lock]
        #: lifetime count of supervised dispatcher restarts.
        self._restarts = 0  # repro: guarded-by[_lifecycle_lock]
        self.stats = ServiceStats(
            queue_depth=lambda: self.queue_depth, extra=self._stats_extra
        )
        self._closed = False  # repro: guarded-by[_lifecycle_lock]
        #: absolute perf_counter deadline of a drain-mode close; ``None``
        #: means flush everything (the classic close).  Written once under
        #: the lifecycle lock before the shutdown sentinel is enqueued.
        self._drain_deadline: float | None = None  # repro: guarded-by[_lifecycle_lock]
        # Number of accepted-but-undispatched requests: intake queue plus
        # the policy's pending buffer.  Kept as an explicit counter (not
        # qsize()) so the capacity check stays exact while the dispatcher
        # moves requests from the intake queue into the policy.
        self._depth = 0  # repro: guarded-by[_lifecycle_lock]
        #: batch currently being processed; read by _abandon_pending when
        #: the dispatcher dies mid-batch (single-writer: dispatcher thread).
        self._in_flight: list[Request] = []
        self._dispatcher = threading.Thread(
            target=self._run, name=self._thread_name, daemon=True
        )

    def _start(self) -> None:
        self._dispatcher.start()

    def _stats_extra(self) -> dict:
        """Resilience entries merged into ``ServiceStats.snapshot()``.

        Called under the stats lock; takes the lifecycle lock, which is
        safe because stats methods are never invoked while the lifecycle
        lock is held (lock order: stats -> lifecycle, enforced by the
        lock-order tracker).
        """
        with self._lifecycle_lock:
            return {
                "health": self._health,
                "n_dispatcher_restarts": self._restarts,
            }

    @property
    def queue_depth(self) -> int:
        """Instantaneous number of accepted, undispatched requests."""
        with self._lifecycle_lock:
            return self._depth

    @property
    def health(self) -> str:
        """Dispatcher health: ``healthy``, ``degraded`` or ``failed``."""
        with self._lifecycle_lock:
            return self._health

    @property
    def scheduling_policy(self) -> str:
        """Name of the active scheduling policy."""
        return self._policy.name

    # -------------------------------------------------------------- #
    # Submission
    # -------------------------------------------------------------- #
    @staticmethod
    def _absolute_deadline(deadline_ms: float | None) -> float | None:
        if deadline_ms is None:
            return None
        if deadline_ms <= 0:
            raise ValidationError(
                f"deadline_ms must be positive, got {deadline_ms}"
            )
        return time.perf_counter() + deadline_ms / 1000.0

    def _check_sequence(self, kind: str, sequence: np.ndarray) -> None:
        """Submit-time payload validation; overridable per service."""
        if sequence.ndim < 1 or sequence.shape[0] < 1:
            raise ValidationError(
                "requests must be sequences with at least one timestep, got "
                f"shape {sequence.shape}"
            )

    def _enqueue(
        self,
        kind: str,
        sequence: np.ndarray,
        deadline_ms: float | None = None,
        key: tuple[str, int] | None = None,
        payload: Any = None,
        trace_id: str | None = None,
    ) -> Future:
        seq = np.asarray(sequence)
        self._check_sequence(kind, seq)
        request = Request(
            kind=kind,
            sequence=seq,
            future=Future(),
            deadline=self._absolute_deadline(deadline_ms),
            key=key,
            payload=payload,
            trace_id=trace_id or new_trace_id(),
            enqueued_at=time.perf_counter(),
        )
        capacity = self.config.queue_capacity
        with self._lifecycle_lock:
            if self._closed:
                raise ServiceShuttingDownError(
                    f"{type(self).__name__} is closed"
                    + (" (dispatcher failed)" if self._health == FAILED else "")
                )
            # Only submitters (all serialized by this lock) grow the depth,
            # so check-then-put cannot overshoot the capacity: the
            # dispatcher draining concurrently only shrinks it.
            rejected = capacity is not None and self._depth >= capacity
            if not rejected:
                self._depth += 1
                self._queue.put(request)
        if rejected:
            # Recorded after releasing the lifecycle lock: stats methods
            # take the stats lock, and holding lifecycle->stats here would
            # form an ABBA cycle with snapshot's stats->lifecycle order.
            self.stats.record_rejected()
            raise QueueFullError(
                f"serving queue is at capacity ({capacity}); retry later "
                "or raise ServingConfig.queue_capacity"
            )
        return request.future

    # -------------------------------------------------------------- #
    # Dispatcher
    # -------------------------------------------------------------- #
    def _coalesce(self) -> bool:
        """Pull queued requests into the policy's pending buffer.

        Fast-drains whatever is already queued without touching the clock
        (under burst load this fills the whole batch with no timed waits at
        all); once the queue runs dry with fewer than ``max_batch_size``
        requests pending, waits up to ``max_wait_ms`` for stragglers.  The
        entire available backlog is drained — not just one batch's worth —
        so the policy ranks *all* pending requests when it forms the next
        batch.

        Returns True when the shutdown sentinel was consumed.
        """
        deadline: float | None = None  # set lazily on the first empty poll
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                if len(self._policy) >= self.config.max_batch_size:
                    return False  # a full batch is ready; don't wait
                if deadline is None:
                    deadline = time.perf_counter() + self.config.max_wait_ms / 1000.0
                timeout = deadline - time.perf_counter()
                if timeout <= 0:
                    return False
                try:
                    item = self._queue.get(timeout=timeout)
                except queue.Empty:
                    return False
            if item is None:
                return True
            self._policy.push(item)

    def _next_batch(self) -> list[Request]:
        """Pop the policy's next micro-batch, keeping the depth gauge exact."""
        batch = self._policy.pop_batch(self.config.max_batch_size)
        if batch:
            popped_at = time.perf_counter()
            for request in batch:
                request.dequeued_at = popped_at
            with self._lifecycle_lock:
                self._depth -= len(batch)
        return batch

    def _drop_expired(self, batch: list[Request]) -> list[Request]:
        """Resolve expired requests with DeadlineExceededError; return the rest.

        Runs immediately before compute, so an expired request never costs
        an engine call.
        """
        now = time.perf_counter()
        live: list[Request] = []
        for request in batch:
            if request.deadline is not None and now > request.deadline:
                self.stats.record_expired()
                if request.future.set_running_or_notify_cancel():
                    request.future.set_exception(
                        DeadlineExceededError(
                            "request deadline expired after "
                            f"{(now - request.deadline) * 1e3:.1f} ms in queue"
                        )
                    )
            else:
                live.append(request)
        return live

    def _dispatch(self, batch: list[Request]) -> None:
        live = self._drop_expired(batch)
        if live:
            self._execute(live)

    def _execute(self, batch: list[Request]) -> None:
        raise NotImplementedError

    def _run(self) -> None:
        try:
            self._serve()
        except Exception as exc:
            # An unexpected exception escaped the compute path and killed
            # this dispatcher thread.  Supervision: fail only the batch
            # that was in flight, keep every queued request, and restart
            # the dispatcher with capped exponential backoff — until the
            # restart budget is spent, at which point the service is
            # `failed` and everything pending is abandoned.
            self._supervise(exc)
        except BaseException as exc:
            # Control-flow exceptions (KeyboardInterrupt, SystemExit) are
            # deliberate stops: never restart.  No thread will ever drain
            # the queue again, so fail every accepted-but-unserved future —
            # a client blocked in an untimed result() must not hang forever
            # — and refuse new submissions, then let the exception
            # terminate the thread.
            self._fail_in_flight(exc)
            self._abandon_pending(exc)
            raise

    def _fail_in_flight(self, cause: BaseException) -> None:
        """Resolve the dying dispatch's in-flight batch with a ServingError."""
        in_flight, self._in_flight = self._in_flight, []
        error = ServingError(
            f"serving dispatcher crashed ({type(cause).__name__}: {cause}) "
            "while this request was in flight"
        )
        for request in in_flight:
            future = request.future
            if future.done():
                continue
            if future.set_running_or_notify_cancel():
                future.set_exception(error)

    def _supervise(self, cause: Exception) -> None:
        """Handle an unexpected dispatcher death: restart or declare failure.

        Runs on the dying dispatcher thread.  The in-flight batch is failed
        immediately (its futures must never hang), then either a fresh
        dispatcher thread is started after a capped exponential backoff —
        queued requests survive untouched and are served by the successor —
        or, with the restart budget exhausted, the service flips to
        ``failed``: pending work is abandoned and intake refused.
        """
        self._fail_in_flight(cause)
        with self._lifecycle_lock:
            if self._restarts >= self.config.max_dispatcher_restarts:
                restart = False
                self._health = FAILED
            else:
                restart = True
                self._restarts += 1
                self._health = DEGRADED
                attempt = self._restarts
        if not restart:
            self._abandon_pending(cause)
            return  # swallow: the failure is fully reported through futures
        backoff_s = (
            min(
                self.config.restart_backoff_ms * 2 ** (attempt - 1),
                self.config.restart_backoff_max_ms,
            )
            / 1000.0
        )
        if backoff_s > 0:
            time.sleep(backoff_s)
        with self._lifecycle_lock:
            successor = threading.Thread(
                target=self._run, name=f"{self._thread_name}-r{attempt}", daemon=True
            )
            # started before being published, so close() never joins an
            # unstarted thread
            successor.start()
            self._dispatcher = successor
            if self._closed:
                # close() raced the crash: its sentinel may have been
                # consumed by the dead dispatcher.  Re-enqueue one so the
                # successor still terminates after flushing (submissions
                # are refused once closed, so a duplicate sentinel is
                # harmless — extra Nones just re-trigger the shutdown
                # flush of an empty backlog).
                self._queue.put(None)

    def _drain_expired(self) -> bool:
        with self._lifecycle_lock:
            deadline = self._drain_deadline
        return deadline is not None and time.perf_counter() > deadline

    def _serve(self) -> None:
        stopping = False
        while not stopping:
            # A drain deadline (set by close()) bounds the backlog too: the
            # batch already dispatched finishes, everything still queued
            # past the deadline is shed, not served.
            if self._drain_expired():
                self._shed_pending()
                return
            if len(self._policy) == 0:
                item = self._queue.get()
                if item is None:
                    break
                self._policy.push(item)
            stopping = self._coalesce()
            self._in_flight = self._next_batch()
            faults.fire(faults.DISPATCHER_LOOP)
            self._dispatch(self._in_flight)
            self._in_flight = []
            with self._lifecycle_lock:
                if self._health == DEGRADED:
                    # a supervised restart served a batch end to end: recovered
                    self._health = HEALTHY
        # Shutdown: serve whatever is still pending, in policy-ordered
        # full batches — until the drain deadline (if any); everything
        # past it is shed with ServiceShuttingDownError.
        for item in self._drain_queue():
            self._policy.push(item)
        while len(self._policy):
            if self._drain_expired():
                self._shed_pending()
                break
            self._in_flight = self._next_batch()
            self._dispatch(self._in_flight)
            self._in_flight = []

    def _shed_pending(self) -> None:
        """Drain-deadline shedding: fail the remaining backlog, keep exact
        depth accounting."""
        error = ServiceShuttingDownError(
            "service drained past its deadline "
            f"({self.config.drain_timeout_s}s); this request was shed — "
            "retry against another instance"
        )
        remainder = self._policy.pop_batch(len(self._policy))
        remainder.extend(self._drain_queue())
        if remainder:
            with self._lifecycle_lock:
                self._depth -= len(remainder)
        for request in remainder:
            self.stats.record_shed()
            if request.future.set_running_or_notify_cancel():
                request.future.set_exception(error)

    def _drain_queue(self) -> list[Request]:
        drained: list[Request] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return drained
            if item is not None:
                drained.append(item)

    def _abandon_pending(self, cause: BaseException) -> None:
        """Fail the in-flight batch and every pending future after a fatal
        dispatcher error, so no client waits on a request nobody will serve."""
        with self._lifecycle_lock:
            self._closed = True
        error = ServingError(
            f"serving dispatcher died ({type(cause).__name__}) before this "
            "request was served"
        )
        pending: Iterable[Request] = [
            *self._in_flight,
            *self._policy.pop_batch(len(self._policy)),
            *self._drain_queue(),
        ]
        for request in pending:
            future = request.future
            # Requests resolved before the failure (e.g. expired ones) are
            # kept; only still-pending futures get the abandonment error.
            if future.done():
                continue
            if future.set_running_or_notify_cancel():
                future.set_exception(error)

    # -------------------------------------------------------------- #
    def close(
        self, timeout: float | None = 10.0, drain_timeout_s: float | None = None
    ) -> bool:
        """Stop accepting requests, flush the queue, join the dispatcher.

        ``drain_timeout_s`` (defaulting to ``ServingConfig.drain_timeout_s``)
        turns the flush into a bounded *drain*: queued work keeps being
        served until the deadline, and whatever remains past it is shed
        with :class:`~repro.exceptions.ServiceShuttingDownError`.  ``None``
        in both places keeps the classic unbounded flush.

        Returns ``True`` when the dispatcher finished within ``timeout``,
        ``False`` when it is still running (the flush did not complete —
        accepted futures may still be pending).  Calling ``close`` again
        re-joins and reports the current status.
        """
        if drain_timeout_s is None:
            drain_timeout_s = self.config.drain_timeout_s
        with self._lifecycle_lock:
            if not self._closed:
                self._closed = True
                if drain_timeout_s is not None:
                    self._drain_deadline = time.perf_counter() + drain_timeout_s
                # The sentinel is enqueued under the lock, so it is
                # guaranteed to be the last item — every accepted request
                # gets served (or shed at the drain deadline).
                self._queue.put(None)
        # A supervised restart can swap self._dispatcher while we wait, so
        # re-join whichever thread is current until it stays put or the
        # timeout budget runs out.
        deadline = None if timeout is None else time.perf_counter() + timeout
        while True:
            dispatcher = self._dispatcher
            remaining = (
                None if deadline is None else max(0.0, deadline - time.perf_counter())
            )
            dispatcher.join(timeout=remaining)
            if dispatcher.is_alive() or dispatcher is self._dispatcher:
                break
        return not self._dispatcher.is_alive()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
