"""Online (token-at-a-time) tagging on top of the streaming engine session.

:class:`StreamingDecoder` is the tokens-in/labels-out face of
:class:`repro.hmm.backends.StreamingSession`: it scores each arriving raw
observation under the model's emission family and feeds the resulting
log-likelihood row to the session, surfacing per-token filtering posteriors
and fixed-lag Viterbi labels.  This is the scenario the batch engine cannot
serve — tagging a sequence *while it is still arriving* — at an ``O(K^2)``
cost per token.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from repro.core.config import get_serving_config
from repro.exceptions import ValidationError
from repro.hmm.backends import StreamStep
from repro.serving.persistence import resolve_hmm


@dataclass
class StreamResult:
    """Everything a finished stream produced.

    Attributes
    ----------
    path:
        The complete label sequence (fixed-lag labels for the prefix, exact
        Viterbi labels for the final window).  With ``keep_history=False``
        only the final window's labels (not yet emitted via ``push``).
    filtering:
        ``(T, K)`` per-token filtering posteriors ``p(x_t | y_1..t)``,
        row-aligned with ``path``.  With ``keep_history=False`` nothing is
        retained and this is an empty ``(0, K)`` array — consume the
        posteriors from each ``push(...)`` return value instead.
    log_likelihood:
        Final log marginal likelihood ``log P(y_1..T)``.
    """

    path: np.ndarray
    filtering: np.ndarray
    log_likelihood: float


@dataclass
class _StreamState:
    steps: list[StreamStep] = field(default_factory=list)
    labels: dict[int, int] = field(default_factory=dict)


class StreamingDecoder:
    """Incremental tagger over one online observation sequence.

    Parameters
    ----------
    model:
        An :class:`~repro.hmm.model.HMM` or a fitted estimator wrapper
        (``DiversifiedHMM``, ``SupervisedDiversifiedHMM``, the supervised
        classifiers).
    lag:
        Fixed lag of the sliding Viterbi window: the label of token ``t``
        is finalized once token ``t + lag`` has arrived (larger lag = more
        context = closer to full-sequence Viterbi; ``lag >= T`` reproduces
        it exactly).  Defaults to the process-wide
        :class:`~repro.core.config.ServingConfig` value; pass ``None``
        explicitly via ``ServingConfig(streaming_lag=None)`` to defer all
        labels to :meth:`finish`.
    keep_history:
        When True (default), every step and finalized label is retained so
        :meth:`finish` can assemble the complete :class:`StreamResult`.
        For unbounded streams (the memory would grow ``O(T * K)``) pass
        False: :meth:`push` still returns each step and its finalized
        labels to the caller, only the fixed-lag window is kept, and
        :meth:`finish` reports just the final window's labels.

    Examples
    --------
    >>> decoder = StreamingDecoder(model, lag=8)        # doctest: +SKIP
    >>> for token in incoming_tokens:                   # doctest: +SKIP
    ...     step = decoder.push(token)
    ...     print(step.filtering, step.finalized)
    >>> result = decoder.finish()                       # doctest: +SKIP
    """

    _UNSET = object()

    def __init__(
        self,
        model: Any,
        lag: int | None | object = _UNSET,
        keep_history: bool = True,
    ) -> None:
        hmm = resolve_hmm(model)
        if lag is StreamingDecoder._UNSET:
            lag = get_serving_config().streaming_lag
        self._emissions = hmm.emissions
        self._session = hmm.stream(lag=lag)
        self._state = _StreamState()
        self._keep_history = keep_history
        self._last_step: StreamStep | None = None

    @property
    def n_tokens(self) -> int:
        """Number of observations consumed so far."""
        return self._session.t + 1

    @property
    def finalized_labels(self) -> list[int]:
        """Labels finalized so far, in token order (prefix of the path)."""
        labels = self._state.labels
        return [labels[t] for t in range(len(labels))]

    def _record(self, pairs: Iterable[tuple[int, int]]) -> None:
        for position, state in pairs:
            self._state.labels[position] = state

    def push(self, observation: Any) -> StreamStep:
        """Consume one observation; returns the per-token stream step.

        The observation is a single timestep in the emission family's
        format: an int symbol (categorical), a float (Gaussian) or a binary
        feature vector (Bernoulli).
        """
        obs = np.asarray(observation)
        log_obs = self._emissions.log_likelihoods(obs[None, ...])
        step = self._session.step(log_obs[0])
        self._last_step = step
        if self._keep_history:
            self._state.steps.append(step)
            self._record(step.finalized)
        return step

    def push_many(self, observations: Iterable[Any]) -> list[StreamStep]:
        """Consume several observations; returns one step per token."""
        return [self.push(obs) for obs in observations]

    def finish(self) -> StreamResult:
        """Flush the remaining Viterbi window and assemble the result.

        With ``keep_history=True`` the result covers the whole stream; with
        ``keep_history=False`` it covers only the final window (everything
        earlier was already handed out via ``push(...).finalized``).
        """
        if self._last_step is None:
            raise ValidationError("cannot finish a stream with no observations")
        remaining = self._session.finish()
        if not self._keep_history:
            n_states = self._last_step.filtering.shape[0]
            return StreamResult(
                path=np.array([state for _, state in remaining], dtype=np.int64),
                filtering=np.empty((0, n_states)),
                log_likelihood=self._last_step.log_likelihood,
            )
        self._record(remaining)
        steps = self._state.steps
        labels = self._state.labels
        path = np.array([labels[t] for t in range(len(steps))], dtype=np.int64)
        return StreamResult(
            path=path,
            filtering=np.stack([s.filtering for s in steps]),
            log_likelihood=steps[-1].log_likelihood,
        )


def stream_decode(model: Any, sequence: np.ndarray, lag: int | None = None) -> StreamResult:
    """One-shot helper: stream a whole sequence through a fresh decoder.

    Mostly useful for testing fixed-lag behaviour against batch decoding;
    online callers should drive :class:`StreamingDecoder` directly.
    """
    decoder = StreamingDecoder(model, lag=lag)
    decoder.push_many(sequence)
    return decoder.finish()
