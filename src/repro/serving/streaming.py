"""Online (token-at-a-time) tagging on top of the streaming engine sessions.

:class:`StreamingDecoder` is the tokens-in/labels-out face of
:class:`repro.hmm.backends.StreamingSession`: it scores each arriving raw
observation under the model's emission family and feeds the resulting
log-likelihood row to the session, surfacing per-token filtering posteriors
and fixed-lag Viterbi labels.  This is the scenario the batch engine cannot
serve — tagging a sequence *while it is still arriving* — at an ``O(K^2)``
cost per token.

:class:`StreamPool` is the high-fanout counterpart: it multiplexes many
client streams onto one
:class:`~repro.hmm.backends.BatchedStreamingSession`, so a tick over M
concurrent streams costs one vectorized emission-scoring call plus one
batched ``(M, K, K)`` propagation instead of M separate decoder steps —
while every stream's output stays bit-identical to a dedicated
:class:`StreamingDecoder`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from repro.core.config import get_serving_config
from repro.exceptions import ValidationError
from repro.hmm.backends import StreamStep
from repro.serving.persistence import resolve_hmm

#: "Use the ServingConfig default" marker for ``lag`` parameters, distinct
#: from ``None`` (which means *infinite* lag: defer all labels to finish).
_UNSET = object()


@dataclass
class StreamResult:
    """Everything a finished stream produced.

    Attributes
    ----------
    path:
        The complete label sequence (fixed-lag labels for the prefix, exact
        Viterbi labels for the final window).  With ``keep_history=False``
        only the final window's labels (not yet emitted via ``push``).
    filtering:
        ``(T, K)`` per-token filtering posteriors ``p(x_t | y_1..t)``,
        row-aligned with ``path``.  With ``keep_history=False`` nothing is
        retained and this is an empty ``(0, K)`` array — consume the
        posteriors from each ``push(...)`` return value instead.
    log_likelihood:
        Final log marginal likelihood ``log P(y_1..T)``.
    """

    path: np.ndarray
    filtering: np.ndarray
    log_likelihood: float


@dataclass
class _StreamState:
    """Per-stream history shared by :class:`StreamingDecoder` and pool streams."""

    keep_history: bool = True
    steps: list[StreamStep] = field(default_factory=list)
    labels: dict[int, int] = field(default_factory=dict)
    last_step: StreamStep | None = None

    def record_pairs(self, pairs: Iterable[tuple[int, int]]) -> None:
        for position, state in pairs:
            self.labels[position] = state

    def record(self, step: StreamStep) -> None:
        self.last_step = step
        if self.keep_history:
            self.steps.append(step)
            self.record_pairs(step.finalized)

    def assemble(self, remaining: list[tuple[int, int]]) -> StreamResult:
        """Build the :class:`StreamResult` from the session's final flush."""
        if self.last_step is None:
            raise ValidationError("cannot finish a stream with no observations")
        if not self.keep_history:
            n_states = self.last_step.filtering.shape[0]
            return StreamResult(
                path=np.array([state for _, state in remaining], dtype=np.int64),
                filtering=np.empty((0, n_states)),
                log_likelihood=self.last_step.log_likelihood,
            )
        self.record_pairs(remaining)
        path = np.array(
            [self.labels[t] for t in range(len(self.steps))], dtype=np.int64
        )
        return StreamResult(
            path=path,
            filtering=np.stack([s.filtering for s in self.steps]),
            log_likelihood=self.steps[-1].log_likelihood,
        )


class StreamingDecoder:
    """Incremental tagger over one online observation sequence.

    Parameters
    ----------
    model:
        An :class:`~repro.hmm.model.HMM` or a fitted estimator wrapper
        (``DiversifiedHMM``, ``SupervisedDiversifiedHMM``, the supervised
        classifiers).
    lag:
        Fixed lag of the sliding Viterbi window: the label of token ``t``
        is finalized once token ``t + lag`` has arrived (larger lag = more
        context = closer to full-sequence Viterbi; ``lag >= T`` reproduces
        it exactly).  Defaults to the process-wide
        :class:`~repro.core.config.ServingConfig` value; pass ``None``
        explicitly to defer all labels to :meth:`finish`.
    keep_history:
        When True (default), every step and finalized label is retained so
        :meth:`finish` can assemble the complete :class:`StreamResult`.
        For unbounded streams (the memory would grow ``O(T * K)``) pass
        False: :meth:`push` still returns each step and its finalized
        labels to the caller, only the fixed-lag window is kept, and
        :meth:`finish` reports just the final window's labels.

    Examples
    --------
    >>> decoder = StreamingDecoder(model, lag=8)        # doctest: +SKIP
    >>> for token in incoming_tokens:                   # doctest: +SKIP
    ...     step = decoder.push(token)
    ...     print(step.filtering, step.finalized)
    >>> result = decoder.finish()                       # doctest: +SKIP
    """

    _UNSET = _UNSET  # kept as a class attribute for backward compatibility

    def __init__(
        self,
        model: Any,
        lag: int | None | object = _UNSET,
        keep_history: bool = True,
    ) -> None:
        hmm = resolve_hmm(model)
        if lag is _UNSET:
            lag = get_serving_config().streaming_lag
        self._emissions = hmm.emissions
        self._session = hmm.stream(lag=lag)
        self._state = _StreamState(keep_history=keep_history)

    @property
    def n_tokens(self) -> int:
        """Number of observations consumed so far."""
        return self._session.t + 1

    @property
    def finalized_labels(self) -> list[int]:
        """Labels finalized so far, in token order (prefix of the path)."""
        labels = self._state.labels
        return [labels[t] for t in range(len(labels))]

    def push(self, observation: Any) -> StreamStep:
        """Consume one observation; returns the per-token stream step.

        The observation is a single timestep in the emission family's
        format: an int symbol (categorical), a float (Gaussian) or a binary
        feature vector (Bernoulli).
        """
        obs = np.asarray(observation)
        log_obs = self._emissions.log_likelihoods(obs[None, ...])
        step = self._session.step(log_obs[0])
        self._state.record(step)
        return step

    def push_many(self, observations: Iterable[Any]) -> list[StreamStep]:
        """Consume several observations; returns one step per token."""
        return [self.push(obs) for obs in observations]

    def decode_tail(self) -> np.ndarray:
        """Current best labels of the not-yet-finalized tail, without closing.

        The streaming analogue of the chunked decoder's window flush
        (:func:`repro.hmm.longseq.chunked_viterbi` emits each window's tail
        once the next window's overlap confirms it): the labels
        :meth:`finish` would emit *right now*, backtracked from the current
        best state, with the stream left open.  ``finalized_labels`` +
        ``decode_tail()`` is the full best path so far; the tail labels are
        provisional and may be revised by further :meth:`push` calls.
        """
        pairs = self._session.peek_tail()
        return np.array([state for _, state in pairs], dtype=np.int64)

    def finish(self) -> StreamResult:
        """Flush the remaining Viterbi window and assemble the result.

        With ``keep_history=True`` the result covers the whole stream; with
        ``keep_history=False`` it covers only the final window (everything
        earlier was already handed out via ``push(...).finalized``).
        """
        if self._state.last_step is None:
            raise ValidationError("cannot finish a stream with no observations")
        return self._state.assemble(self._session.finish())


def stream_decode(
    model: Any, sequence: np.ndarray, lag: int | None | object = _UNSET
) -> StreamResult:
    """One-shot helper: stream a whole sequence through a fresh decoder.

    Mostly useful for testing fixed-lag behaviour against batch decoding;
    online callers should drive :class:`StreamingDecoder` directly.  With
    ``lag`` omitted the decoder follows ``ServingConfig.streaming_lag``
    (the sentinel is forwarded as-is, so the default here and on
    :class:`StreamingDecoder` cannot drift apart); pass ``lag=None``
    explicitly for infinite lag.
    """
    decoder = StreamingDecoder(model, lag=lag)
    decoder.push_many(sequence)
    return decoder.finish()


# ------------------------------------------------------------------ #
# Pooled (batched) streaming
# ------------------------------------------------------------------ #
class PooledStream:
    """Client handle for one stream multiplexed through a :class:`StreamPool`.

    Mirrors the :class:`StreamingDecoder` surface (``push``/``finish``,
    ``n_tokens``, ``finalized_labels``); the underlying recursions run
    batched with the pool's other streams.
    """

    def __init__(self, pool: "StreamPool", slot: int, keep_history: bool) -> None:
        self._pool = pool
        self._slot = slot
        self._state = _StreamState(keep_history=keep_history)
        self._finished = False
        self._n_pushed = 0

    @property
    def n_tokens(self) -> int:
        """Number of observations consumed so far."""
        return self._n_pushed

    @property
    def finalized_labels(self) -> list[int]:
        """Labels finalized so far, in token order (prefix of the path)."""
        labels = self._state.labels
        return [labels[t] for t in range(len(labels))]

    def push(self, observation: Any) -> StreamStep:
        """Consume one observation (a one-stream tick through the pool)."""
        return self._pool.push_tick([(self, observation)])[0]

    def push_wave(self, observations: Sequence[Any]) -> list[StreamStep]:
        """Consume a wave of observations for *this* stream in one submission.

        Emission scoring for the whole wave happens in a single vectorized
        call (a stack of timesteps is just a sequence to the emission
        family); the per-token propagations then run in arrival order, so
        the returned steps are bit-identical to ``[self.push(o) for o in
        observations]`` at one scoring call instead of ``len(observations)``.
        """
        if self._finished:
            raise ValidationError("cannot push to a finished stream")
        wave = [np.asarray(obs) for obs in observations]
        if not wave:
            raise ValidationError("push_wave requires at least one observation")
        log_rows = self._pool._emissions.log_likelihoods(np.stack(wave))
        steps = []
        for row in log_rows:
            step = self._pool._session.step_many(row[None, ...], [self._slot])[0]
            self._state.record(step)
            self._n_pushed += 1
            steps.append(step)
        return steps

    def decode_tail(self) -> np.ndarray:
        """Provisional tail labels without closing the stream.

        Same contract as :meth:`StreamingDecoder.decode_tail`, backed by
        the pool's batched session.
        """
        if self._finished:
            return np.array([], dtype=np.int64)
        pairs = self._pool._session.peek_tail(self._slot)
        return np.array([state for _, state in pairs], dtype=np.int64)

    def finish(self) -> StreamResult:
        """Flush the remaining window, free the pool slot, assemble the result."""
        if self._finished:
            raise ValidationError("stream already finished")
        if self._state.last_step is None:
            raise ValidationError("cannot finish a stream with no observations")
        remaining = self._pool._finish_slot(self._slot)
        self._finished = True
        return self._state.assemble(remaining)


class StreamPool:
    """Multiplexes many online client streams onto one batched session.

    Parameters
    ----------
    model:
        An :class:`~repro.hmm.model.HMM` or a fitted estimator wrapper.
    lag:
        Default fixed lag for streams opened without an explicit one;
        falls back to ``ServingConfig.streaming_lag`` when omitted.
    keep_history:
        Default history retention for opened streams (see
        :class:`StreamingDecoder`).

    Usage
    -----
    ``open()`` hands out :class:`PooledStream` handles;
    :meth:`push_tick` advances any subset of them together as *one*
    batched tick — one emission-scoring call over the stacked observations
    and one ``(M, K, K)`` propagation — which is where the fanout speedup
    over per-stream :class:`StreamingDecoder` stepping comes from
    (``benchmarks/test_bench_serving.py`` gates it).  ``handle.push`` is
    the single-stream convenience for stragglers.
    """

    def __init__(
        self,
        model: Any,
        lag: int | None | object = _UNSET,
        keep_history: bool = True,
    ) -> None:
        hmm = resolve_hmm(model)
        if lag is _UNSET:
            lag = get_serving_config().streaming_lag
        self._emissions = hmm.emissions
        self._default_lag = lag
        self._default_keep_history = keep_history
        self._session = hmm.stream_batch()

    @property
    def n_streams(self) -> int:
        """Number of currently open (unfinished) streams."""
        return self._session.n_streams

    def open(
        self,
        lag: int | None | object = _UNSET,
        keep_history: bool | None = None,
    ) -> PooledStream:
        """Open one more client stream; slots of finished streams are reused."""
        if lag is _UNSET:
            lag = self._default_lag
        if keep_history is None:
            keep_history = self._default_keep_history
        slot = self._session.add_stream(lag=lag)
        return PooledStream(self, slot, keep_history=keep_history)

    def push_tick(
        self, items: Sequence[tuple[PooledStream, Any]]
    ) -> list[StreamStep]:
        """Advance several streams by one observation each, batched.

        ``items`` pairs each advancing stream handle with its newly arrived
        observation; returns the per-stream :class:`StreamStep` results in
        the same order.
        """
        if not items:
            return []
        for stream, _ in items:
            if stream._pool is not self:
                raise ValidationError("stream belongs to a different pool")
            if stream._finished:
                raise ValidationError("cannot push to a finished stream")
        # One emission call scores all M observations at once: a stack of
        # single timesteps is just an M-step sequence to the emission
        # family, and per-row scoring is identical to scoring one by one.
        stacked = np.stack([np.asarray(obs) for _, obs in items])
        log_rows = self._emissions.log_likelihoods(stacked)
        steps = self._session.step_many(log_rows, [s._slot for s, _ in items])
        for (stream, _), step in zip(items, steps):
            stream._state.record(step)
            stream._n_pushed += 1
        return steps

    def _finish_slot(self, slot: int) -> list[tuple[int, int]]:  # repro: confined[caller]
        return self._session.finish(slot)
