"""Multi-process serving: N fully isolated HTTP workers behind one port.

:class:`ClusterServer` forks ``n_workers`` OS processes (``spawn`` context,
so no inherited locks or event loops), each running a complete
:class:`~repro.serving.http.HTTPServingServer` — its own router, supervised
dispatcher, circuit breakers and drain logic.  Two ways to share the port:

``SO_REUSEPORT`` (default where the platform supports it)
    Every worker binds the *same* ``(host, port)`` with ``SO_REUSEPORT``
    and the kernel spreads incoming connections across the listening
    sockets.  Zero extra hops and no parent-side bottleneck.  Caveat: the
    kernel balances *connections*, not requests — a client that opens a
    stream must keep using the same connection (HTTP keep-alive) or its
    ``stream_id`` may land on a worker that never opened it.

Balancer fallback (``reuse_port=False`` or unsupported platform)
    Workers bind ephemeral loopback ports and the parent runs
    :class:`_Balancer`, a stdlib-asyncio HTTP-aware relay on the public
    port: round-robin over healthy backends, a ``/healthz`` probe loop
    that ejects (and re-admits) workers, per-request failover for
    idempotent work, and sticky routing for streams — ``POST /v1/streams``
    responses are inspected for their ``stream_id`` and subsequent
    ``push``/``finish`` calls pin to the worker that owns the session.

The parent supervises its children: a worker that dies unexpectedly is
respawned (up to ``max_restarts`` across the cluster's lifetime) and, in
balancer mode, its backend address is swapped in once the replacement
reports ready.  ``close()`` SIGTERMs every worker — each takes its own
graceful-drain path when ``ServingConfig.drain_timeout_s`` is set — then
joins and finally SIGKILLs stragglers.

Model memory: give the workers ``ServingConfig(mmap_artifacts=True)`` and
every process maps the same schema-v3 parameter arrays read-only, so the
big tables live once in the page cache instead of once per worker (see
:mod:`repro.serving.persistence`).
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import queue as queue_module
import socket
import threading
import time
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.lockorder import make_lock
from repro.core.config import ServingConfig
from repro.exceptions import ServingError, ValidationError
from repro.serving.http import _MAX_BODY_BYTES, _STATUS_PHRASES, HTTPServingServer
from repro.serving.observability import new_trace_id
from repro.serving.registry import ModelRegistry

__all__ = ["ClusterServer", "reuse_port_supported"]

#: worker start -> ready budget: registry scans + model warm-up included.
_STARTUP_TIMEOUT_S = 60.0


def reuse_port_supported() -> bool:
    """Whether this platform accepts ``SO_REUSEPORT`` on TCP sockets."""
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    try:
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        return True
    except OSError:
        return False


def _reserve_port(host: str) -> int:
    """Pick a free port that reuse-port workers will be able to share."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        probe.bind((host, 0))
        return probe.getsockname()[1]


def _worker_entry(
    registry_root: str,
    config: ServingConfig | None,
    host: str,
    port: int,
    reuse_port: bool,
    warm_up: Sequence[str],
    worker_index: int,
    ready_queue,
) -> None:
    """Child-process main: build, warm, announce, serve until SIGTERM."""
    server = HTTPServingServer(
        registry_root, config=config, host=host, port=port, reuse_port=reuse_port
    )
    try:
        server.start()
        if warm_up:
            server.router.warm_up(list(warm_up))
    except Exception as exc:
        ready_queue.put(("error", worker_index, f"{type(exc).__name__}: {exc}"))
        server.close()
        raise SystemExit(1) from exc
    ready_queue.put(("ready", worker_index, server.port))
    # serve_forever installs the SIGTERM handler; with drain_timeout_s
    # configured the parent's SIGTERM becomes a graceful drain.
    server.serve_forever()


class ClusterServer:
    """N worker processes serving one registry behind one port.

    Parameters
    ----------
    registry:
        Registry root path (or a :class:`ModelRegistry`; only its root is
        shipped to the workers).
    config:
        :class:`ServingConfig` applied in every worker.  Must be picklable
        (it is a plain dataclass).  ``mmap_artifacts=True`` makes the
        workers share model parameter pages.
    host, port:
        Public bind address.  ``port=0`` picks a free port (reserved by
        the parent in reuse-port mode so every worker binds the same one).
    n_workers:
        Number of worker processes.
    reuse_port:
        ``True`` = kernel-balanced ``SO_REUSEPORT`` workers, ``False`` =
        parent-side balancer; ``None`` (default) auto-detects.
    warm_up:
        Model names each worker preloads before reporting ready.
    max_restarts:
        Total respawn budget for unexpectedly dead workers.
    """

    def __init__(
        self,
        registry: ModelRegistry | str | Path,
        config: ServingConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 8765,
        n_workers: int = 2,
        reuse_port: bool | None = None,
        warm_up: Iterable[str] = (),
        max_restarts: int = 3,
    ) -> None:
        if n_workers < 1:
            raise ValidationError(f"n_workers must be at least 1, got {n_workers}")
        root = registry.root if isinstance(registry, ModelRegistry) else registry
        self.registry_root = str(root)
        self.config = config
        self.host = host
        self.port = port
        self.n_workers = int(n_workers)
        self.reuse_port = (
            reuse_port_supported() if reuse_port is None else bool(reuse_port)
        )
        self.warm_up = tuple(warm_up)
        self.max_restarts = int(max_restarts)
        # Workers are spawned, not forked: a fork would duplicate the
        # parent's threads/locks mid-flight (exactly what repro-lint's
        # lock discipline exists to prevent).
        self._ctx = multiprocessing.get_context("spawn")
        self._worker_host = self.host if self.reuse_port else "127.0.0.1"
        self._lock = make_lock("cluster.state")
        self._workers: list = []  # repro: guarded-by[_lock]
        self._worker_ports: list[int] = []  # repro: guarded-by[_lock]
        self._n_restarts = 0  # repro: guarded-by[_lock]
        self._started = False  # repro: guarded-by[_lock]
        self._closed = False  # repro: guarded-by[_lock]
        self._ready_queue: multiprocessing.queues.Queue | None = None
        self._balancer: _Balancer | None = None
        self._monitor: threading.Thread | None = None
        self._stop_monitor = threading.Event()

    # -------------------------------------------------------------- #
    # Lifecycle
    # -------------------------------------------------------------- #
    def start(self) -> "ClusterServer":
        """Spawn the workers, wait for readiness, expose the public port."""
        with self._lock:
            if self._started:
                raise ValidationError("cluster already started")
            self._started = True
        self._ready_queue = self._ctx.Queue()
        if self.reuse_port and self.port == 0:
            self.port = _reserve_port(self.host)
        workers = [self._spawn_worker(index) for index in range(self.n_workers)]
        with self._lock:
            self._workers = workers
            self._worker_ports = [0] * self.n_workers
        ports: dict[int, int] = {}
        try:
            for _ in range(self.n_workers):
                kind, index, value = self._next_ready()
                if kind != "ready":
                    raise ServingError(f"worker {index} failed to start: {value}")
                ports[index] = int(value)
        except ServingError:
            self.close()
            raise
        with self._lock:
            for index, worker_port in ports.items():
                self._worker_ports[index] = worker_port
        if not self.reuse_port:
            backends = [
                ("127.0.0.1", ports[index]) for index in range(self.n_workers)
            ]
            self._balancer = _Balancer(self.host, self.port, backends)
            self._balancer.start()
            self.port = self._balancer.port
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-cluster-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def _spawn_worker(self, index: int):
        target_port = self.port if self.reuse_port else 0
        process = self._ctx.Process(
            target=_worker_entry,
            args=(
                self.registry_root,
                self.config,
                self._worker_host,
                target_port,
                self.reuse_port,
                self.warm_up,
                index,
                self._ready_queue,
            ),
            name=f"repro-serve-worker-{index}",
            daemon=True,
        )
        process.start()
        return process

    def _next_ready(self) -> tuple:
        ready_queue = self._ready_queue
        if ready_queue is None:
            raise ServingError("cluster not started")
        try:
            return ready_queue.get(timeout=_STARTUP_TIMEOUT_S)
        except queue_module.Empty:
            raise ServingError(
                f"worker did not report ready within {_STARTUP_TIMEOUT_S}s"
            ) from None

    def _monitor_loop(self) -> None:
        """Respawn unexpectedly dead workers while the restart budget lasts."""
        while not self._stop_monitor.wait(0.2):
            with self._lock:
                if self._closed:
                    return
                snapshot = list(enumerate(self._workers))
            for index, process in snapshot:
                if process.is_alive():
                    continue
                with self._lock:
                    if self._closed:
                        return
                    if self._n_restarts >= self.max_restarts:
                        continue
                    self._n_restarts += 1
                replacement = self._spawn_worker(index)
                with self._lock:
                    self._workers[index] = replacement
                try:
                    kind, ready_index, value = self._next_ready()
                except ServingError:
                    continue  # budget already charged; next sweep retries
                if kind != "ready":
                    continue
                with self._lock:
                    self._worker_ports[ready_index] = int(value)
                if self._balancer is not None:
                    self._balancer.set_backend(ready_index, ("127.0.0.1", int(value)))

    # -------------------------------------------------------------- #
    @property
    def worker_pids(self) -> list[int]:
        """PIDs of the currently live worker processes."""
        with self._lock:
            return [
                process.pid
                for process in self._workers
                if process.pid is not None and process.is_alive()
            ]

    @property
    def n_restarts(self) -> int:
        """How many workers have been respawned so far."""
        with self._lock:
            return self._n_restarts

    def close(self, timeout: float = 15.0) -> None:
        """SIGTERM every worker, join, SIGKILL stragglers, stop the balancer."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers)
        self._stop_monitor.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
        if self._balancer is not None:
            self._balancer.close()
        for process in workers:
            if process.is_alive():
                process.terminate()  # SIGTERM: each worker drains + exits 0
        deadline = time.monotonic() + timeout
        for process in workers:
            process.join(timeout=max(0.1, deadline - time.monotonic()))
        for process in workers:
            if process.is_alive():
                process.kill()
                process.join(timeout=2.0)
        if self._ready_queue is not None:
            self._ready_queue.close()

    def serve_forever(self) -> None:
        """Block until SIGTERM/Ctrl-C, then shut the whole cluster down."""
        import signal as signal_module

        stop = threading.Event()
        previous = signal_module.signal(
            signal_module.SIGTERM, lambda _signum, _frame: stop.set()
        )
        try:
            stop.wait()
        except KeyboardInterrupt:
            pass
        finally:
            signal_module.signal(signal_module.SIGTERM, previous)
            self.close()

    def __enter__(self) -> "ClusterServer":
        with self._lock:
            started = self._started
        return self if started else self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


# ------------------------------------------------------------------ #
# Balancer fallback
# ------------------------------------------------------------------ #
class _Balancer:
    """HTTP-aware pass-through load balancer (stdlib asyncio, own thread).

    All routing state (``_backends``, ``_healthy``, ``_rr``, ``_sticky``)
    is confined to the balancer's event-loop thread; the only cross-thread
    entry points (:meth:`set_backend`, :meth:`close`) hop onto the loop
    with ``call_soon_threadsafe``.  No locks anywhere near the loop.
    """

    def __init__(
        self,
        host: str,
        port: int,
        backends: Sequence[tuple[str, int]],
        probe_interval_s: float = 0.25,
        relay_timeout_s: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self._backends: dict[int, tuple[str, int]] = dict(enumerate(backends))
        # Workers reported ready before the balancer starts, so begin with
        # everyone admitted; the probe loop takes over from there.
        self._healthy: set[int] = set(self._backends)
        self._rr = 0
        self._sticky: dict[str, int] = {}  # stream_id -> backend index
        self._probe_interval_s = probe_interval_s
        self._relay_timeout_s = relay_timeout_s
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.AbstractServer | None = None
        self._probe_task: asyncio.Task | None = None

    def start(self) -> "_Balancer":
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-cluster-balancer", daemon=True
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(self._bind(), self._loop)
        future.result(timeout=30)
        return self

    async def _bind(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._probe_task = asyncio.get_running_loop().create_task(self._probe_loop())

    def set_backend(self, index: int, address: tuple[str, int]) -> None:
        """Swap in a respawned worker's address (from the monitor thread)."""
        loop = self._loop
        if loop is None:
            return

        def _update() -> None:
            self._backends[index] = address
            # quarantined until the probe loop sees a 200 from it
            self._healthy.discard(index)

        loop.call_soon_threadsafe(_update)

    def close(self, timeout: float = 10.0) -> None:
        loop = self._loop
        if loop is None:
            return
        self._loop = None

        def _shutdown() -> None:
            if self._probe_task is not None:
                self._probe_task.cancel()
            if self._server is not None:
                self._server.close()
            # stop in a follow-up callback so the probe task gets one more
            # scheduling slot to observe its cancellation
            loop.call_soon(loop.stop)

        loop.call_soon_threadsafe(_shutdown)
        if self._thread is not None:
            self._thread.join(timeout=timeout)
        loop.close()

    # -------------------------------------------------------------- #
    async def _probe_loop(self) -> None:
        while True:
            for index, address in list(self._backends.items()):
                if await self._probe(address):
                    self._healthy.add(index)
                else:
                    self._healthy.discard(index)
            await asyncio.sleep(self._probe_interval_s)

    async def _probe(self, address: tuple[str, int]) -> bool:
        try:
            status, _headers, _body = await asyncio.wait_for(
                self._forward_once(address, "GET", "/healthz", {}, b""),
                timeout=2.0,
            )
        except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError, ValueError):
            return False
        # 503 means draining/failed: stop steering *new* work at it
        # (sticky streams still go direct so drains can complete them).
        return status == 200

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or request_line in (b"\r\n", b"\n"):
                    break
                try:
                    method, target, _version = (
                        request_line.decode("latin1").rstrip("\r\n").split(" ", 2)
                    )
                except ValueError:
                    status, head, body = _balancer_error(400, "malformed request line")
                    await self._send(writer, status, head, body, keep_alive=False)
                    break
                headers: dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", "0") or 0)
                except ValueError:
                    length = -1
                if length < 0 or length > _MAX_BODY_BYTES:
                    status, head, body = _balancer_error(
                        400, "malformed Content-Length header"
                    )
                    await self._send(writer, status, head, body, keep_alive=False)
                    break
                body = await reader.readexactly(length) if length else b""
                keep_alive = headers.get("connection", "").lower() != "close"
                status, head, payload = await self._relay(
                    method, target, headers, body
                )
                await self._send(writer, status, head, payload, keep_alive)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _relay(
        self, method: str, target: str, headers: dict[str, str], body: bytes
    ) -> tuple[int, list[tuple[str, str]], bytes]:
        path = target.partition("?")[0]
        parts = [part for part in path.split("/") if part]
        if len(parts) == 4 and parts[:2] == ["v1", "streams"]:
            return await self._relay_sticky(parts, method, target, headers, body)
        record_sticky = method == "POST" and parts == ["v1", "streams"]
        for index in self._pick_order():
            response = await self._forward(index, method, target, headers, body)
            if response is None:
                self._healthy.discard(index)
                continue
            status, head, payload = response
            if record_sticky and status == 200:
                stream_id = _extract_stream_id(payload)
                if stream_id is not None:
                    self._sticky[stream_id] = index
            return status, head, payload
        return _balancer_error(503, "no healthy backend", retry_after=True)

    async def _relay_sticky(
        self,
        parts: list[str],
        method: str,
        target: str,
        headers: dict[str, str],
        body: bytes,
    ) -> tuple[int, list[tuple[str, str]], bytes]:
        """Pin push/finish to the worker that owns the stream session."""
        stream_id = parts[2]
        index = self._sticky.get(stream_id)
        if index is None:
            return _balancer_error(404, f"no such stream: {stream_id}")
        response = await self._forward(index, method, target, headers, body)
        if response is None:
            # The owning worker is gone; its in-memory session went with it.
            self._sticky.pop(stream_id, None)
            return _balancer_error(503, "stream backend unavailable", retry_after=True)
        status, head, payload = response
        if parts[3] == "finish" and status == 200:
            self._sticky.pop(stream_id, None)
        return status, head, payload

    def _pick_order(self) -> list[int]:
        healthy = sorted(self._healthy)
        if not healthy:
            # every backend ejected: try them all rather than fail blind
            healthy = sorted(self._backends)
        if not healthy:
            return []
        self._rr += 1
        start = self._rr % len(healthy)
        return healthy[start:] + healthy[:start]

    async def _forward(
        self,
        index: int,
        method: str,
        target: str,
        headers: dict[str, str],
        body: bytes,
    ) -> tuple[int, list[tuple[str, str]], bytes] | None:
        address = self._backends.get(index)
        if address is None:
            return None
        try:
            return await asyncio.wait_for(
                self._forward_once(address, method, target, headers, body),
                timeout=self._relay_timeout_s,
            )
        except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError, ValueError):
            return None

    async def _forward_once(
        self,
        address: tuple[str, int],
        method: str,
        target: str,
        headers: dict[str, str],
        body: bytes,
    ) -> tuple[int, list[tuple[str, str]], bytes]:
        host, port = address
        reader, writer = await asyncio.open_connection(host, port)
        try:
            passed = "".join(
                f"{name}: {value}\r\n"
                for name, value in headers.items()
                if name not in ("connection", "content-length", "host")
            )
            head = (
                f"{method} {target} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n"
                f"{passed}\r\n"
            )
            writer.write(head.encode("latin1") + body)
            await writer.drain()
            status_line = await reader.readline()
            status = int(status_line.decode("latin1").split(" ", 2)[1])
            response_headers: list[tuple[str, str]] = []
            content_length = 0
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin1").partition(":")
                name, value = name.strip(), value.strip()
                lower = name.lower()
                if lower == "content-length":
                    content_length = int(value)
                elif lower != "connection":
                    response_headers.append((name, value))
            payload = (
                await reader.readexactly(content_length) if content_length else b""
            )
            return status, response_headers, payload
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _send(
        writer: asyncio.StreamWriter,
        status: int,
        headers: list[tuple[str, str]],
        body: bytes,
        keep_alive: bool,
    ) -> None:
        phrase = _STATUS_PHRASES.get(status, "Unknown")
        connection = "keep-alive" if keep_alive else "close"
        extra = "".join(f"{name}: {value}\r\n" for name, value in headers)
        head = (
            f"HTTP/1.1 {status} {phrase}\r\n"
            f"{extra}"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n\r\n"
        )
        writer.write(head.encode("latin1") + body)
        await writer.drain()


def _extract_stream_id(payload: bytes) -> str | None:
    try:
        parsed = json.loads(payload.decode())
    except (ValueError, UnicodeDecodeError):
        return None
    stream_id = parsed.get("stream_id") if isinstance(parsed, dict) else None
    return str(stream_id) if stream_id else None


def _balancer_error(
    status: int, message: str, retry_after: bool = False
) -> tuple[int, list[tuple[str, str]], bytes]:
    """A balancer-origin error response (trace ID minted here)."""
    headers = [
        ("Content-Type", "application/json"),
        ("X-Trace-Id", new_trace_id()),
    ]
    if retry_after:
        headers.append(("Retry-After", "1"))
    return status, headers, json.dumps({"error": message}).encode()
