"""Stdlib HTTP client for the serving server, with typed errors and retries.

:class:`ServingClient` is the client-side counterpart of
:class:`~repro.serving.http.HTTPServingServer`: a thin
:mod:`urllib.request` wrapper that maps the server's error contract back
onto the library's exception hierarchy —

=======  ==========================================================
status   raised as
=======  ==========================================================
400/404  :class:`~repro.exceptions.ValidationError`
429      :class:`~repro.exceptions.QueueFullError`
503      :class:`~repro.exceptions.ModelUnavailableError` (with
         ``retry_after_s`` parsed from the ``Retry-After`` header)
504      :class:`~repro.exceptions.DeadlineExceededError`
other    :class:`~repro.exceptions.ServingError`
=======  ==========================================================

— and, when constructed with a :class:`~repro.core.config.RetryPolicy`,
retries the transient ones (429 and 503) with exponential backoff,
honoring the server's ``Retry-After`` suggestion as the minimum wait.
Permanent failures (400/404/504) are never retried.

The client is deliberately stdlib-only and synchronous: it exists for the
CLI, tests and smoke checks, not as a high-throughput SDK.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Sequence

from repro.core.config import RetryPolicy
from repro.exceptions import (
    DeadlineExceededError,
    ModelUnavailableError,
    QueueFullError,
    ServingError,
    ValidationError,
)

__all__ = ["ServingClient"]


def _error_for(status: int, message: str, retry_after_s: float | None):
    if status in (400, 404):
        return ValidationError(message)
    if status == 429:
        return QueueFullError(message)
    if status == 503:
        return ModelUnavailableError(message, retry_after_s=retry_after_s)
    if status == 504:
        return DeadlineExceededError(message)
    return ServingError(f"HTTP {status}: {message}")


class ServingClient:
    """Synchronous JSON client for one serving server.

    Parameters
    ----------
    base_url:
        ``http://host:port`` of the server (trailing slash tolerated).
    retry_policy:
        A :class:`~repro.core.config.RetryPolicy` applied to transient
        failures (queue-full 429, breaker/drain/timeout 503); ``None``
        disables retries entirely.
    timeout_s:
        Socket timeout of each individual HTTP attempt.
    rng:
        Optional seeded :class:`random.Random` for backoff jitter.
    """

    def __init__(
        self,
        base_url: str,
        retry_policy: RetryPolicy | None = None,
        timeout_s: float = 30.0,
        rng=None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.retry_policy = retry_policy
        self.timeout_s = timeout_s
        self._rng = rng

    # -------------------------------------------------------------- #
    # Transport
    # -------------------------------------------------------------- #
    def _attempt(self, method: str, path: str, payload: dict | None) -> dict:
        """One HTTP round trip; raises the mapped typed error on >= 400."""
        body = None if payload is None else json.dumps(payload).encode()
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers={"Content-Type": "application/json"} if body else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                return json.loads(response.read() or b"{}")
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read() or b"{}").get("error", str(exc))
            except (json.JSONDecodeError, OSError):
                message = str(exc)
            retry_after = exc.headers.get("Retry-After") if exc.headers else None
            raise _error_for(
                exc.code,
                message,
                float(retry_after) if retry_after is not None else None,
            ) from None
        except urllib.error.URLError as exc:
            raise ServingError(f"cannot reach {self.base_url}: {exc.reason}") from None

    def _call(self, method: str, path: str, payload: dict | None = None) -> dict:
        if self.retry_policy is None:
            return self._attempt(method, path, payload)
        return self.retry_policy.call(
            lambda: self._attempt(method, path, payload),
            rng=self._rng,
            min_backoff_s=lambda exc: getattr(exc, "retry_after_s", None),
        )

    # -------------------------------------------------------------- #
    # Endpoints
    # -------------------------------------------------------------- #
    def healthz(self) -> dict:
        """The health payload, whatever the status code (no retries).

        A failed or draining server answers 503 with a regular health
        body; this returns that body instead of raising, so callers can
        inspect ``status`` / ``health`` directly.
        """
        try:
            return self._attempt("GET", "/healthz", None)
        except ModelUnavailableError as exc:
            return {"status": "unavailable", "error": str(exc)}

    def stats(self) -> dict:
        return self._call("GET", "/stats")

    def models(self) -> dict:
        return self._call("GET", "/v1/models")

    def tag(
        self,
        name: str,
        sequence: Sequence[int] | Any,
        version: int | None = None,
        deadline_ms: float | None = None,
    ) -> list[int]:
        payload: dict = {"sequence": [int(s) for s in sequence]}
        if version is not None:
            payload["version"] = version
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return self._call("POST", f"/v1/models/{name}/tag", payload)["tags"]

    def score(
        self,
        name: str,
        sequence: Sequence[int] | Any,
        version: int | None = None,
        deadline_ms: float | None = None,
    ) -> float:
        payload: dict = {"sequence": [int(s) for s in sequence]}
        if version is not None:
            payload["version"] = version
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return float(self._call("POST", f"/v1/models/{name}/score", payload)["score"])

    def open_stream(
        self, model: str, version: int | None = None, lag: int | None = None
    ) -> str:
        payload: dict = {"model": model}
        if version is not None:
            payload["version"] = version
        if lag is not None:
            payload["lag"] = lag
        return self._call("POST", "/v1/streams", payload)["stream_id"]

    def push(self, stream_id: str, observation: Any) -> dict:
        return self._call(
            "POST", f"/v1/streams/{stream_id}/push", {"observation": observation}
        )

    def finish(self, stream_id: str) -> dict:
        return self._call("POST", f"/v1/streams/{stream_id}/finish", {})
