"""Versioned model persistence: numpy array payloads plus a JSON manifest.

An *artifact* is a directory holding a ``manifest.json`` — the schema
version, the model type, user metadata and the (nested) state-dict
structure with every numpy array replaced by a ``{"__ndarray__": <key>}``
placeholder — plus the array payload files the manifest references.

Splitting structure from payload keeps the manifest human-readable (and
diff-able in a registry) while the parameters stay in numpy's native
binary format.  The schema is versioned so future layout changes can keep
loading old artifacts — :func:`load_artifact` refuses schema versions newer
than it understands instead of misreading them.

Schema history
--------------
* **v1** — uncompressed ``np.savez`` payload (``arrays.npz``), no
  integrity information.
* **v2** — the ``arrays.npz`` payload is written with
  ``np.savez_compressed`` and the manifest records a SHA-256 checksum of
  the payload file, verified on every load: silent on-disk corruption (a
  torn copy, bit rot, a truncated download) fails loudly as
  :class:`~repro.exceptions.ArtifactCorruptError` (carrying the payload
  path and both digests) instead of decoding garbage parameters.  v1
  artifacts (no ``checksums`` entry) still load unchanged.
* **v3** (current) — every array is its own **raw little-endian ``.npy``
  file** next to the manifest (``arrays-0000.npy``, ...), mapped from the
  state-dict key by the manifest's ``"arrays"`` table, with a SHA-256
  checksum per file.  Raw ``.npy`` payloads are memory-mappable:
  ``load_artifact(..., mmap=True)`` opens each array with
  ``np.load(mmap_mode="r")``, so N serving worker processes loading the
  same artifact share one set of read-only page-cache pages instead of
  holding N private heap copies.  v1/v2 artifacts still load (a ``mmap``
  request on a compressed ``.npz`` silently falls back to a private copy),
  and ``save_artifact(..., schema_version=2)`` keeps writing the old
  layout for mixed-version stores.

All payload and manifest files are written **atomically** — to a temporary
file in the target directory, flushed, then ``os.replace``-d into place —
so a crash mid-save can never leave a half-written file under the final
name.  The manifest is written last: an artifact directory is complete
exactly when its manifest exists.

Every model class that participates implements ``to_state_dict`` /
``from_state_dict``; the mapping between class and the ``model_type``
string recorded in the manifest lives here, in :data:`MODEL_TYPES`, so the
model layers stay unaware of the serving subsystem.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.baselines.hmm_classifier import SupervisedHMMClassifier
from repro.baselines.naive_bayes import BernoulliNaiveBayes
from repro.baselines.optimized_hmm import OptimizedHMMClassifier
from repro.core.diversified_hmm import DiversifiedHMM
from repro.core.supervised import SupervisedDiversifiedHMM
from repro.exceptions import ArtifactCorruptError, ValidationError
from repro.hmm.model import HMM

#: Current artifact layout version.  Bump on breaking layout changes and
#: keep a loader branch for every older version still supported.
SCHEMA_VERSION = 3

MANIFEST_NAME = "manifest.json"
#: v1/v2 bundled payload file (still read; written by schema_version=2 saves).
ARRAYS_NAME = "arrays.npz"

#: schema versions :func:`save_artifact` can still write.
_WRITABLE_SCHEMAS = (2, 3)


def _npy_name(index: int) -> str:
    """Payload filename of the ``index``-th array of a v3 artifact."""
    return f"arrays-{index:04d}.npy"

#: ``model_type`` manifest string <-> persistable class.  Exact types only:
#: ``OptimizedHMMClassifier`` subclasses ``SupervisedHMMClassifier`` but has
#: its own entry (and extra state).
MODEL_TYPES: dict[str, type] = {
    "hmm": HMM,
    "diversified_hmm": DiversifiedHMM,
    "supervised_diversified_hmm": SupervisedDiversifiedHMM,
    "supervised_hmm_classifier": SupervisedHMMClassifier,
    "optimized_hmm_classifier": OptimizedHMMClassifier,
    "bernoulli_naive_bayes": BernoulliNaiveBayes,
}

_TYPE_NAMES = {cls: name for name, cls in MODEL_TYPES.items()}


def model_type_name(model: Any) -> str:
    """The manifest ``model_type`` string for a persistable model instance."""
    try:
        return _TYPE_NAMES[type(model)]
    except KeyError:
        raise ValidationError(
            f"{type(model).__name__} is not a persistable model type; "
            f"supported: {sorted(MODEL_TYPES)}"
        ) from None


def resolve_hmm(model: Any) -> HMM:
    """The underlying :class:`HMM` of a model or fitted estimator wrapper.

    Accepts a plain :class:`HMM` or any estimator exposing a fitted
    ``model_`` attribute (``DiversifiedHMM``, the supervised classifiers).
    """
    if isinstance(model, HMM):
        return model
    inner = getattr(model, "model_", None)
    if isinstance(inner, HMM):
        return inner
    raise ValidationError(
        f"cannot resolve an HMM from {type(model).__name__}: "
        "pass an HMM or a *fitted* estimator wrapper"
    )


# ------------------------------------------------------------------ #
# State-dict <-> manifest conversion
# ------------------------------------------------------------------ #
def _flatten(node: Any, prefix: str, arrays: dict[str, np.ndarray]) -> Any:
    """Replace numpy arrays in a nested state dict by npz-key placeholders."""
    if isinstance(node, np.ndarray):
        arrays[prefix] = node
        return {"__ndarray__": prefix}
    if isinstance(node, dict):
        return {
            str(key): _flatten(value, f"{prefix}.{key}" if prefix else str(key), arrays)
            for key, value in node.items()
        }
    if isinstance(node, (list, tuple)):
        return [
            _flatten(value, f"{prefix}.{i}", arrays) for i, value in enumerate(node)
        ]
    if isinstance(node, (np.integer,)):
        return int(node)
    if isinstance(node, (np.floating,)):
        return float(node)
    if node is None or isinstance(node, (bool, int, float, str)):
        return node
    raise ValidationError(
        f"state dict value at {prefix!r} is not serializable: {type(node).__name__}"
    )


def _unflatten(node: Any, arrays: dict[str, np.ndarray]) -> Any:
    """Inverse of :func:`_flatten`: resolve placeholders back to arrays."""
    if isinstance(node, dict):
        if set(node.keys()) == {"__ndarray__"}:
            return arrays[node["__ndarray__"]]
        return {key: _unflatten(value, arrays) for key, value in node.items()}
    if isinstance(node, list):
        return [_unflatten(value, arrays) for value in node]
    return node


# ------------------------------------------------------------------ #
# Artifact I/O
# ------------------------------------------------------------------ #
def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _write_atomic(path: Path, writer: Callable[[Any], None], mode: str) -> None:
    """Write a file via a same-directory temp file plus ``os.replace``.

    A crash mid-``writer`` leaves only a stray ``.tmp-*`` file behind; the
    destination either keeps its previous content or receives the complete
    new one — readers can never observe a torn file under the final name.
    """
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.tmp-", dir=path.parent
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, mode) as fh:
            writer(fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def _as_little_endian(array: np.ndarray) -> np.ndarray:
    """A contiguous little-endian view/copy of ``array`` (v3 payload format).

    On little-endian hosts (every supported platform today) native float64
    arrays pass through untouched; the explicit byte order is recorded in
    the ``.npy`` header either way, so a big-endian writer still produces
    artifacts every reader maps identically.
    """
    dtype = array.dtype
    if dtype.byteorder == ">" or (dtype.byteorder == "=" and sys.byteorder == "big"):
        array = array.astype(dtype.newbyteorder("<"))
    return np.ascontiguousarray(array)


def save_artifact(
    model: Any,
    path: str | Path,
    metadata: dict | None = None,
    schema_version: int | None = None,
) -> Path:
    """Persist a model (or fitted estimator) as an artifact directory.

    By default this writes the current schema (v3): one raw little-endian
    ``.npy`` file per parameter array, each with a SHA-256 checksum in the
    manifest, so the artifact can later be loaded with ``mmap=True`` and
    shared read-only across worker processes.  ``schema_version=2`` keeps
    writing the compressed single-``.npz`` layout for stores that must stay
    readable by pre-v3 tooling.

    Every file is written atomically (temp file + ``os.replace``), the
    manifest last, so a crash mid-save never leaves a torn artifact that
    looks complete.

    Parameters
    ----------
    model:
        Any instance of a class in :data:`MODEL_TYPES`.
    path:
        Target directory; created (parents included) if missing.
    metadata:
        Optional JSON-serializable user metadata stored verbatim in the
        manifest (dataset name, training notes, metrics, ...).
    schema_version:
        Artifact layout to write: ``3`` (the default) or ``2``.

    Returns the artifact directory path.
    """
    if schema_version is None:
        schema_version = SCHEMA_VERSION
    if schema_version not in _WRITABLE_SCHEMAS:
        raise ValidationError(
            f"cannot write artifact schema version {schema_version!r}; "
            f"writable versions: {_WRITABLE_SCHEMAS}"
        )
    type_name = model_type_name(model)
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {}
    state = _flatten(model.to_state_dict(), "", arrays)
    manifest: dict[str, Any] = {
        "schema_version": schema_version,
        "model_type": type_name,
        "metadata": metadata or {},
        "state": state,
    }
    if schema_version == 2:
        _write_atomic(
            path / ARRAYS_NAME, lambda fh: np.savez_compressed(fh, **arrays), "wb"
        )
        manifest["checksums"] = {ARRAYS_NAME: _sha256_file(path / ARRAYS_NAME)}
    else:
        array_files: dict[str, str] = {}
        checksums: dict[str, str] = {}
        for index, key in enumerate(sorted(arrays)):
            filename = _npy_name(index)
            payload = _as_little_endian(arrays[key])
            _write_atomic(
                path / filename,
                lambda fh, data=payload: np.save(fh, data, allow_pickle=False),
                "wb",
            )
            array_files[key] = filename
            checksums[filename] = _sha256_file(path / filename)
        manifest["arrays"] = array_files
        manifest["checksums"] = checksums
    text = json.dumps(manifest, indent=2) + "\n"
    _write_atomic(path / MANIFEST_NAME, lambda fh: fh.write(text), "w")
    return path


def read_manifest(path: str | Path) -> dict:
    """Load and schema-check an artifact's manifest (no array I/O)."""
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise ValidationError(f"no artifact manifest at {manifest_path}")
    manifest = json.loads(manifest_path.read_text())
    version = manifest.get("schema_version")
    if not isinstance(version, int) or version < 1:
        raise ValidationError(f"artifact at {path} has invalid schema_version {version!r}")
    if version > SCHEMA_VERSION:
        raise ValidationError(
            f"artifact at {path} uses schema version {version}, newer than the "
            f"supported {SCHEMA_VERSION}; upgrade the library to load it"
        )
    if manifest.get("model_type") not in MODEL_TYPES:
        raise ValidationError(
            f"artifact at {path} has unknown model_type "
            f"{manifest.get('model_type')!r}; supported: {sorted(MODEL_TYPES)}"
        )
    return manifest


def verify_checksums(path: str | Path, manifest: dict | None = None) -> bool:
    """Verify an artifact's recorded payload checksums.

    Returns True when every recorded checksum matches, False for a v1
    artifact that records none; raises
    :class:`~repro.exceptions.ArtifactCorruptError` — carrying the payload
    path and the expected/actual digests — on any mismatch or missing
    payload file.
    """
    path = Path(path)
    if manifest is None:
        manifest = read_manifest(path)
    checksums = manifest.get("checksums")
    if not checksums:
        return False  # schema v1: nothing recorded, nothing to verify
    for filename, expected in checksums.items():
        payload = path / filename
        if not payload.is_file():
            raise ArtifactCorruptError(
                f"artifact at {path} is missing payload {filename}",
                path=payload,
                expected=expected,
                actual=None,
            )
        actual = _sha256_file(payload)
        if actual != expected:
            raise ArtifactCorruptError(
                f"artifact checksum mismatch for {payload}: the manifest "
                f"records sha256 {expected} but the file hashes to {actual} "
                "— the artifact is corrupt (torn copy, bit rot, or a "
                "partial write); re-save or restore it",
                path=payload,
                expected=expected,
                actual=actual,
            )
    return True


def load_artifact(path: str | Path, mmap: bool = False) -> Any:
    """Load an artifact directory back into a model instance.

    Checksum-carrying artifacts (v2/v3) are verified before any array is
    decoded; v1 artifacts (which recorded no checksums) load as before.

    ``mmap=True`` maps each schema-v3 array file read-only
    (``np.load(mmap_mode="r")``) instead of reading it onto the heap: the
    returned model's parameter arrays are backed by the page cache, shared
    between every process that maps the same artifact, and writes to them
    raise.  v1/v2 artifacts cannot be mapped (their ``.npz`` payload is
    compressed) and silently fall back to a regular private-copy load.
    """
    path = Path(path)
    manifest = read_manifest(path)
    verify_checksums(path, manifest)
    if manifest["schema_version"] >= 3:
        array_files = manifest.get("arrays")
        if not isinstance(array_files, dict):
            raise ValidationError(
                f"schema-v3 artifact at {path} has no 'arrays' table in its "
                "manifest"
            )
        mmap_mode = "r" if mmap else None
        arrays = {
            key: np.load(path / filename, mmap_mode=mmap_mode, allow_pickle=False)
            for key, filename in array_files.items()
        }
    else:
        with np.load(path / ARRAYS_NAME) as npz:
            arrays = {key: npz[key] for key in npz.files}
    state = _unflatten(manifest["state"], arrays)
    cls = MODEL_TYPES[manifest["model_type"]]
    return cls.from_state_dict(state)


def save_model(
    model: Any,
    path: str | Path,
    metadata: dict | None = None,
    schema_version: int | None = None,
) -> Path:
    """Alias of :func:`save_artifact` (symmetric with :func:`load_model`)."""
    return save_artifact(model, path, metadata=metadata, schema_version=schema_version)


def load_model(path: str | Path, mmap: bool = False) -> Any:
    """Alias of :func:`load_artifact`."""
    return load_artifact(path, mmap=mmap)
