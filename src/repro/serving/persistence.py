"""Versioned model persistence: ``.npz`` arrays plus a JSON manifest.

An *artifact* is a directory holding two files:

* ``manifest.json`` — the schema version, the model type, user metadata and
  the (nested) state-dict structure with every numpy array replaced by a
  ``{"__ndarray__": <key>}`` placeholder;
* ``arrays.npz`` — the arrays themselves, keyed by the dotted path of the
  placeholder that references them.

Splitting structure from payload keeps the manifest human-readable (and
diff-able in a registry) while the parameters stay in numpy's native
binary format.  The schema is versioned so future layout changes can keep
loading old artifacts — :func:`load_artifact` refuses schema versions newer
than it understands instead of misreading them.

Every model class that participates implements ``to_state_dict`` /
``from_state_dict``; the mapping between class and the ``model_type``
string recorded in the manifest lives here, in :data:`MODEL_TYPES`, so the
model layers stay unaware of the serving subsystem.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.baselines.hmm_classifier import SupervisedHMMClassifier
from repro.baselines.naive_bayes import BernoulliNaiveBayes
from repro.baselines.optimized_hmm import OptimizedHMMClassifier
from repro.core.diversified_hmm import DiversifiedHMM
from repro.core.supervised import SupervisedDiversifiedHMM
from repro.exceptions import ValidationError
from repro.hmm.model import HMM

#: Current artifact layout version.  Bump on breaking layout changes and
#: keep a loader branch for every older version still supported.
SCHEMA_VERSION = 1

MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"

#: ``model_type`` manifest string <-> persistable class.  Exact types only:
#: ``OptimizedHMMClassifier`` subclasses ``SupervisedHMMClassifier`` but has
#: its own entry (and extra state).
MODEL_TYPES: dict[str, type] = {
    "hmm": HMM,
    "diversified_hmm": DiversifiedHMM,
    "supervised_diversified_hmm": SupervisedDiversifiedHMM,
    "supervised_hmm_classifier": SupervisedHMMClassifier,
    "optimized_hmm_classifier": OptimizedHMMClassifier,
    "bernoulli_naive_bayes": BernoulliNaiveBayes,
}

_TYPE_NAMES = {cls: name for name, cls in MODEL_TYPES.items()}


def model_type_name(model: Any) -> str:
    """The manifest ``model_type`` string for a persistable model instance."""
    try:
        return _TYPE_NAMES[type(model)]
    except KeyError:
        raise ValidationError(
            f"{type(model).__name__} is not a persistable model type; "
            f"supported: {sorted(MODEL_TYPES)}"
        ) from None


def resolve_hmm(model: Any) -> HMM:
    """The underlying :class:`HMM` of a model or fitted estimator wrapper.

    Accepts a plain :class:`HMM` or any estimator exposing a fitted
    ``model_`` attribute (``DiversifiedHMM``, the supervised classifiers).
    """
    if isinstance(model, HMM):
        return model
    inner = getattr(model, "model_", None)
    if isinstance(inner, HMM):
        return inner
    raise ValidationError(
        f"cannot resolve an HMM from {type(model).__name__}: "
        "pass an HMM or a *fitted* estimator wrapper"
    )


# ------------------------------------------------------------------ #
# State-dict <-> manifest conversion
# ------------------------------------------------------------------ #
def _flatten(node: Any, prefix: str, arrays: dict[str, np.ndarray]) -> Any:
    """Replace numpy arrays in a nested state dict by npz-key placeholders."""
    if isinstance(node, np.ndarray):
        arrays[prefix] = node
        return {"__ndarray__": prefix}
    if isinstance(node, dict):
        return {
            str(key): _flatten(value, f"{prefix}.{key}" if prefix else str(key), arrays)
            for key, value in node.items()
        }
    if isinstance(node, (list, tuple)):
        return [
            _flatten(value, f"{prefix}.{i}", arrays) for i, value in enumerate(node)
        ]
    if isinstance(node, (np.integer,)):
        return int(node)
    if isinstance(node, (np.floating,)):
        return float(node)
    if node is None or isinstance(node, (bool, int, float, str)):
        return node
    raise ValidationError(
        f"state dict value at {prefix!r} is not serializable: {type(node).__name__}"
    )


def _unflatten(node: Any, arrays: dict[str, np.ndarray]) -> Any:
    """Inverse of :func:`_flatten`: resolve placeholders back to arrays."""
    if isinstance(node, dict):
        if set(node.keys()) == {"__ndarray__"}:
            return arrays[node["__ndarray__"]]
        return {key: _unflatten(value, arrays) for key, value in node.items()}
    if isinstance(node, list):
        return [_unflatten(value, arrays) for value in node]
    return node


# ------------------------------------------------------------------ #
# Artifact I/O
# ------------------------------------------------------------------ #
def save_artifact(model: Any, path: str | Path, metadata: dict | None = None) -> Path:
    """Persist a model (or fitted estimator) as an artifact directory.

    Parameters
    ----------
    model:
        Any instance of a class in :data:`MODEL_TYPES`.
    path:
        Target directory; created (parents included) if missing.
    metadata:
        Optional JSON-serializable user metadata stored verbatim in the
        manifest (dataset name, training notes, metrics, ...).

    Returns the artifact directory path.
    """
    type_name = model_type_name(model)
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {}
    state = _flatten(model.to_state_dict(), "", arrays)
    manifest = {
        "schema_version": SCHEMA_VERSION,
        "model_type": type_name,
        "metadata": metadata or {},
        "state": state,
    }
    with (path / ARRAYS_NAME).open("wb") as fh:
        np.savez(fh, **arrays)
    (path / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2) + "\n")
    return path


def read_manifest(path: str | Path) -> dict:
    """Load and schema-check an artifact's manifest (no array I/O)."""
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise ValidationError(f"no artifact manifest at {manifest_path}")
    manifest = json.loads(manifest_path.read_text())
    version = manifest.get("schema_version")
    if not isinstance(version, int) or version < 1:
        raise ValidationError(f"artifact at {path} has invalid schema_version {version!r}")
    if version > SCHEMA_VERSION:
        raise ValidationError(
            f"artifact at {path} uses schema version {version}, newer than the "
            f"supported {SCHEMA_VERSION}; upgrade the library to load it"
        )
    if manifest.get("model_type") not in MODEL_TYPES:
        raise ValidationError(
            f"artifact at {path} has unknown model_type "
            f"{manifest.get('model_type')!r}; supported: {sorted(MODEL_TYPES)}"
        )
    return manifest


def load_artifact(path: str | Path) -> Any:
    """Load an artifact directory back into a model instance."""
    path = Path(path)
    manifest = read_manifest(path)
    with np.load(path / ARRAYS_NAME) as npz:
        arrays = {key: npz[key] for key in npz.files}
    state = _unflatten(manifest["state"], arrays)
    cls = MODEL_TYPES[manifest["model_type"]]
    return cls.from_state_dict(state)


def save_model(model: Any, path: str | Path, metadata: dict | None = None) -> Path:
    """Alias of :func:`save_artifact` (symmetric with :func:`load_model`)."""
    return save_artifact(model, path, metadata=metadata)


def load_model(path: str | Path) -> Any:
    """Alias of :func:`load_artifact`."""
    return load_artifact(path)
