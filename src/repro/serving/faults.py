"""Deterministic fault injection for the serving stack.

Production code in the serving subsystem calls :func:`fire` at a handful of
**named injection points**; tests arm a point with :func:`inject` (a context
manager) to *raise*, *delay* or *corrupt* on a chosen hit, and read back
exact hit counts afterwards.  This is what makes the failure drills in
``tests/test_serving_chaos.py`` deterministic: a "dispatcher crash on the
third batch" or a "model whose artifact load always fails" is expressed as
data, not as monkey-patching internals.

Design constraints (all load-bearing):

* **Zero overhead disarmed.**  :func:`fire` first checks a module-level
  boolean; with no fault armed anywhere in the process, an injection point
  costs one attribute load and one branch — nothing measurable next to an
  engine call (the serving benchmark gates enforce this).
* **Thread-safe.**  Points are hit from dispatcher threads, client threads
  and the asyncio loop concurrently; arming, firing and hit counting are
  guarded by one lock.  Sleeps (``delay_s``) happen outside the lock.
* **Deterministic.**  Triggering is hit-count based (``first_hit`` /
  ``n_failures``); the optional ``probability`` mode draws from a
  *seeded* per-fault RNG so even randomized chaos replays identically.

Injection points
----------------
=====================  ====================================================
:data:`ARTIFACT_LOAD`  ``ModelRegistry.load`` — an artifact read
:data:`EXECUTOR_RUN`   ``_ModelExecutor.run`` — one coalesced engine call
:data:`DISPATCHER_LOOP`  one scheduler dispatch iteration (batch in flight)
:data:`REGISTRY_WRITE` ``ModelRegistry.save`` — an artifact write
:data:`STREAM_TICK`    ``StreamingService`` — one batched streaming tick
=====================  ====================================================

Example
-------
>>> from repro.serving import faults
>>> with faults.inject(faults.ARTIFACT_LOAD, error=OSError("disk gone"),
...                    n_failures=2) as fault:
...     pass  # the first two loads raise; later ones succeed
>>> fault.hits, fault.n_triggered
(0, 0)
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable

from repro.analysis.lockorder import make_lock
from repro.exceptions import ValidationError

#: ``ModelRegistry.load`` — every artifact read (cold model loads).
ARTIFACT_LOAD = "artifact.load"
#: ``_ModelExecutor.run`` — every coalesced engine call of a batch service.
EXECUTOR_RUN = "executor.run"
#: One scheduler dispatch iteration, fired with the batch already in flight.
DISPATCHER_LOOP = "dispatcher.loop"
#: ``ModelRegistry.save`` — every artifact write.
REGISTRY_WRITE = "registry.write"
#: One batched streaming tick (the shared scoring + propagation call).
STREAM_TICK = "stream.tick"

#: Every point the serving stack fires; :func:`inject` validates against
#: this so a typo in a test fails loudly instead of silently never firing.
KNOWN_POINTS = frozenset(
    {ARTIFACT_LOAD, EXECUTOR_RUN, DISPATCHER_LOOP, REGISTRY_WRITE, STREAM_TICK}
)

_lock = make_lock("faults")
_faults: dict[str, "Fault"] = {}
#: Fast-path flag consulted by :func:`fire` before anything else; True only
#: while at least one fault is armed.  Plain bool read — no lock on the
#: disarmed path.
_active = False


class Fault:
    """One armed fault: trigger schedule, action, and hit accounting.

    Returned by :func:`inject`; tests read :attr:`hits` (times the point
    was reached while armed — also counts non-triggering passes, which is
    how "the breaker fast-fails without an artifact load" is asserted) and
    :attr:`n_triggered` (times the action actually fired).
    """

    def __init__(
        self,
        point: str,
        *,
        error: BaseException | type[BaseException] | Callable[[], BaseException] | None,
        delay_s: float,
        corrupt: Callable[[Any], Any] | None,
        first_hit: int,
        n_failures: int | None,
        probability: float | None,
        seed: int,
    ) -> None:
        self.point = point
        self._error = error
        self._delay_s = delay_s
        self._corrupt = corrupt
        self._first_hit = first_hit
        self._n_failures = n_failures
        self._probability = probability
        self._rng = random.Random(seed)
        self.hits = 0
        self.n_triggered = 0

    def _should_trigger(self) -> bool:
        """Decide (under the module lock) whether this hit fires the action."""
        if self.hits < self._first_hit:
            return False
        if self._n_failures is not None and self.n_triggered >= self._n_failures:
            return False
        if self._probability is not None and self._rng.random() >= self._probability:
            return False
        return True

    def _make_error(self) -> BaseException:
        error = self._error
        if isinstance(error, BaseException):
            return error
        return error()  # a class or zero-arg factory


def inject(
    point: str,
    *,
    error: BaseException | type[BaseException] | Callable[[], BaseException] | None = None,
    delay_s: float = 0.0,
    corrupt: Callable[[Any], Any] | None = None,
    first_hit: int = 1,
    n_failures: int | None = None,
    probability: float | None = None,
    seed: int = 0,
):
    """Arm one fault at a named injection point (context manager).

    Parameters
    ----------
    point:
        One of :data:`KNOWN_POINTS`.
    error:
        Exception instance, class or zero-arg factory raised on trigger.
        ``None`` with no ``delay_s``/``corrupt`` arms a pure *probe*: the
        point only counts hits (useful for "this path was never taken"
        assertions).
    delay_s:
        Sleep this long on trigger (before raising, if ``error`` is set) —
        models slow disks and stalled loads.
    corrupt:
        Transform the payload flowing through the point on trigger.
    first_hit:
        1-based hit number the fault starts triggering at (``3`` = the
        first two passes succeed untouched).
    n_failures:
        Trigger at most this many times; ``None`` = keep triggering.
    probability:
        Trigger each eligible hit with this probability, drawn from a RNG
        seeded with ``seed`` — randomized but replayable chaos.
    """
    if point not in KNOWN_POINTS:
        raise ValidationError(
            f"unknown fault injection point {point!r}; known: {sorted(KNOWN_POINTS)}"
        )
    if first_hit < 1:
        raise ValidationError(f"first_hit must be >= 1, got {first_hit}")
    if n_failures is not None and n_failures < 1:
        raise ValidationError(f"n_failures must be >= 1 or None, got {n_failures}")
    if delay_s < 0:
        raise ValidationError(f"delay_s must be non-negative, got {delay_s}")
    if probability is not None and not 0.0 <= probability <= 1.0:
        raise ValidationError(f"probability must lie in [0, 1], got {probability}")
    fault = Fault(
        point,
        error=error,
        delay_s=delay_s,
        corrupt=corrupt,
        first_hit=first_hit,
        n_failures=n_failures,
        probability=probability,
        seed=seed,
    )
    return _Armed(fault)


class _Armed:
    """Arms a fault on ``__enter__``, guarantees disarming on ``__exit__``."""

    def __init__(self, fault: Fault) -> None:
        self._fault = fault

    def __enter__(self) -> Fault:
        global _active
        with _lock:
            if self._fault.point in _faults:
                raise ValidationError(
                    f"a fault is already armed at {self._fault.point!r}"
                )
            _faults[self._fault.point] = self._fault
            _active = True
        return self._fault

    def __exit__(self, *exc_info) -> None:
        global _active
        with _lock:
            _faults.pop(self._fault.point, None)
            if not _faults:
                _active = False


def reset() -> None:
    """Disarm everything (test-teardown safety net)."""
    global _active
    with _lock:
        _faults.clear()
        _active = False


def fire(point: str, payload: Any = None) -> Any:
    """Injection hook called by production code; returns the payload.

    Disarmed (the normal case) this is one boolean check.  Armed, it counts
    the hit and applies the fault's action: sleep ``delay_s``, transform the
    payload via ``corrupt``, raise ``error`` — in that order.
    """
    if not _active:
        return payload
    with _lock:
        fault = _faults.get(point)
        if fault is None:
            return payload
        fault.hits += 1
        triggered = fault._should_trigger()
        if triggered:
            fault.n_triggered += 1
        delay = fault._delay_s if triggered else 0.0
    if not triggered:
        return payload
    if delay > 0.0:
        time.sleep(delay)
    if fault._corrupt is not None:
        payload = fault._corrupt(payload)
    if fault._error is not None:
        raise fault._make_error()
    return payload
