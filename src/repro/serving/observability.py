"""Request-level observability primitives: trace IDs and latency histograms.

Two building blocks used across the serving tier:

``new_trace_id`` / ``clean_trace_id``
    Opaque per-request identifiers.  The HTTP front end mints one per
    request (or adopts a well-formed inbound ``X-Trace-Id`` header), the
    scheduler carries it on the :class:`~repro.serving.scheduler.Request`,
    and the executor records it in :class:`ServiceStats` — so a response
    header can be matched to the batch that served it.

``LatencyHistogram``
    A fixed-bucket (log-spaced) histogram over seconds.  Recording is
    O(log n_buckets) and allocation-free, so it is safe on the dispatcher
    hot path.  Percentiles (p50/p95/p99) are estimated by linear
    interpolation inside the matching bucket — the standard Prometheus
    ``histogram_quantile`` estimate, computed server-side.

The histogram itself is deliberately *not* thread-safe: every instance is
owned by exactly one lock domain (``ServiceStats._lock``) or one thread
(the CLI), mirroring how counters are handled elsewhere in the stack.
"""

from __future__ import annotations

import bisect
import re
import uuid
from typing import Iterable, Mapping, Sequence

from repro.exceptions import ValidationError

__all__ = [
    "DEFAULT_BUCKET_BOUNDS",
    "LatencyHistogram",
    "clean_trace_id",
    "new_trace_id",
    "render_prometheus",
]

_TRACE_ID_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")


def new_trace_id() -> str:
    """Mint an opaque 32-hex-character request identifier."""
    return uuid.uuid4().hex


def clean_trace_id(candidate: object) -> str | None:
    """Return ``candidate`` if it is a well-formed trace ID, else ``None``.

    Inbound headers are untrusted: anything but a short token of URL-safe
    characters is rejected so stats snapshots and response headers can
    never carry header-injection payloads.
    """
    if isinstance(candidate, str) and _TRACE_ID_RE.match(candidate):
        return candidate
    return None


def _default_bounds() -> tuple[float, ...]:
    # 0.25 ms doubling up to ~65 s: 19 finite bucket upper bounds.  Wide
    # enough for queue waits on a loaded box and for multi-second batch
    # requests, fine enough that p50 on a sub-millisecond path is not
    # flattened into a single bucket.
    return tuple(0.00025 * 2.0**i for i in range(19))


DEFAULT_BUCKET_BOUNDS: tuple[float, ...] = _default_bounds()


class LatencyHistogram:
    """Fixed-bucket histogram over non-negative durations in seconds."""

    __slots__ = ("bounds", "counts", "overflow", "n", "total", "min_value", "max_value")

    def __init__(self, bounds: Sequence[float] | None = None) -> None:
        chosen = tuple(bounds) if bounds is not None else DEFAULT_BUCKET_BOUNDS
        if not chosen or any(b <= 0 for b in chosen) or list(chosen) != sorted(chosen):
            raise ValidationError(
                "histogram bounds must be a sorted sequence of positive seconds"
            )
        self.bounds = chosen
        self.counts = [0] * len(chosen)
        self.overflow = 0
        self.n = 0
        self.total = 0.0
        self.min_value: float | None = None
        self.max_value: float | None = None

    def record(self, seconds: float) -> None:
        value = max(0.0, float(seconds))
        index = bisect.bisect_left(self.bounds, value)
        if index >= len(self.counts):
            self.overflow += 1
        else:
            self.counts[index] += 1
        self.n += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    def merge(self, other: "LatencyHistogram") -> None:
        if other.bounds != self.bounds:
            raise ValidationError("cannot merge histograms with different bounds")
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.overflow += other.overflow
        self.n += other.n
        self.total += other.total
        for value in (other.min_value, other.max_value):
            if value is None:
                continue
            if self.min_value is None or value < self.min_value:
                self.min_value = value
            if self.max_value is None or value > self.max_value:
                self.max_value = value

    def percentile(self, q: float) -> float | None:
        """Estimate the ``q``-quantile (``0 < q <= 1``) in seconds."""
        if self.n == 0:
            return None
        rank = q * self.n
        cumulative = 0.0
        lower = 0.0
        for upper, count in zip(self.bounds, self.counts):
            if count:
                cumulative += count
                if cumulative >= rank:
                    # Linear interpolation inside the bucket; clamp to the
                    # observed max so tiny samples do not report a bucket
                    # ceiling nobody ever hit.
                    fraction = 1.0 - (cumulative - rank) / count
                    estimate = lower + (upper - lower) * fraction
                    if self.max_value is not None:
                        estimate = min(estimate, self.max_value)
                    if self.min_value is not None:
                        estimate = max(estimate, self.min_value)
                    return estimate
            lower = upper
        return self.max_value

    def snapshot(self) -> dict:
        """A JSON-serializable summary (counts cumulative, Prometheus-style)."""
        cumulative = 0
        buckets = []
        for upper, count in zip(self.bounds, self.counts):
            cumulative += count
            buckets.append({"le_seconds": upper, "count": cumulative})
        buckets.append({"le_seconds": "+Inf", "count": cumulative + self.overflow})
        return {
            "count": self.n,
            "sum_seconds": self.total,
            "min_ms": None if self.min_value is None else self.min_value * 1e3,
            "max_ms": None if self.max_value is None else self.max_value * 1e3,
            "p50_ms": _to_ms(self.percentile(0.50)),
            "p95_ms": _to_ms(self.percentile(0.95)),
            "p99_ms": _to_ms(self.percentile(0.99)),
            "buckets": buckets,
        }


def _to_ms(seconds: float | None) -> float | None:
    return None if seconds is None else seconds * 1e3


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in sorted(labels.items()))
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    formatted = repr(float(value))
    return formatted


def histogram_lines(
    metric: str, labels: Mapping[str, str], snapshot: Mapping
) -> list[str]:
    """Render one histogram snapshot as Prometheus exposition lines."""
    lines = []
    for bucket in snapshot["buckets"]:
        bound = bucket["le_seconds"]
        le = "+Inf" if bound == "+Inf" else _format_value(float(bound))
        bucket_labels = dict(labels)
        bucket_labels["le"] = le
        lines.append(f"{metric}_bucket{_format_labels(bucket_labels)} {bucket['count']}")
    lines.append(f"{metric}_sum{_format_labels(labels)} {_format_value(snapshot['sum_seconds'])}")
    lines.append(f"{metric}_count{_format_labels(labels)} {snapshot['count']}")
    return lines


def render_prometheus(
    histograms: Iterable[tuple[str, Mapping[str, str], Mapping]],
    counters: Iterable[tuple[str, Mapping[str, str], float]] = (),
) -> str:
    """Render histograms and counters as a Prometheus text-format payload.

    ``histograms`` yields ``(metric, labels, snapshot)`` triples (snapshot as
    produced by :meth:`LatencyHistogram.snapshot`); ``counters`` yields
    ``(metric, labels, value)``.  ``# TYPE`` headers are emitted once per
    metric name, in first-seen order.
    """
    lines: list[str] = []
    typed: set[str] = set()
    for metric, labels, snapshot in histograms:
        if metric not in typed:
            lines.append(f"# TYPE {metric} histogram")
            typed.add(metric)
        lines.extend(histogram_lines(metric, labels, snapshot))
    for metric, labels, value in counters:
        if metric not in typed:
            lines.append(f"# TYPE {metric} counter")
            typed.add(metric)
        lines.append(f"{metric}{_format_labels(labels)} {_format_value(value)}")
    return "\n".join(lines) + "\n"
