"""Bernoulli Naive Bayes baseline for supervised OCR (Fig. 11, leftmost bar).

Each letter image is classified independently of its neighbours — no chain
structure — which is exactly why it trails the HMM-family models in the
paper's comparison.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.utils.maths import safe_log


class BernoulliNaiveBayes:
    """Naive Bayes with independent Bernoulli features per class.

    Parameters
    ----------
    n_classes:
        Number of classes (26 letters in the OCR task).
    n_features:
        Number of binary features (128 pixels).
    pseudocount:
        Laplace smoothing added to both the class prior and the per-pixel
        Bernoulli counts.
    """

    def __init__(self, n_classes: int, n_features: int, pseudocount: float = 1.0) -> None:
        if n_classes < 2:
            raise ValidationError(f"n_classes must be at least 2, got {n_classes}")
        if n_features < 1:
            raise ValidationError(f"n_features must be positive, got {n_features}")
        if pseudocount < 0:
            raise ValidationError(f"pseudocount must be non-negative, got {pseudocount}")
        self.n_classes = n_classes
        self.n_features = n_features
        self.pseudocount = pseudocount
        self.class_log_prior_: np.ndarray | None = None
        self.feature_probs_: np.ndarray | None = None

    def fit(
        self, sequences: Sequence[np.ndarray], labels: Sequence[np.ndarray]
    ) -> "BernoulliNaiveBayes":
        """Fit from labeled sequences (concatenated into independent items)."""
        X = np.concatenate([np.asarray(s, dtype=np.float64) for s in sequences])
        y = np.concatenate([np.asarray(l, dtype=np.int64) for l in labels])
        if X.shape[0] != y.shape[0]:
            raise ValidationError("sequences and labels disagree on the number of items")
        if X.shape[1] != self.n_features:
            raise ValidationError(
                f"expected {self.n_features} features, got {X.shape[1]}"
            )

        class_counts = np.full(self.n_classes, self.pseudocount)
        pixel_counts = np.full((self.n_classes, self.n_features), self.pseudocount)
        totals = np.full(self.n_classes, 2.0 * self.pseudocount)
        for cls in range(self.n_classes):
            mask = y == cls
            class_counts[cls] += float(mask.sum())
            if np.any(mask):
                pixel_counts[cls] += X[mask].sum(axis=0)
                totals[cls] += float(mask.sum())

        self.class_log_prior_ = safe_log(class_counts / class_counts.sum())
        self.feature_probs_ = np.clip(pixel_counts / totals[:, None], 1e-6, 1 - 1e-6)
        return self

    def _check_fitted(self) -> None:
        if self.class_log_prior_ is None or self.feature_probs_ is None:
            raise NotFittedError("BernoulliNaiveBayes must be fit before prediction")

    def log_joint(self, items: np.ndarray) -> np.ndarray:
        """Per-class log joint ``log P(class) + log P(x | class)`` for each item."""
        self._check_fitted()
        X = np.asarray(items, dtype=np.float64)
        log_p = np.log(self.feature_probs_)
        log_1p = np.log1p(-self.feature_probs_)
        return self.class_log_prior_[None, :] + X @ log_p.T + (1.0 - X) @ log_1p.T

    def predict_items(self, items: np.ndarray) -> np.ndarray:
        """Predict a class for every row of ``items``."""
        return np.argmax(self.log_joint(items), axis=1)

    def predict(self, sequences: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Predict letter labels for every sequence, position by position."""
        return [self.predict_items(np.asarray(seq, dtype=np.float64)) for seq in sequences]

    # ------------------------------------------------------------------ #
    def to_state_dict(self) -> dict:
        """Serializable snapshot: hyper-parameters plus fitted tables."""
        return {
            "n_classes": self.n_classes,
            "n_features": self.n_features,
            "pseudocount": self.pseudocount,
            "class_log_prior": (
                self.class_log_prior_.copy() if self.class_log_prior_ is not None else None
            ),
            "feature_probs": (
                self.feature_probs_.copy() if self.feature_probs_ is not None else None
            ),
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "BernoulliNaiveBayes":
        """Rebuild a (possibly fitted) classifier from :meth:`to_state_dict`."""
        classifier = cls(
            int(state["n_classes"]),
            int(state["n_features"]),
            pseudocount=float(state["pseudocount"]),
        )
        if state.get("class_log_prior") is not None:
            classifier.class_log_prior_ = np.asarray(
                state["class_log_prior"], dtype=np.float64
            )
        if state.get("feature_probs") is not None:
            classifier.feature_probs_ = np.asarray(
                state["feature_probs"], dtype=np.float64
            )
        return classifier
