"""Baseline classifiers the paper compares against (Fig. 11)."""

from repro.baselines.naive_bayes import BernoulliNaiveBayes
from repro.baselines.optimized_hmm import OptimizedHMMClassifier
from repro.baselines.hmm_classifier import SupervisedHMMClassifier

__all__ = [
    "BernoulliNaiveBayes",
    "SupervisedHMMClassifier",
    "OptimizedHMMClassifier",
]
