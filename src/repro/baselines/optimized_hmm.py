"""The "Optimized HMM" baseline of Fig. 11.

Krevat & Cuzzillo's "Improving off-line handwritten character recognition
with hidden Markov models" adds several engineering tricks to the plain
count-trained HMM: stronger emission smoothing, per-pixel feature weighting
(down-weighting uninformative pixels) and an emission/transition balance
exponent.  The paper reports it obtains only a "limited improvement" over
the plain HMM; this implementation provides the same knobs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.hmm_classifier import SupervisedHMMClassifier
from repro.exceptions import NotFittedError, ValidationError


class OptimizedHMMClassifier(SupervisedHMMClassifier):
    """Supervised HMM with emission weighting and likelihood scaling tricks.

    Parameters
    ----------
    emission_weight:
        Exponent applied to the emission log-likelihoods during decoding;
        values below 1 reduce the (often overconfident) influence of the 128
        independent-pixel likelihood relative to the transition model.
    informative_pixel_floor:
        Pixels whose across-class variance falls below this floor are
        down-weighted, mimicking the feature-selection trick.
    """

    def __init__(
        self,
        n_states: int,
        n_features: int,
        transition_pseudocount: float = 0.5,
        emission_pseudocount: float = 2.0,
        emission_weight: float = 0.35,
        informative_pixel_floor: float = 0.01,
    ) -> None:
        super().__init__(
            n_states,
            n_features,
            transition_pseudocount=transition_pseudocount,
            emission_pseudocount=emission_pseudocount,
        )
        if emission_weight <= 0:
            raise ValidationError(f"emission_weight must be positive, got {emission_weight}")
        if informative_pixel_floor < 0:
            raise ValidationError("informative_pixel_floor must be non-negative")
        self.emission_weight = emission_weight
        self.informative_pixel_floor = informative_pixel_floor
        self.pixel_weights_: np.ndarray | None = None

    def fit(
        self, sequences: Sequence[np.ndarray], labels: Sequence[np.ndarray]
    ) -> "OptimizedHMMClassifier":
        super().fit(sequences, labels)
        assert self.model_ is not None
        probs = self.model_.emissions.pixel_probs  # type: ignore[attr-defined]
        variance = probs.var(axis=0)
        weights = np.where(variance >= self.informative_pixel_floor, 1.0, 0.5)
        self.pixel_weights_ = weights
        return self

    def predict(self, sequences: Sequence[np.ndarray]) -> list[np.ndarray]:
        if self.model_ is None or self.pixel_weights_ is None:
            raise NotFittedError("OptimizedHMMClassifier must be fit before prediction")
        model = self.model_
        probs = model.emissions.pixel_probs  # type: ignore[attr-defined]
        log_p = np.log(probs)
        log_1p = np.log1p(-probs)
        weights = self.pixel_weights_

        # Score the weighted emissions over the concatenated corpus (two
        # matmuls total) and decode through the compiled-corpus path instead
        # of building one table per word in Python.
        corpus = model.compile(
            [np.asarray(seq, dtype=np.float64) for seq in sequences]
        )
        obs = np.asarray(corpus.concat, dtype=np.float64)
        weighted_obs = obs * weights[None, :]
        weighted_neg = (1.0 - obs) * weights[None, :]
        scores = self.emission_weight * (
            weighted_obs @ log_p.T + weighted_neg @ log_1p.T
        )
        decoded = model.inference_engine.viterbi_corpus(
            model.startprob, model.transmat, corpus, corpus.extend_scores(scores)
        )
        return [path for path, _ in decoded]

    # ------------------------------------------------------------------ #
    def to_state_dict(self) -> dict:
        """Serializable snapshot including the decoding-trick parameters."""
        state = super().to_state_dict()
        state["emission_weight"] = self.emission_weight
        state["informative_pixel_floor"] = self.informative_pixel_floor
        state["pixel_weights"] = (
            self.pixel_weights_.copy() if self.pixel_weights_ is not None else None
        )
        return state

    @classmethod
    def from_state_dict(cls, state: dict) -> "OptimizedHMMClassifier":
        classifier = cls(
            int(state["n_states"]),
            int(state["n_features"]),
            transition_pseudocount=float(state["transition_pseudocount"]),
            emission_pseudocount=float(state["emission_pseudocount"]),
            emission_weight=float(state["emission_weight"]),
            informative_pixel_floor=float(state["informative_pixel_floor"]),
        )
        if state.get("model") is not None:
            from repro.hmm.model import HMM

            classifier.model_ = HMM.from_state_dict(state["model"])
        if state.get("pixel_weights") is not None:
            classifier.pixel_weights_ = np.asarray(
                state["pixel_weights"], dtype=np.float64
            )
        return classifier
