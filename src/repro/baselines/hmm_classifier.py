"""Supervised HMM sequence classifier (the paper's plain "HMM" baseline).

Parameters ``(pi, A, B)`` are estimated by counting from the labeled training
words; test words are decoded with Viterbi.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.hmm.emissions.bernoulli import BernoulliEmission
from repro.hmm.model import HMM
from repro.hmm.supervised import estimate_supervised_parameters


class SupervisedHMMClassifier:
    """Count-trained HMM with Bernoulli emissions for sequential labeling.

    Parameters
    ----------
    n_states:
        Number of hidden states (26 letters in the OCR task).
    n_features:
        Dimensionality of the binary observations (128 pixels).
    transition_pseudocount, emission_pseudocount:
        Laplace smoothing for the counting estimates.
    """

    def __init__(
        self,
        n_states: int,
        n_features: int,
        transition_pseudocount: float = 0.1,
        emission_pseudocount: float = 1.0,
    ) -> None:
        if n_states < 2:
            raise ValidationError(f"n_states must be at least 2, got {n_states}")
        if n_features < 1:
            raise ValidationError(f"n_features must be positive, got {n_features}")
        self.n_states = n_states
        self.n_features = n_features
        self.transition_pseudocount = transition_pseudocount
        self.emission_pseudocount = emission_pseudocount
        self.model_: HMM | None = None

    def fit(
        self, sequences: Sequence[np.ndarray], labels: Sequence[np.ndarray]
    ) -> "SupervisedHMMClassifier":
        """Estimate ``(pi, A, B)`` by counting on the labeled training words."""
        startprob, transmat = estimate_supervised_parameters(
            labels, self.n_states, pseudocount=self.transition_pseudocount
        )
        emissions = BernoulliEmission.random_init(self.n_states, self.n_features, seed=0)
        emissions.fit_supervised(sequences, labels, pseudocount=self.emission_pseudocount)
        self.model_ = HMM(startprob, transmat, emissions)
        return self

    def _check_fitted(self) -> HMM:
        if self.model_ is None:
            raise NotFittedError("SupervisedHMMClassifier must be fit before prediction")
        return self.model_

    def predict(self, sequences: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Viterbi-decode letter labels for every test word (compiled corpus)."""
        model = self._check_fitted()
        corpus = model.compile([np.asarray(seq, dtype=np.float64) for seq in sequences])
        return model.predict_corpus(corpus)

    @property
    def transmat_(self) -> np.ndarray:
        """The count-estimated transition matrix ``A0``."""
        return self._check_fitted().transmat

    # ------------------------------------------------------------------ #
    def to_state_dict(self) -> dict:
        """Serializable snapshot: hyper-parameters plus the fitted model."""
        return {
            "n_states": self.n_states,
            "n_features": self.n_features,
            "transition_pseudocount": self.transition_pseudocount,
            "emission_pseudocount": self.emission_pseudocount,
            "model": self.model_.to_state_dict() if self.model_ is not None else None,
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "SupervisedHMMClassifier":
        """Rebuild a (possibly fitted) classifier from :meth:`to_state_dict`."""
        classifier = cls(
            int(state["n_states"]),
            int(state["n_features"]),
            transition_pseudocount=float(state["transition_pseudocount"]),
            emission_pseudocount=float(state["emission_pseudocount"]),
        )
        if state.get("model") is not None:
            classifier.model_ = HMM.from_state_dict(state["model"])
        return classifier
