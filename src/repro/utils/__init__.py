"""Shared low-level helpers: validation, RNG handling and numerics."""

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import (
    check_probability_matrix,
    check_probability_vector,
    check_sequences,
    check_square_matrix,
)
from repro.utils.maths import (
    logsumexp,
    normalize_log_probabilities,
    normalize_rows,
    safe_log,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "check_probability_matrix",
    "check_probability_vector",
    "check_sequences",
    "check_square_matrix",
    "logsumexp",
    "normalize_log_probabilities",
    "normalize_rows",
    "safe_log",
]
