"""Input validation helpers shared by all models."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import DimensionMismatchError, ValidationError

_PROB_ATOL = 1e-6


def check_probability_vector(vector, name: str = "vector", atol: float = _PROB_ATOL) -> np.ndarray:
    """Validate that ``vector`` is a 1-D probability distribution.

    Returns the vector as a float64 array.  Raises :class:`ValidationError`
    if entries are negative or do not sum to one within ``atol``.
    """
    arr = np.asarray(vector, dtype=np.float64)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    if np.any(~np.isfinite(arr)):
        raise ValidationError(f"{name} contains non-finite entries")
    if np.any(arr < -atol):
        raise ValidationError(f"{name} contains negative entries")
    total = float(arr.sum())
    if not np.isclose(total, 1.0, atol=atol):
        raise ValidationError(f"{name} must sum to 1, got {total}")
    return arr


def check_probability_matrix(matrix, name: str = "matrix", atol: float = _PROB_ATOL) -> np.ndarray:
    """Validate that ``matrix`` is row-stochastic and return it as float64."""
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be two-dimensional, got shape {arr.shape}")
    if np.any(~np.isfinite(arr)):
        raise ValidationError(f"{name} contains non-finite entries")
    if np.any(arr < -atol):
        raise ValidationError(f"{name} contains negative entries")
    sums = arr.sum(axis=1)
    if not np.allclose(sums, 1.0, atol=atol):
        worst = int(np.argmax(np.abs(sums - 1.0)))
        raise ValidationError(
            f"rows of {name} must sum to 1; row {worst} sums to {sums[worst]}"
        )
    return arr


def check_square_matrix(matrix, name: str = "matrix") -> np.ndarray:
    """Validate that ``matrix`` is square and finite."""
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise DimensionMismatchError(f"{name} must be square, got shape {arr.shape}")
    if np.any(~np.isfinite(arr)):
        raise ValidationError(f"{name} contains non-finite entries")
    return arr


def check_sequences(
    sequences: Iterable[Sequence[int]] | Iterable[np.ndarray],
    name: str = "sequences",
    min_length: int = 1,
    n_symbols: int | None = None,
    dtype=np.int64,
) -> list[np.ndarray]:
    """Validate a collection of integer observation/label sequences.

    Each sequence is converted to a 1-D integer array.  When ``n_symbols`` is
    given, entries must lie in ``[0, n_symbols)``.
    """
    out: list[np.ndarray] = []
    for idx, seq in enumerate(sequences):
        arr = np.asarray(seq, dtype=dtype)
        if arr.ndim != 1:
            raise ValidationError(f"{name}[{idx}] must be one-dimensional, got shape {arr.shape}")
        if arr.size < min_length:
            raise ValidationError(
                f"{name}[{idx}] has length {arr.size}, expected at least {min_length}"
            )
        if n_symbols is not None and arr.size > 0:
            if arr.min() < 0 or arr.max() >= n_symbols:
                raise ValidationError(
                    f"{name}[{idx}] contains symbols outside [0, {n_symbols})"
                )
        out.append(arr)
    if not out:
        raise ValidationError(f"{name} must contain at least one sequence")
    return out


def check_real_sequences(
    sequences, name: str = "sequences", min_length: int = 1
) -> list[np.ndarray]:
    """Validate real-valued observation sequences (1-D float arrays)."""
    out: list[np.ndarray] = []
    for idx, seq in enumerate(sequences):
        arr = np.asarray(seq, dtype=np.float64)
        if arr.ndim != 1:
            raise ValidationError(f"{name}[{idx}] must be one-dimensional, got shape {arr.shape}")
        if arr.size < min_length:
            raise ValidationError(
                f"{name}[{idx}] has length {arr.size}, expected at least {min_length}"
            )
        if np.any(~np.isfinite(arr)):
            raise ValidationError(f"{name}[{idx}] contains non-finite values")
        out.append(arr)
    if not out:
        raise ValidationError(f"{name} must contain at least one sequence")
    return out


def check_binary_sequences(sequences, name: str = "sequences", n_features: int | None = None) -> list[np.ndarray]:
    """Validate sequences of binary feature vectors with shape ``(T, D)``."""
    out: list[np.ndarray] = []
    for idx, seq in enumerate(sequences):
        arr = np.asarray(seq, dtype=np.float64)
        if arr.ndim != 2:
            raise ValidationError(f"{name}[{idx}] must be two-dimensional, got shape {arr.shape}")
        if n_features is not None and arr.shape[1] != n_features:
            raise DimensionMismatchError(
                f"{name}[{idx}] has {arr.shape[1]} features, expected {n_features}"
            )
        if np.any((arr != 0.0) & (arr != 1.0)):
            raise ValidationError(f"{name}[{idx}] must contain only 0/1 values")
        out.append(arr)
    if not out:
        raise ValidationError(f"{name} must contain at least one sequence")
    return out
