"""Numerical helpers used across the HMM and DPP code."""

from __future__ import annotations

import numpy as np

#: Smallest probability kept when taking logs; prevents -inf propagation.
LOG_EPS = 1e-300


def safe_log(x: np.ndarray | float) -> np.ndarray:
    """Elementwise log that maps zeros to ``log(LOG_EPS)`` instead of ``-inf``."""
    arr = np.asarray(x, dtype=np.float64)
    return np.log(np.clip(arr, LOG_EPS, None))


def logsumexp(values: np.ndarray, axis: int | None = None) -> np.ndarray:
    """Numerically stable ``log(sum(exp(values)))`` along ``axis``.

    Mirrors :func:`scipy.special.logsumexp` but keeps the library's hot loops
    free of scipy imports.
    """
    arr = np.asarray(values, dtype=np.float64)
    maximum = np.max(arr, axis=axis, keepdims=True)
    maximum = np.where(np.isfinite(maximum), maximum, 0.0)
    summed = np.sum(np.exp(arr - maximum), axis=axis, keepdims=True)
    with np.errstate(divide="ignore"):
        out = np.log(summed) + maximum
    if axis is None:
        return np.asarray(out).reshape(())
    return np.squeeze(out, axis=axis)


def normalize_rows(matrix: np.ndarray, pseudocount: float = 0.0) -> np.ndarray:
    """Normalize each row of ``matrix`` to sum to one.

    Degenerate rows fall back to the uniform distribution instead of
    producing NaN/inf output: a row is degenerate when its sum (after
    adding ``pseudocount``) is zero — e.g. a state never observed in
    supervised counting with ``pseudocount=0`` — or not finite.
    """
    arr = np.asarray(matrix, dtype=np.float64) + pseudocount
    sums = arr.sum(axis=1, keepdims=True)
    n_cols = arr.shape[1]
    uniform = np.full_like(arr, 1.0 / n_cols)
    with np.errstate(invalid="ignore", divide="ignore"):
        normalized = arr / sums
    valid = np.isfinite(sums) & (sums > 0)
    return np.where(valid, normalized, uniform)


def normalize_log_probabilities(log_values: np.ndarray, axis: int = -1) -> np.ndarray:
    """Exponentiate and normalize log-domain values along ``axis``."""
    log_values = np.asarray(log_values, dtype=np.float64)
    log_norm = logsumexp(log_values, axis=axis)
    return np.exp(log_values - np.expand_dims(log_norm, axis))


def bhattacharyya_coefficient(p: np.ndarray, q: np.ndarray) -> float:
    """Bhattacharyya coefficient ``sum_i sqrt(p_i q_i)`` of two distributions."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    return float(np.sum(np.sqrt(np.clip(p, 0.0, None) * np.clip(q, 0.0, None))))


def bhattacharyya_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Bhattacharyya distance ``-log BC(p, q)`` between two distributions."""
    coeff = bhattacharyya_coefficient(p, q)
    return float(-np.log(max(coeff, LOG_EPS)))
