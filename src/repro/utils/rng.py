"""Random number generator plumbing.

Every stochastic entry point of the library accepts a ``seed`` argument that
may be ``None``, an integer or an already-constructed
:class:`numpy.random.Generator`.  :func:`as_generator` normalizes all three
forms so downstream code only ever deals with ``Generator`` objects.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, or an existing generator
        which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent child generators from a single seed.

    Useful for repeated experiment runs that must be independent yet fully
    reproducible from one top-level seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = as_generator(seed)
    seeds = root.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
