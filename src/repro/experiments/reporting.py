"""Plain-text reporting helpers for the experiment harnesses.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers render them as aligned text tables so the benchmark
output can be eyeballed against the paper.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], float_format: str = "{:.4f}"
) -> str:
    """Render a simple aligned text table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of rows; floats are formatted with ``float_format``, other
        values with ``str``.
    float_format:
        Format string applied to float cells.
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered_rows = [[render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rendered_rows)
    return "\n".join(out)


def format_series(name: str, xs: Sequence[object], ys: Sequence[float]) -> str:
    """Render an (x, y) series as a two-column table titled ``name``."""
    rows = list(zip(xs, ys))
    return f"{name}\n" + format_table(["x", "y"], rows)
