"""Experiment harnesses reproducing every table and figure of the paper."""

from repro.experiments.alignment import align_model_to_reference, permute_model_parameters
from repro.experiments.toy import (
    SigmaSweepResult,
    ToyComparisonResult,
    run_sigma_sweep,
    run_toy_comparison,
)
from repro.experiments.pos import (
    PosAlphaSweepResult,
    corpus_statistics,
    run_pos_alpha_sweep,
    tag_frequency_histograms,
    transition_diversity_profile,
)
from repro.experiments.ocr import (
    OcrAlphaSweepResult,
    OcrComparisonResult,
    letter_diversity_profiles,
    run_ocr_alpha_sweep,
    run_ocr_classifier_comparison,
)
from repro.experiments.ablations import run_projection_ablation, run_rho_ablation
from repro.experiments.reporting import format_table

__all__ = [
    "align_model_to_reference",
    "permute_model_parameters",
    "ToyComparisonResult",
    "SigmaSweepResult",
    "run_toy_comparison",
    "run_sigma_sweep",
    "PosAlphaSweepResult",
    "run_pos_alpha_sweep",
    "transition_diversity_profile",
    "tag_frequency_histograms",
    "corpus_statistics",
    "OcrAlphaSweepResult",
    "OcrComparisonResult",
    "run_ocr_alpha_sweep",
    "run_ocr_classifier_comparison",
    "letter_diversity_profiles",
    "run_rho_ablation",
    "run_projection_ablation",
    "format_table",
]
