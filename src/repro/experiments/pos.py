"""Unsupervised PoS-tagging experiments (paper Section 4.2.1: Table 2, Fig. 7-9)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import DHMMConfig
from repro.core.diversified_hmm import DiversifiedHMM
from repro.datasets.pos import PosCorpus, generate_wsj_like_corpus
from repro.hmm.corpus import CompiledCorpus, compile_corpus
from repro.hmm.emissions.categorical import CategoricalEmission
from repro.metrics.accuracy import align_labels_one_to_one, one_to_one_accuracy, remap_predictions
from repro.metrics.diversity import row_diversity_profile
from repro.utils.rng import SeedLike


#: The alpha grid of Fig. 7 / Fig. 10.
PAPER_ALPHA_GRID = (0.0, 0.1, 1.0, 10.0, 100.0, 1000.0)


@dataclass
class PosAlphaSweepResult:
    """Accuracy-vs-alpha series of Fig. 7, plus the fitted models."""

    alphas: np.ndarray
    accuracies: np.ndarray
    models: list[DiversifiedHMM]
    corpus: PosCorpus

    @property
    def baseline_accuracy(self) -> float:
        """Accuracy of the plain HMM (the ``alpha = 0`` entry)."""
        zero_idx = int(np.argmin(np.abs(self.alphas)))
        return float(self.accuracies[zero_idx])

    @property
    def best_alpha(self) -> float:
        """The alpha achieving the highest 1-to-1 accuracy."""
        return float(self.alphas[int(np.argmax(self.accuracies))])

    @property
    def best_accuracy(self) -> float:
        return float(self.accuracies.max())


def fit_pos_model(
    corpus: PosCorpus,
    alpha: float,
    max_em_iter: int = 15,
    seed: SeedLike = 0,
    compiled: CompiledCorpus | None = None,
) -> DiversifiedHMM:
    """Fit an (un)regularized HMM tagger on a PoS corpus.

    ``compiled`` lets sweep drivers share one
    :class:`~repro.hmm.corpus.CompiledCorpus` encoding of ``corpus.words``
    across every fit of a grid instead of re-deriving it per model.
    """
    config = DHMMConfig(alpha=alpha, max_em_iter=max_em_iter)
    emissions = CategoricalEmission.random_init(
        corpus.n_tags, corpus.vocabulary_size, seed=seed
    )
    model = DiversifiedHMM(emissions, config, seed=seed)
    model.fit(compiled if compiled is not None else corpus.words)
    return model


def run_pos_alpha_sweep(
    corpus: PosCorpus | None = None,
    alphas=PAPER_ALPHA_GRID,
    max_em_iter: int = 15,
    seed: SeedLike = 0,
    **corpus_kwargs,
) -> PosAlphaSweepResult:
    """Reproduce Fig. 7: unsupervised tagging accuracy as a function of alpha.

    ``alpha = 0`` is the traditional-HMM baseline; the paper reports 0.4475
    for the baseline and a best of 0.4688 at ``alpha = 100`` on WSJ.
    """
    if corpus is None:
        corpus = generate_wsj_like_corpus(seed=seed, **corpus_kwargs)
    alphas_arr = np.asarray(list(alphas), dtype=np.float64)
    accuracies = np.zeros(alphas_arr.size)
    models: list[DiversifiedHMM] = []
    # One compile serves every fit and decode of the grid.
    compiled = compile_corpus(corpus.words)
    for idx, alpha in enumerate(alphas_arr):
        model = fit_pos_model(
            corpus, float(alpha), max_em_iter=max_em_iter, seed=seed, compiled=compiled
        )
        predictions = model.predict_corpus(compiled)
        accuracies[idx] = one_to_one_accuracy(corpus.tags, predictions, n_states=corpus.n_tags)
        models.append(model)
    return PosAlphaSweepResult(
        alphas=alphas_arr, accuracies=accuracies, models=models, corpus=corpus
    )


def transition_diversity_profile(
    model: DiversifiedHMM, reference_tag: int = 0
) -> np.ndarray:
    """Fig. 8 / Fig. 12-style profile: diversity of one tag's transitions vs the rest.

    Returns the Bhattacharyya distance between the transition distribution of
    ``reference_tag`` and every other tag's transition distribution.
    """
    return row_diversity_profile(model.transmat_, reference_tag)


def tag_frequency_histograms(
    corpus: PosCorpus,
    hmm_model: DiversifiedHMM,
    dhmm_model: DiversifiedHMM,
) -> dict[str, np.ndarray]:
    """Fig. 9: per-tag token counts under the gold tags and both models.

    Model predictions are first aligned to the gold tags with the Hungarian
    1-to-1 mapping (as in the accuracy computation), then the number of
    tokens assigned to each tag is counted.  The gold counts exhibit the
    skewed long-tail distribution the paper describes.
    """
    n_tags = corpus.n_tags
    result: dict[str, np.ndarray] = {"ground_truth": corpus.tag_histogram()}
    compiled = compile_corpus(corpus.words)
    for name, model in (("hmm", hmm_model), ("dhmm", dhmm_model)):
        predictions = model.predict_corpus(compiled)
        mapping = align_labels_one_to_one(corpus.tags, predictions, n_states=n_tags)
        remapped = remap_predictions(predictions, mapping)
        counts = np.zeros(n_tags)
        for sent in remapped:
            np.add.at(counts, sent, 1.0)
        result[name] = counts
    return result


def corpus_statistics(corpus: PosCorpus) -> list[tuple[str, int, float]]:
    """Table 2-style rows: (tag name, token count, fraction of all tokens)."""
    histogram = corpus.tag_histogram()
    total = histogram.sum()
    rows = []
    for idx, name in enumerate(corpus.tag_names):
        count = int(histogram[idx])
        rows.append((name, count, float(count / total) if total else 0.0))
    return sorted(rows, key=lambda row: row[1], reverse=True)
