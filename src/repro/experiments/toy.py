"""Toy-data experiments (paper Section 4.1: Fig. 2-5 and Table 1)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DHMMConfig
from repro.core.diversified_hmm import DiversifiedHMM
from repro.datasets.toy import (
    TOY_SEQUENCE_LENGTH,
    TOY_N_SEQUENCES,
    ToyDataset,
    generate_toy_dataset,
    sigma_sweep_values,
)
from repro.hmm.corpus import CompiledCorpus, compile_corpus
from repro.hmm.emissions.gaussian import GaussianEmission
from repro.metrics.accuracy import one_to_one_accuracy
from repro.metrics.diversity import average_pairwise_bhattacharyya
from repro.metrics.histograms import effective_state_count, state_histogram
from repro.utils.rng import SeedLike, spawn_generators


@dataclass
class ToyComparisonResult:
    """Outcome of one HMM vs dHMM comparison on a toy dataset.

    Covers the numbers behind Fig. 2, Table 1 and Fig. 4: learned models,
    inferred state histograms, 1-to-1 accuracies and transition diversities.
    """

    dataset: ToyDataset
    hmm: DiversifiedHMM
    dhmm: DiversifiedHMM
    hmm_accuracy: float
    dhmm_accuracy: float
    true_histogram: np.ndarray
    hmm_histogram: np.ndarray
    dhmm_histogram: np.ndarray
    hmm_diversity: float
    dhmm_diversity: float
    true_diversity: float

    def summary_rows(self) -> list[tuple[str, float, float, float]]:
        """Rows of the Table-1-style summary (model, accuracy, diversity, #states)."""
        threshold = 50.0
        return [
            ("ground-truth", 1.0, self.true_diversity,
             float(np.sum(self.true_histogram >= threshold))),
            ("HMM", self.hmm_accuracy, self.hmm_diversity,
             float(np.sum(self.hmm_histogram >= threshold))),
            ("dHMM", self.dhmm_accuracy, self.dhmm_diversity,
             float(np.sum(self.dhmm_histogram >= threshold))),
        ]


@dataclass
class SigmaSweepResult:
    """Series behind Fig. 3 (diversity vs sigma) and Fig. 5 (#states vs sigma)."""

    sigmas: np.ndarray
    hmm_diversity: np.ndarray
    dhmm_diversity: np.ndarray
    true_diversity: float
    hmm_n_states: np.ndarray
    dhmm_n_states: np.ndarray
    hmm_accuracy: np.ndarray = field(default_factory=lambda: np.array([]))
    dhmm_accuracy: np.ndarray = field(default_factory=lambda: np.array([]))


def _fit_pair(
    dataset: ToyDataset,
    alpha: float,
    seed: SeedLike,
    max_em_iter: int,
    corpus: CompiledCorpus | None = None,
) -> tuple[DiversifiedHMM, DiversifiedHMM]:
    """Fit a plain HMM (alpha=0) and a dHMM with identical initialization.

    ``corpus`` shares one compiled encoding of ``dataset.observations``
    between both fits (and the caller's decodes).
    """
    k = dataset.n_states
    hmm_config = DHMMConfig(alpha=0.0, max_em_iter=max_em_iter)
    dhmm_config = DHMMConfig(alpha=alpha, max_em_iter=max_em_iter)
    emissions = GaussianEmission.random_init(k, dataset.observations, seed=seed)
    hmm = DiversifiedHMM(emissions.copy(), hmm_config, seed=seed)
    dhmm = DiversifiedHMM(emissions.copy(), dhmm_config, seed=seed)
    data = corpus if corpus is not None else dataset.observations
    hmm.fit(data)
    dhmm.fit(data)
    return hmm, dhmm


def run_toy_comparison(
    alpha: float = 1.0,
    n_sequences: int = TOY_N_SEQUENCES,
    sequence_length: int = TOY_SEQUENCE_LENGTH,
    sigma: float = 0.025,
    max_em_iter: int = 30,
    seed: SeedLike = 0,
) -> ToyComparisonResult:
    """Reproduce the Fig. 2 / Table 1 comparison on one toy dataset.

    Trains the classical HMM (``alpha = 0``) and the dHMM with the given
    ``alpha`` on the same data and the same random initialization, decodes
    the training sequences with Viterbi and evaluates 1-to-1 accuracy,
    state-usage histograms and transition-row diversity.
    """
    dataset = generate_toy_dataset(
        n_sequences=n_sequences, sequence_length=sequence_length, sigma=sigma, seed=seed
    )
    corpus = compile_corpus(dataset.observations)
    hmm, dhmm = _fit_pair(dataset, alpha, seed, max_em_iter, corpus=corpus)

    k = dataset.n_states
    hmm_labels = hmm.predict_corpus(corpus)
    dhmm_labels = dhmm.predict_corpus(corpus)

    return ToyComparisonResult(
        dataset=dataset,
        hmm=hmm,
        dhmm=dhmm,
        hmm_accuracy=one_to_one_accuracy(dataset.states, hmm_labels, n_states=k),
        dhmm_accuracy=one_to_one_accuracy(dataset.states, dhmm_labels, n_states=k),
        true_histogram=state_histogram(dataset.states, k),
        hmm_histogram=state_histogram(hmm_labels, k),
        dhmm_histogram=state_histogram(dhmm_labels, k),
        hmm_diversity=average_pairwise_bhattacharyya(hmm.transmat_),
        dhmm_diversity=average_pairwise_bhattacharyya(dhmm.transmat_),
        true_diversity=average_pairwise_bhattacharyya(dataset.model.transmat),
    )


def run_sigma_sweep(
    sigmas: np.ndarray | None = None,
    alpha: float = 1.0,
    n_runs: int = 3,
    n_sequences: int = TOY_N_SEQUENCES,
    sequence_length: int = TOY_SEQUENCE_LENGTH,
    max_em_iter: int = 20,
    state_threshold: float = 50.0,
    seed: SeedLike = 0,
) -> SigmaSweepResult:
    """Reproduce the Fig. 3 / Fig. 5 sweep over the emission sigma.

    For every sigma the toy data is regenerated, HMM and dHMM are trained
    (averaged over ``n_runs`` random initializations, paper uses 10), and
    the transition-row diversity, the number of effectively used states and
    the 1-to-1 accuracy are recorded.
    """
    if sigmas is None:
        sigmas = sigma_sweep_values(10)
    sigmas = np.asarray(sigmas, dtype=np.float64)

    hmm_div = np.zeros(sigmas.size)
    dhmm_div = np.zeros(sigmas.size)
    hmm_states = np.zeros(sigmas.size)
    dhmm_states = np.zeros(sigmas.size)
    hmm_acc = np.zeros(sigmas.size)
    dhmm_acc = np.zeros(sigmas.size)

    run_rngs = spawn_generators(seed, n_runs * sigmas.size)
    true_diversity = average_pairwise_bhattacharyya(
        generate_toy_dataset(4, 2, seed=0).model.transmat
    )

    for s_idx, sigma in enumerate(sigmas):
        for run in range(n_runs):
            rng = run_rngs[s_idx * n_runs + run]
            dataset = generate_toy_dataset(
                n_sequences=n_sequences,
                sequence_length=sequence_length,
                sigma=float(sigma),
                seed=rng,
            )
            corpus = compile_corpus(dataset.observations)
            hmm, dhmm = _fit_pair(dataset, alpha, rng, max_em_iter, corpus=corpus)
            k = dataset.n_states
            hmm_labels = hmm.predict_corpus(corpus)
            dhmm_labels = dhmm.predict_corpus(corpus)

            hmm_div[s_idx] += average_pairwise_bhattacharyya(hmm.transmat_)
            dhmm_div[s_idx] += average_pairwise_bhattacharyya(dhmm.transmat_)
            hmm_states[s_idx] += effective_state_count(hmm_labels, k, state_threshold)
            dhmm_states[s_idx] += effective_state_count(dhmm_labels, k, state_threshold)
            hmm_acc[s_idx] += one_to_one_accuracy(dataset.states, hmm_labels, n_states=k)
            dhmm_acc[s_idx] += one_to_one_accuracy(dataset.states, dhmm_labels, n_states=k)

    scale = 1.0 / n_runs
    return SigmaSweepResult(
        sigmas=sigmas,
        hmm_diversity=hmm_div * scale,
        dhmm_diversity=dhmm_div * scale,
        true_diversity=true_diversity,
        hmm_n_states=hmm_states * scale,
        dhmm_n_states=dhmm_states * scale,
        hmm_accuracy=hmm_acc * scale,
        dhmm_accuracy=dhmm_acc * scale,
    )
