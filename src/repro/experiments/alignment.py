"""Aligning learned parameters to ground truth for visual comparison.

Unsupervised models identify states only up to a permutation; before the
Fig. 2-style parameter comparison the paper aligns the learned transition
matrix to the ground-truth one by minimizing the row-wise distance, then
permutes ``pi`` and the emission parameters accordingly.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.hmm.emissions.gaussian import GaussianEmission
from repro.hmm.model import HMM
from repro.metrics.hungarian import hungarian_assignment


def transition_alignment_permutation(
    learned_transmat: np.ndarray, reference_transmat: np.ndarray
) -> np.ndarray:
    """Permutation ``perm`` minimizing ``||learned[perm][:, perm] - reference||``.

    Aligning two transition matrices is a state relabeling, so the same
    permutation must be applied to rows and columns simultaneously.  For the
    small state spaces of the paper's experiments (k <= 8) the exact optimum
    is found by enumerating all permutations; for larger k a Hungarian
    heuristic on plain row distances is used instead.
    """
    learned = np.asarray(learned_transmat, dtype=np.float64)
    reference = np.asarray(reference_transmat, dtype=np.float64)
    if learned.shape != reference.shape:
        raise ValidationError("transition matrices must have the same shape")
    k = learned.shape[0]

    if k <= 8:
        import itertools

        best_perm, best_cost = None, np.inf
        for candidate in itertools.permutations(range(k)):
            perm = np.asarray(candidate, dtype=np.int64)
            cost = float(np.linalg.norm(learned[np.ix_(perm, perm)] - reference))
            if cost < best_cost:
                best_cost, best_perm = cost, perm
        assert best_perm is not None
        return best_perm

    cost = np.zeros((k, k))
    for i in range(k):
        for j in range(k):
            cost[j, i] = float(np.linalg.norm(learned[i] - reference[j]))
    ref_idx, learned_idx = hungarian_assignment(cost)
    perm = np.zeros(k, dtype=np.int64)
    for r, l in zip(ref_idx, learned_idx):
        perm[r] = l
    return perm


def emission_alignment_permutation(
    learned_means: np.ndarray, reference_means: np.ndarray
) -> np.ndarray:
    """Permutation matching learned Gaussian means to reference means."""
    learned = np.asarray(learned_means, dtype=np.float64)
    reference = np.asarray(reference_means, dtype=np.float64)
    if learned.shape != reference.shape:
        raise ValidationError("mean vectors must have the same shape")
    cost = np.abs(reference[:, None] - learned[None, :])
    ref_idx, learned_idx = hungarian_assignment(cost)
    perm = np.zeros(learned.size, dtype=np.int64)
    for r, l in zip(ref_idx, learned_idx):
        perm[r] = l
    return perm


def permute_model_parameters(model: HMM, permutation: np.ndarray) -> HMM:
    """Return a copy of ``model`` with states re-ordered by ``permutation``.

    ``permutation[new_index] = old_index``: state ``permutation[i]`` of the
    original model becomes state ``i`` of the returned model.
    """
    perm = np.asarray(permutation, dtype=np.int64)
    k = model.n_states
    if sorted(perm.tolist()) != list(range(k)):
        raise ValidationError("permutation must be a permutation of the state indices")
    startprob = model.startprob[perm]
    transmat = model.transmat[np.ix_(perm, perm)]
    emissions = model.emissions.copy()
    if isinstance(emissions, GaussianEmission):
        emissions.means = emissions.means[perm]
        emissions.variances = emissions.variances[perm]
    elif hasattr(emissions, "emission_probs"):
        emissions.emission_probs = emissions.emission_probs[perm]
    elif hasattr(emissions, "pixel_probs"):
        emissions.pixel_probs = emissions.pixel_probs[perm]
    return HMM(startprob, transmat, emissions)


def align_model_to_reference(model: HMM, reference: HMM, by: str = "emissions") -> HMM:
    """Align a learned model's state order to a reference model.

    Parameters
    ----------
    model:
        Learned model whose state indexing is arbitrary.
    reference:
        Ground-truth model providing the target ordering.
    by:
        ``"emissions"`` aligns by Gaussian means (the natural choice for the
        toy experiment); ``"transitions"`` aligns by transition-row distance.
    """
    if by == "emissions":
        if not isinstance(model.emissions, GaussianEmission) or not isinstance(
            reference.emissions, GaussianEmission
        ):
            raise ValidationError("emission alignment requires Gaussian emissions")
        perm = emission_alignment_permutation(model.emissions.means, reference.emissions.means)
    elif by == "transitions":
        perm = transition_alignment_permutation(model.transmat, reference.transmat)
    else:
        raise ValidationError(f"unknown alignment criterion: {by!r}")
    return permute_model_parameters(model, perm)
