"""Ablation studies on the dHMM's design choices (not in the paper).

Two ablations called out in DESIGN.md:

* **rho ablation** — the probability product kernel exponent is fixed at 0.5
  in the paper; we sweep it to check the choice matters little as long as the
  kernel stays well-conditioned.
* **projection ablation** — the M-step projects gradient iterates back onto
  the simplex (Wang & Carreira-Perpiñán); the cheap alternative of clipping
  to zero and renormalizing is compared.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import DHMMConfig
from repro.core.diversified_hmm import DiversifiedHMM
from repro.core.transition_prior import DiversityTransitionUpdater, DPPTransitionPrior
from repro.datasets.toy import generate_toy_dataset
from repro.hmm.corpus import compile_corpus
from repro.hmm.emissions.gaussian import GaussianEmission
from repro.metrics.accuracy import one_to_one_accuracy
from repro.metrics.diversity import average_pairwise_bhattacharyya
from repro.utils.maths import normalize_rows
from repro.utils.rng import SeedLike


@dataclass
class AblationRow:
    """One configuration of an ablation with its accuracy and diversity."""

    name: str
    accuracy: float
    diversity: float


def run_rho_ablation(
    rhos=(0.25, 0.5, 1.0),
    alpha: float = 1.0,
    sigma: float = 1.0,
    n_sequences: int = 150,
    max_em_iter: int = 15,
    seed: SeedLike = 0,
) -> list[AblationRow]:
    """Train the toy dHMM with several kernel exponents and compare."""
    dataset = generate_toy_dataset(n_sequences=n_sequences, sigma=sigma, seed=seed)
    corpus = compile_corpus(dataset.observations)
    rows: list[AblationRow] = []
    for rho in rhos:
        config = DHMMConfig(alpha=alpha, rho=float(rho), max_em_iter=max_em_iter)
        emissions = GaussianEmission.random_init(5, dataset.observations, seed=seed)
        model = DiversifiedHMM(emissions, config, seed=seed)
        model.fit(corpus)
        predictions = model.predict_corpus(corpus)
        rows.append(
            AblationRow(
                name=f"rho={rho}",
                accuracy=one_to_one_accuracy(dataset.states, predictions, n_states=5),
                diversity=average_pairwise_bhattacharyya(model.transmat_),
            )
        )
    return rows


class _RenormalizingUpdater(DiversityTransitionUpdater):
    """Ablation variant: clip-to-zero + renormalize instead of simplex projection."""

    def update(self, expected_counts: np.ndarray, current: np.ndarray) -> np.ndarray:
        counts = np.asarray(expected_counts, dtype=np.float64)
        if self.prior.alpha == 0:
            return normalize_rows(counts)
        cfg = self.config
        A = normalize_rows(counts, pseudocount=cfg.transition_floor)
        step = cfg.initial_step
        best = self.objective(counts, A)
        for _ in range(cfg.max_inner_iter):
            grad = counts / np.clip(A, cfg.transition_floor, None) + self.prior.gradient(A)
            candidate = normalize_rows(np.clip(A + step * grad, cfg.transition_floor, None))
            value = self.objective(counts, candidate)
            if value > best:
                improvement = value - best
                A, best = candidate, value
                step *= 1.2
                if improvement < cfg.inner_tol:
                    break
            else:
                step *= 0.5
        return A


def run_projection_ablation(
    alpha: float = 1.0,
    sigma: float = 1.0,
    n_sequences: int = 150,
    max_em_iter: int = 15,
    seed: SeedLike = 0,
) -> list[AblationRow]:
    """Compare the simplex-projection M-step against clip-and-renormalize."""
    dataset = generate_toy_dataset(n_sequences=n_sequences, sigma=sigma, seed=seed)
    corpus = compile_corpus(dataset.observations)
    rows: list[AblationRow] = []

    for name, updater_cls in (
        ("simplex-projection", DiversityTransitionUpdater),
        ("renormalize", _RenormalizingUpdater),
    ):
        config = DHMMConfig(alpha=alpha, max_em_iter=max_em_iter)
        emissions = GaussianEmission.random_init(5, dataset.observations, seed=seed)
        model = DiversifiedHMM(emissions, config, seed=seed)
        # Swap the transition updater by overriding the trainer builder.
        prior = DPPTransitionPrior(alpha=config.alpha, rho=config.rho, jitter=config.kernel_jitter)
        updater = updater_cls(prior, config)

        def build_trainer(updater=updater, config=config):
            from repro.hmm.baum_welch import BaumWelchTrainer

            return BaumWelchTrainer(
                transition_updater=updater, max_iter=config.max_em_iter, tol=config.em_tol
            )

        model.build_trainer = build_trainer  # type: ignore[method-assign]
        model.fit(corpus)
        predictions = model.predict_corpus(corpus)
        rows.append(
            AblationRow(
                name=name,
                accuracy=one_to_one_accuracy(dataset.states, predictions, n_states=5),
                diversity=average_pairwise_bhattacharyya(model.transmat_),
            )
        )
    return rows
