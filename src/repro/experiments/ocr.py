"""Supervised OCR experiments (paper Section 4.2.2: Fig. 10-12)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.hmm_classifier import SupervisedHMMClassifier
from repro.baselines.naive_bayes import BernoulliNaiveBayes
from repro.baselines.optimized_hmm import OptimizedHMMClassifier
from repro.core.config import DHMMConfig
from repro.core.supervised import SupervisedDiversifiedHMM
from repro.datasets.ocr import LETTERS, N_LETTERS, N_PIXELS, OcrDataset, generate_ocr_dataset
from repro.datasets.splits import k_fold_indices
from repro.metrics.accuracy import sequence_accuracy
from repro.metrics.diversity import row_diversity_profile
from repro.utils.rng import SeedLike


@dataclass
class OcrAlphaSweepResult:
    """Accuracy-vs-alpha series of Fig. 10."""

    alphas: np.ndarray
    accuracies: np.ndarray
    alpha_anchor: float

    @property
    def baseline_accuracy(self) -> float:
        zero_idx = int(np.argmin(np.abs(self.alphas)))
        return float(self.accuracies[zero_idx])

    @property
    def best_alpha(self) -> float:
        return float(self.alphas[int(np.argmax(self.accuracies))])

    @property
    def best_accuracy(self) -> float:
        return float(self.accuracies.max())


@dataclass
class OcrComparisonResult:
    """Fig. 11's bar chart: mean accuracy and standard deviation per classifier."""

    classifier_names: list[str]
    mean_accuracies: np.ndarray
    std_accuracies: np.ndarray

    def as_rows(self) -> list[tuple[str, float, float]]:
        return [
            (name, float(mean), float(std))
            for name, mean, std in zip(
                self.classifier_names, self.mean_accuracies, self.std_accuracies
            )
        ]


def _subset(dataset: OcrDataset, indices: np.ndarray) -> tuple[list[np.ndarray], list[np.ndarray]]:
    images = [dataset.images[i] for i in indices]
    labels = [dataset.labels[i] for i in indices]
    return images, labels


def cross_validated_accuracy(
    dataset: OcrDataset,
    build_classifier,
    n_folds: int = 10,
    seed: SeedLike = 0,
) -> tuple[float, float, np.ndarray]:
    """Mean/std test accuracy of a classifier factory under k-fold CV."""
    folds = k_fold_indices(dataset.n_words, n_folds=n_folds, seed=seed)
    accuracies = np.zeros(len(folds))
    for fold_idx, (train_idx, test_idx) in enumerate(folds):
        train_images, train_labels = _subset(dataset, train_idx)
        test_images, test_labels = _subset(dataset, test_idx)
        classifier = build_classifier()
        classifier.fit(train_images, train_labels)
        predictions = classifier.predict(test_images)
        accuracies[fold_idx] = sequence_accuracy(test_labels, predictions)
    return float(accuracies.mean()), float(accuracies.std()), accuracies


def run_ocr_alpha_sweep(
    dataset: OcrDataset | None = None,
    alphas=(0.0, 0.1, 1.0, 10.0, 100.0, 1000.0),
    alpha_anchor: float = 1e5,
    n_folds: int = 5,
    seed: SeedLike = 0,
    **dataset_kwargs,
) -> OcrAlphaSweepResult:
    """Reproduce Fig. 10: supervised OCR accuracy as a function of alpha.

    The paper fixes ``alpha_A = 1e5`` and reports the plain HMM at 0.7102
    and the best dHMM at 0.7203 with ``alpha = 10`` (10-fold CV averages).
    """
    if dataset is None:
        dataset = generate_ocr_dataset(seed=seed, **dataset_kwargs)
    alphas_arr = np.asarray(list(alphas), dtype=np.float64)
    accuracies = np.zeros(alphas_arr.size)
    for idx, alpha in enumerate(alphas_arr):
        config = DHMMConfig(alpha=float(alpha), alpha_anchor=alpha_anchor)
        mean_acc, _, _ = cross_validated_accuracy(
            dataset,
            lambda cfg=config: SupervisedDiversifiedHMM(N_LETTERS, N_PIXELS, config=cfg),
            n_folds=n_folds,
            seed=seed,
        )
        accuracies[idx] = mean_acc
    return OcrAlphaSweepResult(
        alphas=alphas_arr, accuracies=accuracies, alpha_anchor=alpha_anchor
    )


def run_ocr_classifier_comparison(
    dataset: OcrDataset | None = None,
    alpha: float = 10.0,
    alpha_anchor: float = 1e5,
    n_folds: int = 10,
    seed: SeedLike = 0,
    **dataset_kwargs,
) -> OcrComparisonResult:
    """Reproduce Fig. 11: Naive Bayes vs HMM vs Optimized HMM vs dHMM.

    The expected ordering (paper: 62.7% / 70.6% / ~71% / 72.06%) is
    Naive Bayes < HMM <= Optimized HMM < dHMM; the absolute numbers depend
    on the synthetic glyph noise level.
    """
    if dataset is None:
        dataset = generate_ocr_dataset(seed=seed, **dataset_kwargs)

    config = DHMMConfig(alpha=alpha, alpha_anchor=alpha_anchor)
    factories = [
        ("Naive Bayes", lambda: BernoulliNaiveBayes(N_LETTERS, N_PIXELS)),
        ("HMM", lambda: SupervisedHMMClassifier(N_LETTERS, N_PIXELS)),
        ("Optimized HMM", lambda: OptimizedHMMClassifier(N_LETTERS, N_PIXELS)),
        ("dHMM", lambda: SupervisedDiversifiedHMM(N_LETTERS, N_PIXELS, config=config)),
    ]
    names, means, stds = [], [], []
    for name, factory in factories:
        mean_acc, std_acc, _ = cross_validated_accuracy(
            dataset, factory, n_folds=n_folds, seed=seed
        )
        names.append(name)
        means.append(mean_acc)
        stds.append(std_acc)
    return OcrComparisonResult(
        classifier_names=names,
        mean_accuracies=np.asarray(means),
        std_accuracies=np.asarray(stds),
    )


def letter_diversity_profiles(
    dataset: OcrDataset | None = None,
    letters: tuple[str, ...] = ("x", "y"),
    alpha: float = 10.0,
    alpha_anchor: float = 1e5,
    seed: SeedLike = 0,
    **dataset_kwargs,
) -> dict[str, dict[str, np.ndarray]]:
    """Reproduce Fig. 12: transition diversity of chosen letters vs the rest.

    Trains the plain supervised HMM and the dHMM on the whole dataset and
    returns, for each requested letter, the Bhattacharyya distances between
    its transition distribution and every other letter's, under both models.
    """
    if dataset is None:
        dataset = generate_ocr_dataset(seed=seed, **dataset_kwargs)

    hmm = SupervisedHMMClassifier(N_LETTERS, N_PIXELS)
    hmm.fit(dataset.images, dataset.labels)
    dhmm = SupervisedDiversifiedHMM(
        N_LETTERS, N_PIXELS, config=DHMMConfig(alpha=alpha, alpha_anchor=alpha_anchor)
    )
    dhmm.fit(dataset.images, dataset.labels)

    profiles: dict[str, dict[str, np.ndarray]] = {}
    for letter in letters:
        idx = LETTERS.index(letter)
        profiles[letter] = {
            "hmm": row_diversity_profile(hmm.transmat_, idx),
            "dhmm": row_diversity_profile(dhmm.transmat_, idx),
        }
    return profiles
