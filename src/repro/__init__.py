"""repro — Diversified Hidden Markov Models for sequential labeling.

A from-scratch reproduction of "Diversified Hidden Markov Models for
Sequential Labeling" (Qiao, Bian, Xu & Tao): an HMM whose transition-matrix
rows carry a diversity-encouraging continuous determinantal point process
prior, trained by MAP-EM (unsupervised) or count-plus-refinement
(supervised).

Quickstart
----------
>>> from repro import DiversifiedHMM, DHMMConfig
>>> from repro.datasets import generate_toy_dataset
>>> from repro.hmm import GaussianEmission
>>> data = generate_toy_dataset(seed=0)
>>> model = DiversifiedHMM(
...     GaussianEmission.random_init(5, data.observations, seed=1),
...     DHMMConfig(alpha=1.0, max_em_iter=10),
...     seed=1,
... )
>>> _ = model.fit(data.observations)
>>> labels = model.predict(data.observations)
"""

from repro.core import (
    DHMMConfig,
    DiversifiedHMM,
    DiversityTransitionUpdater,
    DPPTransitionPrior,
    SupervisedDiversifiedHMM,
)
from repro.exceptions import (
    ConvergenceWarning,
    NotFittedError,
    ReproError,
    ValidationError,
)
from repro.hmm import (
    HMM,
    BaumWelchTrainer,
    BernoulliEmission,
    CategoricalEmission,
    GaussianEmission,
)
from repro.serving import (
    ModelRegistry,
    StreamingDecoder,
    TaggingService,
    load_model,
    save_model,
)

__version__ = "1.0.0"

__all__ = [
    "DHMMConfig",
    "DiversifiedHMM",
    "SupervisedDiversifiedHMM",
    "DPPTransitionPrior",
    "DiversityTransitionUpdater",
    "HMM",
    "BaumWelchTrainer",
    "GaussianEmission",
    "CategoricalEmission",
    "BernoulliEmission",
    "ModelRegistry",
    "TaggingService",
    "StreamingDecoder",
    "save_model",
    "load_model",
    "ReproError",
    "ValidationError",
    "NotFittedError",
    "ConvergenceWarning",
    "__version__",
]
