"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError`, so callers can
catch a single base class when they want to distinguish library failures from
programming errors in their own code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ValidationError(ReproError, ValueError):
    """Raised when user-supplied arrays or parameters are malformed."""


class NotFittedError(ReproError, RuntimeError):
    """Raised when inference is requested from a model that was never fit."""


class ServingError(ReproError, RuntimeError):
    """Base class for request-level failures in the serving subsystem."""


class QueueFullError(ServingError):
    """Raised at submit time when the serving queue is at capacity.

    The fast-fail counterpart of blocking: callers see the overload
    immediately and can retry, shed, or route elsewhere instead of piling
    onto an already saturated dispatcher.
    """


class DeadlineExceededError(ServingError):
    """Set on a request future whose deadline expired before dispatch.

    Expired requests are dropped *before* any engine work is spent on them;
    the client observes this error instead of a stale result.
    """


class ModelUnavailableError(ServingError):
    """Raised when a model's circuit breaker is open.

    After ``ServingConfig.breaker_threshold`` consecutive load/execute
    failures the router stops paying the doomed load attempt for that
    ``(name, version)`` and fast-fails requests with this error instead —
    without touching the registry — until a cooldown elapses and a
    half-open probe succeeds.  ``retry_after_s`` is the breaker's remaining
    cooldown, surfaced as the HTTP ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after_s: float | None = None) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServiceShuttingDownError(ServingError):
    """Raised when a request meets a service that is draining or closed.

    During a graceful drain the service stops intake immediately, keeps
    serving already-accepted work until the drain deadline, and resolves
    anything still pending past it with this error — clients should retry
    against another instance.
    """


class ArtifactCorruptError(ServingError):
    """Raised when a stored artifact fails its integrity check.

    Carries the payload ``path`` and the ``expected``/``actual`` SHA-256
    digests (``actual`` is ``None`` when the payload file is missing
    entirely), so operators can tell a torn copy from bit rot without
    re-hashing by hand.
    """

    def __init__(
        self,
        message: str,
        *,
        path: object = None,
        expected: str | None = None,
        actual: str | None = None,
    ) -> None:
        super().__init__(message)
        self.path = path
        self.expected = expected
        self.actual = actual


class ConvergenceWarning(UserWarning):
    """Warning emitted when an iterative solver stops before converging."""


class DimensionMismatchError(ValidationError):
    """Raised when array shapes are inconsistent with the model layout."""
