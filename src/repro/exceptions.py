"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError`, so callers can
catch a single base class when they want to distinguish library failures from
programming errors in their own code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ValidationError(ReproError, ValueError):
    """Raised when user-supplied arrays or parameters are malformed."""


class NotFittedError(ReproError, RuntimeError):
    """Raised when inference is requested from a model that was never fit."""


class ServingError(ReproError, RuntimeError):
    """Base class for request-level failures in the serving subsystem."""


class QueueFullError(ServingError):
    """Raised at submit time when the serving queue is at capacity.

    The fast-fail counterpart of blocking: callers see the overload
    immediately and can retry, shed, or route elsewhere instead of piling
    onto an already saturated dispatcher.
    """


class DeadlineExceededError(ServingError):
    """Set on a request future whose deadline expired before dispatch.

    Expired requests are dropped *before* any engine work is spent on them;
    the client observes this error instead of a stale result.
    """


class ConvergenceWarning(UserWarning):
    """Warning emitted when an iterative solver stops before converging."""


class DimensionMismatchError(ValidationError):
    """Raised when array shapes are inconsistent with the model layout."""
