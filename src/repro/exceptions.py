"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError`, so callers can
catch a single base class when they want to distinguish library failures from
programming errors in their own code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ValidationError(ReproError, ValueError):
    """Raised when user-supplied arrays or parameters are malformed."""


class NotFittedError(ReproError, RuntimeError):
    """Raised when inference is requested from a model that was never fit."""


class ConvergenceWarning(UserWarning):
    """Warning emitted when an iterative solver stops before converging."""


class DimensionMismatchError(ValidationError):
    """Raised when array shapes are inconsistent with the model layout."""
