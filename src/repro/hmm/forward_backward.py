"""Log-space forward-backward inference (the E-step of HMM/dHMM training).

The recursions follow Rabiner (1989) / the paper's Eq. (9)-(10) but are run
entirely in the log domain so that PoS sentences of length up to 250 with a
10K vocabulary remain numerically stable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DimensionMismatchError
from repro.utils.maths import logsumexp, safe_log


@dataclass
class SequencePosteriors:
    """Posterior quantities of one sequence produced by forward-backward.

    Attributes
    ----------
    gamma:
        ``(T, K)`` array of unary posteriors ``q(x_t = i)``.
    xi_sum:
        ``(K, K)`` array with the pairwise posteriors summed over time,
        ``sum_t q(x_{t-1} = i, x_t = j)`` — exactly the expected transition
        counts needed by the M-step.
    log_likelihood:
        Log marginal likelihood ``log P(y_1..T)`` of the sequence.
    """

    gamma: np.ndarray
    xi_sum: np.ndarray
    log_likelihood: float


def _validate_inputs(
    log_transmat: np.ndarray, log_obs: np.ndarray, log_startprob: np.ndarray | None = None
) -> None:
    """Shared shape validation for the forward/backward recursions.

    The number of states is keyed off the observation table; the transition
    matrix (and, when given, the start distribution) must agree with it.
    """
    if log_obs.ndim != 2:
        raise DimensionMismatchError(
            f"observation log-likelihoods must be 2-D (T, K), got shape {log_obs.shape}"
        )
    n_states = log_obs.shape[1]
    if log_transmat.shape != (n_states, n_states):
        raise DimensionMismatchError(
            f"transition matrix shape {log_transmat.shape} does not match "
            f"{n_states} states"
        )
    if log_startprob is not None and log_startprob.shape != (n_states,):
        raise DimensionMismatchError(
            f"start distribution shape {log_startprob.shape} does not match "
            f"{n_states} states"
        )


def log_forward(
    log_startprob: np.ndarray, log_transmat: np.ndarray, log_obs: np.ndarray
) -> np.ndarray:
    """Forward messages ``log alpha[t, i] = log P(y_1..t, x_t = i)``."""
    _validate_inputs(log_transmat, log_obs, log_startprob=log_startprob)
    T, n_states = log_obs.shape
    log_alpha = np.full((T, n_states), -np.inf)
    log_alpha[0] = log_startprob + log_obs[0]
    for t in range(1, T):
        log_alpha[t] = log_obs[t] + logsumexp(
            log_alpha[t - 1][:, None] + log_transmat, axis=0
        )
    return log_alpha


def log_backward(log_transmat: np.ndarray, log_obs: np.ndarray) -> np.ndarray:
    """Backward messages ``log beta[t, i] = log P(y_{t+1}..T | x_t = i)``."""
    _validate_inputs(log_transmat, log_obs)
    T, n_states = log_obs.shape
    log_beta = np.zeros((T, n_states))
    for t in range(T - 2, -1, -1):
        log_beta[t] = logsumexp(
            log_transmat + (log_obs[t + 1] + log_beta[t + 1])[None, :], axis=1
        )
    return log_beta


def sequence_log_likelihood(
    startprob: np.ndarray, transmat: np.ndarray, log_obs: np.ndarray
) -> float:
    """Log marginal likelihood of one sequence."""
    log_alpha = log_forward(safe_log(startprob), safe_log(transmat), log_obs)
    return float(logsumexp(log_alpha[-1]))


def compute_posteriors(
    startprob: np.ndarray, transmat: np.ndarray, log_obs: np.ndarray
) -> SequencePosteriors:
    """Run forward-backward and return unary/pairwise posteriors.

    Parameters
    ----------
    startprob, transmat:
        Probability-domain initial distribution and transition matrix.
    log_obs:
        ``(T, K)`` per-state observation log-likelihoods.
    """
    log_pi = safe_log(np.asarray(startprob, dtype=np.float64))
    log_A = safe_log(np.asarray(transmat, dtype=np.float64))
    return compute_posteriors_from_log(
        log_pi, log_A, np.asarray(log_obs, dtype=np.float64)
    )


def compute_posteriors_from_log(
    log_startprob: np.ndarray, log_transmat: np.ndarray, log_obs: np.ndarray
) -> SequencePosteriors:
    """Forward-backward posteriors from *log-domain* parameters.

    Identical to :func:`compute_posteriors` but takes ``log(pi)`` and
    ``log(A)`` directly, so callers that decode many sequences (e.g. the
    inference engine's log-domain reference backend) can precompute the
    logs once instead of once per sequence.
    """
    log_alpha = log_forward(log_startprob, log_transmat, log_obs)
    log_beta = log_backward(log_transmat, log_obs)
    log_likelihood = float(logsumexp(log_alpha[-1]))

    log_gamma = log_alpha + log_beta - log_likelihood
    gamma = np.exp(log_gamma)
    gamma /= np.maximum(gamma.sum(axis=1, keepdims=True), 1e-300)

    T, n_states = log_obs.shape
    xi_sum = np.zeros((n_states, n_states))
    for t in range(1, T):
        log_xi = (
            log_alpha[t - 1][:, None]
            + log_transmat
            + (log_obs[t] + log_beta[t])[None, :]
            - log_likelihood
        )
        xi = np.exp(log_xi)
        total = xi.sum()
        if total > 0:
            xi /= total
        xi_sum += xi

    return SequencePosteriors(gamma=gamma, xi_sum=xi_sum, log_likelihood=log_likelihood)
