"""Compiled corpus: encode a dataset once, reuse it across every EM iteration.

Training hammers the same corpus over and over: every EM iteration re-scores
the same observations, re-buckets the same lengths, re-pads the same index
structure and then walks the sequences in Python to accumulate statistics.
None of that structure changes between iterations — only the model
parameters do.  :class:`CompiledCorpus` hoists all of it out of the loop:

* the observations are concatenated into one flat token array (``concat``),
  so emission scoring is a single vectorized call per iteration — one
  ``(K, V)`` log-table lookup for categorical emissions, one matmul pair for
  Bernoulli;
* the sequences are assigned to padded length-buckets once, and each bucket
  stores a ``(B, L_max)`` *position tensor* indexing into the concatenated
  array (padding points at a sentinel row), so materializing a bucket's
  ``(B, L_max, K)`` emission tensor is one fancy-index — no per-sequence
  Python, no re-padding;
* the same position tensors serve as scatter maps on the way back: bucket
  level posteriors are written into a concatenated ``(N, K)`` ``gamma``
  array with one fancy-index assignment per bucket, which is exactly the
  layout the vectorized emission M-steps (bincount / matmul over the flat
  corpus) consume.

The compiled structure is emission-agnostic (it stores the raw observation
arrays) and model-agnostic (no probabilities are baked in), so one compile
serves every EM iteration, every restart of an ablation grid, and every
batched decode over the same dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.exceptions import DimensionMismatchError, ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hmm.emissions.base import EmissionModel


def bucket_indices(lengths: Sequence[int], bucket_size: int) -> list[np.ndarray]:
    """Group sequence indices into padded length-buckets.

    Sequences are sorted by length (stable) and chunked into groups of at
    most ``bucket_size``, so each bucket holds sequences of similar length
    and the padding waste of processing the bucket as one dense
    ``(B, L_max, K)`` tensor stays small.

    Returns
    -------
    list of integer arrays, each an index set into the original ordering.
    """
    if bucket_size < 1:
        raise ValueError(f"bucket_size must be positive, got {bucket_size}")
    order = np.argsort(np.asarray(lengths), kind="stable")
    return [order[i : i + bucket_size] for i in range(0, order.size, bucket_size)]


@dataclass(frozen=True)
class LongSequenceWindows:
    """Window-decode plan for one long sequence of a :class:`CompiledCorpus`.

    Sequences longer than the corpus' ``long_threshold`` are kept out of
    the padded length-buckets — one ``(1, T, K)`` bucket row would both
    serialize the recursion and materialize O(T * K) tensors — and instead
    carry this plan: the inference backends route them through the chunked
    long-sequence kernels (:mod:`repro.hmm.longseq`) over a view of the
    corpus score table.

    Attributes
    ----------
    seq_index:
        Index of the sequence in the corpus ordering.
    offset / length:
        The sequence's slice ``[offset, offset + length)`` of the
        concatenated token array (and of the corpus score table).
    window / overlap:
        Chunked-decode knobs frozen at compile time (from
        :class:`~repro.core.config.InferenceConfig` by default).
    """

    seq_index: int
    offset: int
    length: int
    window: int
    overlap: int

    @property
    def n_windows(self) -> int:
        """Number of decode windows the plan produces."""
        from repro.hmm.longseq import plan_windows

        return len(plan_windows(self.length, self.window, self.overlap))


@dataclass(frozen=True)
class CorpusBucket:
    """One padded length-bucket of a :class:`CompiledCorpus`.

    Attributes
    ----------
    idx:
        ``(B,)`` sequence indices (into the corpus ordering) of the bucket.
    lengths:
        ``(B,)`` sequence lengths, aligned with ``idx``.
    positions:
        ``(B, L_max)`` int64 indices into the concatenated token array;
        padded slots hold ``n_tokens`` (the sentinel row appended by
        :meth:`CompiledCorpus.score`).  Used both to *gather* padded
        emission tensors and to *scatter* bucket posteriors back into the
        flat ``(N, K)`` layout.
    """

    idx: np.ndarray
    lengths: np.ndarray
    positions: np.ndarray

    @property
    def max_len(self) -> int:
        return self.positions.shape[1]


class CompiledCorpus:
    """One-time encoding of a sequence dataset for repeated batched inference.

    Parameters
    ----------
    sequences:
        Observation sequences (1-D for categorical/Gaussian emissions, 2-D
        ``(T, D)`` for Bernoulli).  All sequences must share dimensionality.
    bucket_size:
        Maximum number of sequences per padded length-bucket; align it with
        the inference backend's ``bucket_size``
        (:meth:`repro.hmm.engine.InferenceEngine.compile` does).
    long_threshold:
        Sequences longer than this stay out of the padded buckets and are
        compiled into :class:`LongSequenceWindows` plans instead (see
        ``long_windows``); ``None`` (the default for direct construction)
        disables long-sequence routing.  :func:`compile_corpus` and the
        engine fill it from :class:`~repro.core.config.InferenceConfig`.
    decode_window / decode_overlap:
        Window plan knobs recorded on each long sequence's plan; default to
        4096 / 256 when ``long_threshold`` is set without them.
    """

    def __init__(
        self,
        sequences: Sequence[np.ndarray],
        bucket_size: int = 64,
        long_threshold: int | None = None,
        decode_window: int | None = None,
        decode_overlap: int | None = None,
    ) -> None:
        if bucket_size < 1:
            raise ValidationError(f"bucket_size must be positive, got {bucket_size}")
        if decode_window is None:
            decode_window = 4096
        if decode_overlap is None:
            decode_overlap = 256
        if decode_window < 2 * decode_overlap:
            raise ValidationError(
                f"decode_window must be at least 2 * decode_overlap "
                f"({2 * decode_overlap}), got {decode_window}"
            )
        if long_threshold is not None and long_threshold < decode_window:
            raise ValidationError(
                f"long_threshold must be at least decode_window "
                f"({decode_window}), got {long_threshold}"
            )
        arrays = [np.asarray(seq) for seq in sequences]
        if not arrays:
            raise ValidationError("cannot compile an empty corpus")
        first = arrays[0]
        for arr in arrays:
            if arr.ndim != first.ndim or arr.shape[1:] != first.shape[1:]:
                raise DimensionMismatchError(
                    f"all sequences must share dimensionality; got shapes "
                    f"{first.shape} and {arr.shape}"
                )
            if arr.shape[0] < 1:
                raise ValidationError("sequences must have at least one timestep")
        self.sequences = arrays
        self.bucket_size = int(bucket_size)
        self.lengths = np.array([a.shape[0] for a in arrays], dtype=np.int64)
        self.offsets = np.zeros(len(arrays) + 1, dtype=np.int64)
        np.cumsum(self.lengths, out=self.offsets[1:])
        self.concat = np.concatenate(arrays, axis=0) if len(arrays) > 1 else arrays[0]
        self.long_threshold = long_threshold
        self.decode_window = int(decode_window)
        self.decode_overlap = int(decode_overlap)
        # Long sequences (length > long_threshold) bypass the padded
        # buckets entirely: they compile into window-decode plans the
        # backends route through the chunked long-sequence kernels.
        self.long_windows: list[LongSequenceWindows] = []
        if long_threshold is not None:
            long_mask = self.lengths > long_threshold
            for j in np.flatnonzero(long_mask):
                self.long_windows.append(
                    LongSequenceWindows(
                        seq_index=int(j),
                        offset=int(self.offsets[j]),
                        length=int(self.lengths[j]),
                        window=self.decode_window,
                        overlap=self.decode_overlap,
                    )
                )
            short_idx = np.flatnonzero(~long_mask)
        else:
            short_idx = np.arange(len(arrays), dtype=np.int64)
        self.buckets: list[CorpusBucket] = []
        for sub in bucket_indices(self.lengths[short_idx], self.bucket_size):
            idx = short_idx[sub]
            blens = self.lengths[idx]
            max_len = int(blens.max())
            span = np.arange(max_len, dtype=np.int64)
            positions = np.where(
                span[None, :] < blens[:, None],
                self.offsets[idx][:, None] + span[None, :],
                self.n_tokens,
            )
            self.buckets.append(
                CorpusBucket(idx=idx, lengths=blens, positions=positions)
            )

    # -------------------------------------------------------------- #
    @property
    def n_sequences(self) -> int:
        """Number of sequences in the corpus."""
        return len(self.sequences)

    @property
    def n_tokens(self) -> int:
        """Total number of timesteps across all sequences."""
        return int(self.offsets[-1])

    # -------------------------------------------------------------- #
    def score(self, emissions: "EmissionModel") -> np.ndarray:  # repro: hot-path
        """Emission log-likelihoods of the whole corpus, ready to gather.

        Returns an ``(n_tokens + 1, K)`` table: the concatenated corpus is
        scored with one vectorized call
        (:meth:`~repro.hmm.emissions.base.EmissionModel.log_likelihoods_concat`)
        and a zero sentinel row is appended so padded bucket positions
        gather finite zeros — exactly the padding the bucket kernels were
        written against.
        """
        return self.extend_scores(emissions.log_likelihoods_concat(self.concat))

    def extend_scores(self, scores: np.ndarray) -> np.ndarray:  # repro: hot-path
        """Append the padding sentinel row to a custom ``(n_tokens, K)`` table.

        For callers that derive their own corpus-level emission scores
        (e.g. baselines re-weighting log-likelihoods before decoding)
        instead of going through :meth:`score`.
        """
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim != 2 or scores.shape[0] != self.n_tokens:
            raise DimensionMismatchError(
                f"corpus score table must have shape ({self.n_tokens}, K), "
                f"got {scores.shape}"
            )
        ext = np.empty((self.n_tokens + 1, scores.shape[1]))
        ext[:-1] = scores
        ext[-1] = 0.0
        return ext

    def gather(
        self, scores_ext: np.ndarray, bucket: CorpusBucket
    ) -> np.ndarray:  # repro: hot-path
        """Padded ``(B, L_max, K)`` emission tensor of one bucket (one fancy-index)."""
        return scores_ext[bucket.positions]

    def split(self, concat_values: np.ndarray) -> list[np.ndarray]:
        """Split a ``(n_tokens, ...)`` array into per-sequence views."""
        return np.split(concat_values, self.offsets[1:-1])

    def tables(self, scores_ext: np.ndarray) -> list[np.ndarray]:
        """Per-sequence ``(T, K)`` emission tables (views into ``scores_ext``)."""
        return self.split(scores_ext[:-1])

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"CompiledCorpus(n_sequences={self.n_sequences}, "
            f"n_tokens={self.n_tokens}, n_buckets={len(self.buckets)}, "
            f"n_long={len(self.long_windows)})"
        )


def compile_corpus(
    sequences: Sequence[np.ndarray],
    bucket_size: int | None = None,
    long_threshold: int | None = None,
) -> CompiledCorpus:
    """Compile a dataset using the process-wide inference configuration.

    Convenience for callers without an engine at hand (experiment drivers,
    scripts): the bucket size, long-sequence threshold and window/overlap
    knobs default to :class:`repro.core.config.InferenceConfig`, so the
    compiled buckets (and long-sequence window plans) line up with whatever
    engine the models will build lazily.
    """
    # Imported lazily; core.config's validation imports the hmm layer.
    from repro.core.config import get_inference_config

    config = get_inference_config()
    if bucket_size is None:
        bucket_size = config.bucket_size
    if long_threshold is None:
        long_threshold = config.long_threshold
    return CompiledCorpus(
        sequences,
        bucket_size=bucket_size,
        long_threshold=long_threshold,
        decode_window=config.decode_window,
        decode_overlap=config.decode_overlap,
    )


@dataclass
class CorpusPosteriors:
    """Corpus-level sufficient statistics of one forward-backward pass.

    Unlike the per-sequence :class:`~repro.hmm.forward_backward.SequencePosteriors`
    list, everything here is already stacked/accumulated in the layout the
    M-step consumes, so trainer-side accumulation loops disappear.

    Attributes
    ----------
    gamma_concat:
        ``(n_tokens, K)`` unary posteriors in concatenated token order
        (``corpus.split`` recovers the per-sequence arrays).
    start_counts:
        ``(K,)`` sum of ``gamma[0]`` over all sequences — the ``pi`` M-step
        numerator.
    xi_sum:
        ``(K, K)`` expected transition counts summed over all sequences —
        the transition M-step input.
    log_likelihoods:
        ``(n_sequences,)`` per-sequence log marginal likelihoods.
    """

    gamma_concat: np.ndarray
    start_counts: np.ndarray
    xi_sum: np.ndarray
    log_likelihoods: np.ndarray

    @property
    def log_likelihood(self) -> float:
        """Total corpus log-likelihood."""
        return float(self.log_likelihoods.sum())
