"""Inference backends: batched scaled-domain and per-sequence log-domain.

The engine (:mod:`repro.hmm.engine`) delegates all forward-backward, Viterbi
and likelihood computations to an :class:`InferenceBackend`.  Two backends
are provided:

* :class:`ScaledBatchedBackend` — the default.  Runs the forward-backward
  recursions in the probability domain with Rabiner's per-timestep scaling,
  so no ``logsumexp`` appears in any inner loop, and batches sequences into
  padded length-buckets so every timestep is a single ``(B, K) @ (K, K)``
  matmul over the whole bucket.  The pairwise posteriors ``xi_sum`` are
  accumulated with one matmul per sequence instead of a Python loop over
  ``T``.  Viterbi decoding runs batched in the *log* domain (its recursion
  is max-only, so no scaling is needed) through a fused kernel that is
  bit-identical to the reference — see :meth:`_viterbi_bucket`.  Both
  paths also expose compiled-corpus entry points
  (``forward_backward_corpus`` / ``viterbi_corpus`` /
  ``log_likelihood_corpus``) that consume a
  :class:`~repro.hmm.corpus.CompiledCorpus`'s precomputed bucket/index
  structure instead of re-packing per call and return corpus-level stacked
  statistics.
* :class:`LogDomainBackend` — the original per-sequence log-space
  recursions, kept as a bit-identical reference so equivalence of the
  scaled engine is testable (see ``tests/test_hmm_engine.py``).

Scaling scheme
--------------
For each timestep the per-state observation log-likelihoods are shifted by
their row maximum ``m_t = max_i log b_i(y_t)`` before exponentiation, so the
probability-domain observation weights lie in ``[0, 1]``.  The forward
messages are renormalized to sum to one after every step; the normalizers
``c_t`` (together with the shifts ``m_t``) recover the exact log marginal
likelihood as ``sum_t (log c_t + m_t)``.  The backward messages reuse the
same ``c_t``, which makes ``gamma_t = alpha_hat_t * beta_hat_t`` and

    xi_t[i, j] = alpha_hat_{t-1}[i] * A[i, j] * obs_t[j] * beta_hat_t[j] / c_t

exactly normalized — identical (up to rounding) to the log-domain reference.
"""

from __future__ import annotations

import abc
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence, TypeVar

import numpy as np

from repro.exceptions import DimensionMismatchError, ValidationError
from repro.hmm.corpus import (
    CompiledCorpus,
    CorpusBucket,
    CorpusPosteriors,
    bucket_indices,
)
from repro.hmm.forward_backward import (
    SequencePosteriors,
    compute_posteriors_from_log,
    log_forward,
)
from repro.hmm.longseq import (
    ArraySource,
    LongDecodeResult,
    checkpointed_posteriors,
    chunked_viterbi,
    streaming_log_likelihood,
)
from repro.hmm.viterbi import viterbi_decode_from_log
from repro.utils.maths import logsumexp, safe_log

__all__ = [  # noqa: F822 - bucket_indices is re-exported for backward compat
    "InferenceBackend",
    "ScaledBatchedBackend",
    "LogDomainBackend",
    "StreamingSession",
    "BatchedStreamingSession",
    "StreamStep",
    "available_backends",
    "build_backend",
    "bucket_indices",
    "viterbi_backpointer_dtype",
]

_T = TypeVar("_T")

#: Smallest admissible scaling constant; prevents division by zero when an
#: entire forward message underflows (mirrors ``LOG_EPS`` of the reference).
_TINY = 1e-300


def viterbi_backpointer_dtype(n_states: int) -> np.dtype:
    """Smallest unsigned integer dtype that can index ``n_states`` states.

    Viterbi backpointer tensors have shape ``(B, L_max, K)``; storing them
    as int64 wastes 8 bytes per entry when the state space is tiny (the
    paper's workloads have K <= 45).  uint8 covers K <= 256, uint16 covers
    K <= 65536; beyond that the int64 of the reference implementation is
    kept.
    """
    if n_states < 1:
        raise ValidationError(f"n_states must be positive, got {n_states}")
    if n_states - 1 <= np.iinfo(np.uint8).max:
        return np.dtype(np.uint8)
    if n_states - 1 <= np.iinfo(np.uint16).max:
        return np.dtype(np.uint16)
    return np.dtype(np.int64)


class InferenceBackend(abc.ABC):
    """Strategy object performing batched HMM inference primitives.

    All methods take probability-domain parameters plus *precomputed*
    log-likelihood tables (one ``(T_n, K)`` array per sequence) and return
    per-sequence results in the original input order.  The caller (the
    engine) is responsible for computing the emission tables once and for
    caching derived parameters such as ``log(A)``.
    """

    name: str = "abstract"

    #: Whether the backend consumes the engine's cached ``log(pi)``/``log(A)``
    #: (passed via the ``log_startprob``/``log_transmat`` keywords).  Backends
    #: that work in the probability domain leave this False so the engine
    #: never derives logs it would not use.
    wants_log_params: bool = False

    @abc.abstractmethod
    def forward_backward(
        self,
        startprob: np.ndarray,
        transmat: np.ndarray,
        log_obs_seqs: Sequence[np.ndarray],
        log_startprob: np.ndarray | None = None,
        log_transmat: np.ndarray | None = None,
    ) -> list[SequencePosteriors]:
        """Posterior statistics (gamma, xi_sum, log-likelihood) per sequence."""

    @abc.abstractmethod
    def viterbi(
        self,
        startprob: np.ndarray,
        transmat: np.ndarray,
        log_obs_seqs: Sequence[np.ndarray],
        log_startprob: np.ndarray | None = None,
        log_transmat: np.ndarray | None = None,
    ) -> list[tuple[np.ndarray, float]]:
        """Most likely state path and joint log-probability per sequence."""

    @abc.abstractmethod
    def log_likelihood(
        self,
        startprob: np.ndarray,
        transmat: np.ndarray,
        log_obs_seqs: Sequence[np.ndarray],
        log_startprob: np.ndarray | None = None,
        log_transmat: np.ndarray | None = None,
    ) -> np.ndarray:
        """Log marginal likelihood of every sequence (1-D array)."""

    # -------------------------------------------------------------- #
    # Compiled-corpus entry points
    # -------------------------------------------------------------- #
    # The generic implementations split the corpus-level score table into
    # per-sequence views and delegate to the per-sequence methods, then
    # re-assemble corpus-level statistics.  They define the reference
    # semantics; backends with native bucket kernels (the scaled backend)
    # override them with zero-per-sequence-Python versions.

    @staticmethod
    def _check_corpus_table(
        startprob: np.ndarray, corpus: CompiledCorpus, scores_ext: np.ndarray
    ) -> None:
        """Reject score tables missing the sentinel pad row.

        An un-extended ``(n_tokens, K)`` table would silently shift every
        split boundary and truncate the last sequence; insist on the
        ``(n_tokens + 1, K)`` shape that :meth:`CompiledCorpus.score` /
        :meth:`CompiledCorpus.extend_scores` produce.
        """
        expected = (corpus.n_tokens + 1, np.asarray(startprob).shape[0])
        if np.asarray(scores_ext).shape != expected:
            raise DimensionMismatchError(
                f"corpus score table must have shape {expected} "
                f"(CompiledCorpus.score output), got {np.asarray(scores_ext).shape}"
            )

    def forward_backward_corpus(
        self,
        startprob: np.ndarray,
        transmat: np.ndarray,
        corpus: CompiledCorpus,
        scores_ext: np.ndarray,
        log_startprob: np.ndarray | None = None,
        log_transmat: np.ndarray | None = None,
    ) -> CorpusPosteriors:
        """Stacked posterior statistics over a whole compiled corpus."""
        self._check_corpus_table(startprob, corpus, scores_ext)
        results = self.forward_backward(
            startprob,
            transmat,
            corpus.tables(scores_ext),
            log_startprob=log_startprob,
            log_transmat=log_transmat,
        )
        n_states = np.asarray(startprob).shape[0]
        gamma_concat = (
            np.concatenate([r.gamma for r in results], axis=0)
            if len(results) > 1
            else results[0].gamma
        )
        start_counts = np.zeros(n_states)
        xi_sum = np.zeros((n_states, n_states))
        for r in results:
            start_counts += r.gamma[0]
            xi_sum += r.xi_sum
        return CorpusPosteriors(
            gamma_concat=gamma_concat,
            start_counts=start_counts,
            xi_sum=xi_sum,
            log_likelihoods=np.array([r.log_likelihood for r in results]),
        )

    def viterbi_corpus(
        self,
        startprob: np.ndarray,
        transmat: np.ndarray,
        corpus: CompiledCorpus,
        scores_ext: np.ndarray,
        log_startprob: np.ndarray | None = None,
        log_transmat: np.ndarray | None = None,
    ) -> list[tuple[np.ndarray, float]]:
        """Most likely path and joint log-probability per corpus sequence."""
        self._check_corpus_table(startprob, corpus, scores_ext)
        return self.viterbi(
            startprob,
            transmat,
            corpus.tables(scores_ext),
            log_startprob=log_startprob,
            log_transmat=log_transmat,
        )

    def log_likelihood_corpus(
        self,
        startprob: np.ndarray,
        transmat: np.ndarray,
        corpus: CompiledCorpus,
        scores_ext: np.ndarray,
        log_startprob: np.ndarray | None = None,
        log_transmat: np.ndarray | None = None,
    ) -> np.ndarray:
        """Log marginal likelihood of every corpus sequence (1-D array)."""
        self._check_corpus_table(startprob, corpus, scores_ext)
        return self.log_likelihood(
            startprob,
            transmat,
            corpus.tables(scores_ext),
            log_startprob=log_startprob,
            log_transmat=log_transmat,
        )

    # -------------------------------------------------------------- #
    # Long-sequence (chunked) decoding
    # -------------------------------------------------------------- #
    def viterbi_long(
        self,
        startprob: np.ndarray,
        transmat: np.ndarray,
        source,
        *,
        window: int,
        overlap: int,
        group_size: int = 64,
        log_startprob: np.ndarray | None = None,
        log_transmat: np.ndarray | None = None,
    ) -> LongDecodeResult:
        """Chunked Viterbi over a long sequence (see :func:`chunked_viterbi`).

        The generic implementation batches each group of windows through
        :meth:`viterbi`; backends with a native bucket kernel override it
        to feed the padded window tensor to the kernel directly, skipping
        the per-window repack.
        """
        startprob = np.asarray(startprob, dtype=np.float64)
        transmat = np.asarray(transmat, dtype=np.float64)
        _check_params(startprob, transmat)
        if log_startprob is None:
            log_startprob = safe_log(startprob)
        if log_transmat is None:
            log_transmat = safe_log(transmat)

        def decode_bucket(start_log, padded, lengths):
            return self.viterbi(
                startprob,
                transmat,
                list(padded),
                log_startprob=start_log,
                log_transmat=log_transmat,
            )

        return chunked_viterbi(
            log_startprob,
            log_transmat,
            source,
            window=window,
            overlap=overlap,
            group_size=group_size,
            decode_bucket=decode_bucket,
        )


def _check_params(startprob: np.ndarray, transmat: np.ndarray) -> None:
    if startprob.ndim != 1:
        raise DimensionMismatchError(
            f"start distribution must be 1-D, got shape {startprob.shape}"
        )
    n_states = startprob.shape[0]
    if transmat.shape != (n_states, n_states):
        raise DimensionMismatchError(
            f"transition matrix shape {transmat.shape} does not match "
            f"{n_states} states"
        )


def _check_tables(n_states: int, log_obs_seqs: Sequence[np.ndarray]) -> None:
    for log_obs in log_obs_seqs:
        if log_obs.ndim != 2 or log_obs.shape[1] != n_states:
            raise DimensionMismatchError(
                f"observation log-likelihoods must have shape (T, {n_states}), "
                f"got {log_obs.shape}"
            )
        if log_obs.shape[0] < 1:
            raise DimensionMismatchError("sequences must have at least one timestep")


class ScaledBatchedBackend(InferenceBackend):
    """Rabiner-scaled probability-domain recursions over padded buckets.

    Parameters
    ----------
    bucket_size:
        Maximum number of sequences processed together in one padded
        ``(B, L_max, K)`` tensor.  Sequences are sorted by length first, so
        buckets are nearly rectangular.
    n_workers:
        Number of threads mapping bucket kernels over the buckets of one
        call.  The default of 1 keeps everything on the calling thread;
        values above 1 opt in to a thread pool (numpy releases the GIL
        inside the matmul-heavy kernels, so large multi-bucket corpora can
        overlap).  Set process-wide via
        :attr:`repro.core.config.InferenceConfig.n_workers`.
    """

    name = "scaled"
    #: The Viterbi kernel runs in the log domain (max-only recursions need
    #: no scaling), so the engine's cached ``log(pi)`` / ``log(A)`` are
    #: consumed when available; the forward-backward path ignores them.
    wants_log_params = True

    def __init__(self, bucket_size: int = 64, n_workers: int = 1) -> None:
        if bucket_size < 1:
            raise ValueError(f"bucket_size must be positive, got {bucket_size}")
        if n_workers < 1:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        self.bucket_size = bucket_size
        self.n_workers = n_workers
        #: dtype of the most recent Viterbi backpointer allocation;
        #: introspection hook for the benchmark's memory-footprint gate.
        self.last_backpointer_dtype: np.dtype | None = None

    def _map_buckets(
        self, fn: Callable[[CorpusBucket], _T], buckets: Sequence[CorpusBucket]
    ) -> list[_T]:
        """Run one kernel per bucket, on a thread pool when opted in.

        Kernels are pure functions of their bucket (all mutation of shared
        accumulators happens on the calling thread afterwards), so threading
        is safe; it only pays off when there are several buckets of real
        work, hence the sequential default.
        """
        if self.n_workers > 1 and len(buckets) > 1:
            with ThreadPoolExecutor(
                max_workers=min(self.n_workers, len(buckets))
            ) as pool:
                return list(pool.map(fn, buckets))
        return [fn(bucket) for bucket in buckets]

    # -------------------------------------------------------------- #
    # Packing helpers
    # -------------------------------------------------------------- #
    def _pack(
        self, log_obs_seqs: Sequence[np.ndarray], idx: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stack the selected sequences into a zero-padded ``(B, L, K)`` tensor."""
        lengths = np.array([log_obs_seqs[j].shape[0] for j in idx], dtype=np.int64)
        n_states = log_obs_seqs[idx[0]].shape[1]
        padded = np.zeros((idx.size, int(lengths.max()), n_states))
        for row, j in enumerate(idx):
            padded[row, : lengths[row]] = log_obs_seqs[j]
        return padded, lengths

    @staticmethod
    def _obs_weights(log_b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-timestep max-shifted observation weights ``exp(log_b - m)``."""
        shift = np.max(log_b, axis=2)
        shift = np.where(np.isfinite(shift), shift, 0.0)
        return np.exp(log_b - shift[:, :, None]), shift

    # -------------------------------------------------------------- #
    # Bucket kernels
    # -------------------------------------------------------------- #
    def _forward_bucket(  # repro: hot-path
        self,
        startprob: np.ndarray,
        transmat: np.ndarray,
        log_b: np.ndarray,
        lengths: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Scaled forward pass over one padded bucket.

        Returns ``(alpha_hat, c, obs, shift, log_likelihoods, underflow)``
        where ``alpha_hat[b, t]`` is the normalized forward message,
        ``c[b, t]`` its normalizer (1 in the padded region), ``obs``/``shift``
        the max-shifted observation weights, and ``underflow`` a boolean mask
        of sequences whose forward message vanished in the probability
        domain (their ``log_likelihoods`` entries are unreliable and must be
        recomputed with the log-domain reference).
        """
        batch, max_len, _ = log_b.shape
        obs, shift = self._obs_weights(log_b)

        alpha_hat = np.empty_like(obs)
        scale = np.ones((batch, max_len))

        alpha = startprob[None, :] * obs[:, 0]
        raw = alpha.sum(axis=1)
        # A forward message summing to exactly zero means the probability
        # domain underflowed (either a genuinely impossible sequence or an
        # extreme >700-nat spread only the log domain can represent).  Such
        # sequences are flagged and recomputed with the log-domain reference
        # recursions, so the scaled backend never misreports them.
        underflow = raw < _TINY
        c0 = np.maximum(raw, _TINY)
        alpha = alpha / c0[:, None]
        alpha_hat[:, 0] = alpha
        scale[:, 0] = c0

        for t in range(1, max_len):  # repro: loop-ok[inherent time recursion]
            active = t < lengths
            propagated = (alpha @ transmat) * obs[:, t]
            raw = propagated.sum(axis=1)
            underflow |= active & (raw < _TINY)
            c_t = np.where(active, np.maximum(raw, _TINY), 1.0)
            alpha = np.where(active[:, None], propagated / c_t[:, None], alpha)
            alpha_hat[:, t] = alpha
            scale[:, t] = c_t

        mask = np.arange(max_len)[None, :] < lengths[:, None]
        log_likelihoods = (
            np.log(scale)  # repro: ignore[hot-path-unguarded-log] -- scale is clamped to _TINY by the recursion above
            + np.where(mask, shift, 0.0)
        ).sum(axis=1)
        return alpha_hat, scale, obs, shift, log_likelihoods, underflow

    def _posterior_bucket_arrays(  # repro: hot-path
        self,
        startprob: np.ndarray,
        transmat: np.ndarray,
        log_b: np.ndarray,
        lengths: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Shared forward-backward pass over one padded bucket.

        Returns ``(alpha_hat, gamma, xi_weight, log_likelihoods, underflow)``;
        per-sequence and corpus-level assemblies build on the same arrays.
        """
        batch, max_len, n_states = log_b.shape
        alpha_hat, scale, obs, _, log_likelihoods, underflow = self._forward_bucket(
            startprob, transmat, log_b, lengths
        )

        # Underflowed rows are recomputed by the log-domain reference later;
        # their pass through here can legitimately overflow (scale clamped to
        # _TINY), so silence the spurious warnings in that case only.
        errstate = (
            {"over": "ignore", "invalid": "ignore", "divide": "ignore"}
            if underflow.any()
            else {}
        )
        with np.errstate(**errstate):
            beta_hat = np.empty_like(obs)
            beta = np.ones((batch, n_states))
            beta_hat[:, max_len - 1] = beta
            for t in range(max_len - 2, -1, -1):  # repro: loop-ok[inherent backward time recursion]
                update = (t + 1) < lengths
                weighted = obs[:, t + 1] * beta
                propagated = (weighted @ transmat.T) / scale[:, t + 1, None]
                beta = np.where(update[:, None], propagated, beta)
                beta_hat[:, t] = beta

            gamma = alpha_hat * beta_hat
            gamma /= np.maximum(gamma.sum(axis=2, keepdims=True), _TINY)
            # xi weight w[b, t, j] = obs * beta_hat / c_t; xi_sum is then a
            # single (K, T-1) @ (T-1, K) matmul per sequence, elementwise-
            # scaled by A.
            xi_weight = obs * beta_hat / scale[:, :, None]
        return alpha_hat, gamma, xi_weight, log_likelihoods, underflow

    def _forward_backward_bucket(  # repro: hot-path
        self,
        startprob: np.ndarray,
        transmat: np.ndarray,
        log_b: np.ndarray,
        lengths: np.ndarray,
    ) -> list[SequencePosteriors]:
        batch, _, n_states = log_b.shape
        alpha_hat, gamma, xi_weight, log_likelihoods, underflow = (
            self._posterior_bucket_arrays(startprob, transmat, log_b, lengths)
        )

        results: list[SequencePosteriors] = []
        for b in range(batch):  # repro: loop-ok[ragged per-sequence xi assembly]
            length = int(lengths[b])
            if length > 1:
                xi_sum = transmat * (
                    alpha_hat[b, : length - 1].T @ xi_weight[b, 1:length]
                )
            else:
                xi_sum = np.zeros((n_states, n_states))
            results.append(
                SequencePosteriors(
                    gamma=gamma[b, :length].copy(),
                    xi_sum=xi_sum,
                    log_likelihood=float(log_likelihoods[b]),
                )
            )
        if underflow.any():
            log_pi, log_A = safe_log(startprob), safe_log(transmat)
            for b in np.flatnonzero(underflow):  # repro: loop-ok[rare underflow repair]
                results[b] = compute_posteriors_from_log(
                    log_pi, log_A, log_b[b, : lengths[b]]
                )
        return results

    def _fb_corpus_bucket(  # repro: hot-path
        self,
        startprob: np.ndarray,
        transmat: np.ndarray,
        log_b: np.ndarray,
        lengths: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Corpus-flavoured forward-backward over one padded bucket.

        Returns ``(gamma, xi_part, start_part, log_likelihoods)`` where
        ``gamma`` is the padded ``(B, L, K)`` posterior tensor (ready to
        scatter through the bucket's position map) and ``xi_part`` /
        ``start_part`` are the bucket's contributions to the corpus-level
        transition and start statistics — computed with two stacked matmuls
        instead of a Python loop over the bucket's sequences.  Underflowed
        rows are repaired in place with the log-domain reference.
        """
        batch, max_len, n_states = log_b.shape
        alpha_hat, gamma, xi_weight, log_likelihoods, underflow = (
            self._posterior_bucket_arrays(startprob, transmat, log_b, lengths)
        )

        ok = ~underflow
        if max_len > 1:
            # Mask invalid (padded / underflowed) timestep pairs by
            # *assignment*, not multiplication: an underflowed row can hold
            # inf in xi_weight, and inf * 0 would poison the shared matmul
            # with NaN.
            valid = np.arange(1, max_len)[None, :] < lengths[:, None]
            pair_ok = (valid & ok[:, None])[:, :, None]
            a = np.where(pair_ok, alpha_hat[:, :-1, :], 0.0)
            w = np.where(pair_ok, xi_weight[:, 1:, :], 0.0)
            xi_part = transmat * (
                a.reshape(-1, n_states).T @ w.reshape(-1, n_states)
            )
        else:
            xi_part = np.zeros((n_states, n_states))
        start_part = (
            gamma[ok, 0, :].sum(axis=0) if ok.any() else np.zeros(n_states)
        )

        if underflow.any():
            log_pi, log_A = safe_log(startprob), safe_log(transmat)
            for b in np.flatnonzero(underflow):  # repro: loop-ok[rare underflow repair]
                length = int(lengths[b])
                ref = compute_posteriors_from_log(log_pi, log_A, log_b[b, :length])
                gamma[b, :length] = ref.gamma
                xi_part += ref.xi_sum
                start_part = start_part + ref.gamma[0]
                log_likelihoods[b] = ref.log_likelihood
        return gamma, xi_part, start_part, log_likelihoods

    # -------------------------------------------------------------- #
    # Compiled-corpus kernels (zero per-sequence Python on the hot path)
    # -------------------------------------------------------------- #
    def _check_corpus(
        self, startprob: np.ndarray, transmat: np.ndarray,
        corpus: CompiledCorpus, scores_ext: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        startprob = np.asarray(startprob, dtype=np.float64)
        transmat = np.asarray(transmat, dtype=np.float64)
        _check_params(startprob, transmat)
        scores_ext = np.asarray(scores_ext, dtype=np.float64)
        self._check_corpus_table(startprob, corpus, scores_ext)
        return startprob, transmat, scores_ext

    def forward_backward_corpus(
        self, startprob, transmat, corpus, scores_ext,
        log_startprob=None, log_transmat=None,
    ) -> CorpusPosteriors:
        startprob, transmat, scores_ext = self._check_corpus(
            startprob, transmat, corpus, scores_ext
        )
        n_states = startprob.shape[0]
        # One sentinel row absorbs every padded scatter position.
        gamma_ext = np.empty((corpus.n_tokens + 1, n_states))
        start_counts = np.zeros(n_states)
        xi_sum = np.zeros((n_states, n_states))
        lls = np.empty(corpus.n_sequences)

        def run(bucket: CorpusBucket):
            return self._fb_corpus_bucket(
                startprob, transmat, corpus.gather(scores_ext, bucket),
                bucket.lengths,
            )

        for bucket, (gamma, xi_part, start_part, ll_part) in zip(
            corpus.buckets, self._map_buckets(run, corpus.buckets)
        ):
            gamma_ext[bucket.positions] = gamma
            xi_sum += xi_part
            start_counts += start_part
            lls[bucket.idx] = ll_part
        for lw in corpus.long_windows:
            # Long sequences bypass the padded buckets: sqrt-checkpointed
            # forward-backward over a view of the corpus score table keeps
            # the working set O(sqrt(T) * K) per sequence.
            r = checkpointed_posteriors(
                startprob,
                transmat,
                ArraySource(scores_ext[lw.offset : lw.offset + lw.length]),
            )
            gamma_ext[lw.offset : lw.offset + lw.length] = r.gamma
            xi_sum += r.xi_sum
            start_counts += r.gamma[0]
            lls[lw.seq_index] = r.log_likelihood
        return CorpusPosteriors(
            gamma_concat=gamma_ext[:-1],
            start_counts=start_counts,
            xi_sum=xi_sum,
            log_likelihoods=lls,
        )

    def viterbi_corpus(
        self, startprob, transmat, corpus, scores_ext,
        log_startprob=None, log_transmat=None,
    ) -> list[tuple[np.ndarray, float]]:
        startprob, transmat, scores_ext = self._check_corpus(
            startprob, transmat, corpus, scores_ext
        )
        log_pi, log_AT = self._viterbi_log_params(
            startprob, transmat, log_startprob, log_transmat
        )
        results: list[tuple[np.ndarray, float]] = [None] * corpus.n_sequences

        def run(bucket: CorpusBucket):
            return self._viterbi_bucket(
                log_pi, log_AT, corpus.gather(scores_ext, bucket),
                bucket.lengths,
            )

        for bucket, bucket_results in zip(
            corpus.buckets, self._map_buckets(run, corpus.buckets)
        ):
            for j, res in zip(bucket.idx, bucket_results):
                results[j] = res
        for lw in corpus.long_windows:
            # Long sequences decode through the chunked stitcher instead of
            # one giant padded bucket row.
            long_res = self.viterbi_long(
                startprob,
                transmat,
                ArraySource(scores_ext[lw.offset : lw.offset + lw.length]),
                window=lw.window,
                overlap=lw.overlap,
                log_startprob=log_startprob,
                log_transmat=log_transmat,
            )
            results[lw.seq_index] = (long_res.path, long_res.log_joint)
        return results

    def log_likelihood_corpus(
        self, startprob, transmat, corpus, scores_ext,
        log_startprob=None, log_transmat=None,
    ) -> np.ndarray:
        startprob, transmat, scores_ext = self._check_corpus(
            startprob, transmat, corpus, scores_ext
        )
        lls = np.empty(corpus.n_sequences)

        def run(bucket: CorpusBucket):
            log_b = corpus.gather(scores_ext, bucket)
            _, _, _, _, bucket_lls, underflow = self._forward_bucket(
                startprob, transmat, log_b, bucket.lengths
            )
            if underflow.any():
                log_pi, log_A = safe_log(startprob), safe_log(transmat)
                for b in np.flatnonzero(underflow):
                    log_alpha = log_forward(
                        log_pi, log_A, log_b[b, : bucket.lengths[b]]
                    )
                    bucket_lls[b] = float(logsumexp(log_alpha[-1]))
            return bucket_lls

        for bucket, bucket_lls in zip(
            corpus.buckets, self._map_buckets(run, corpus.buckets)
        ):
            lls[bucket.idx] = bucket_lls
        for lw in corpus.long_windows:
            # Forward-only streamed scoring: O(K) state per long sequence.
            lls[lw.seq_index] = streaming_log_likelihood(
                startprob,
                transmat,
                ArraySource(scores_ext[lw.offset : lw.offset + lw.length]),
            )
        return lls

    def _viterbi_bucket(  # repro: hot-path
        self,
        log_startprob: np.ndarray,
        log_transmat_T: np.ndarray,
        log_b: np.ndarray,
        lengths: np.ndarray,
    ) -> list[tuple[np.ndarray, float]]:
        """Fused batched Viterbi over one padded bucket.

        Unlike forward-backward, the Viterbi recursion contains no
        ``logsumexp`` — only max — so it vectorizes in the log domain at
        full speed.  Running it there removes everything the old
        probability-domain kernel spent most of its time on: the ``exp`` of
        the whole observation tensor, the per-timestep peak normalization
        (max / clamp / divide / log), and the ``_TINY`` underflow fallback
        (log-space cannot underflow).  As a bonus every elementary float
        operation now matches :func:`viterbi_decode_from_log` exactly, so
        decoded paths and joint log-probabilities are *bit-identical* to
        the log-domain reference, tie-breaking included.

        The fused inner step is three vectorized ops against preallocated,
        reused buffers: one broadcast add of the ``(B, K)`` message against
        the pre-transposed *contiguous* transition table
        (``scores[b, j, i] = delta[b, i] + log A[i, j]``), one argmax over
        the contiguous last axis, and one flat gather of the winning scores
        through the argmax (instead of a second full max reduction), folded
        into the observation add.  Backpointers live in the smallest
        integer dtype that can index the state space (uint8/uint16 for the
        paper's workloads, not int64), and because buckets are sorted by
        length, rows whose sequence has ended drop off the *front* of every
        buffer — each timestep only touches the still-active suffix, with
        no masked ``np.where`` updates at all.
        """
        if lengths.size > 1 and np.any(lengths[:-1] > lengths[1:]):
            # Callers (batch packing, compiled corpora) always hand over
            # length-sorted buckets; re-sort defensively if not.
            order = np.argsort(lengths, kind="stable")
            sorted_results = self._viterbi_bucket(
                log_startprob, log_transmat_T, log_b[order], lengths[order]
            )
            results: list[tuple[np.ndarray, float]] = [None] * lengths.size
            for pos, res in zip(order, sorted_results):  # repro: loop-ok[defensive unsort]
                results[pos] = res
            return results

        batch, max_len, n_states = log_b.shape
        rows = np.arange(batch)

        delta = log_startprob[None, :] + log_b[:, 0]
        backpointers = np.zeros(
            (batch, max_len, n_states), dtype=viterbi_backpointer_dtype(n_states)
        )
        self.last_backpointer_dtype = backpointers.dtype
        scores = np.empty((batch, n_states, n_states))
        arg = np.empty((batch, n_states), dtype=np.intp)
        best = np.empty(batch * n_states)
        gather_idx = np.empty(batch * n_states, dtype=np.intp)
        flat_offsets = np.arange(batch * n_states, dtype=np.intp) * n_states
        for t in range(1, max_len):  # repro: loop-ok[inherent time recursion]
            # First row still alive at time t (lengths are sorted ascending).
            first = int(np.searchsorted(lengths, t, side="right"))
            n_active = batch - first
            if n_active == 0:
                break
            flat = n_active * n_states
            sub_scores = scores[:n_active]
            sub_arg = arg[:n_active]
            np.add(
                delta[first:, None, :], log_transmat_T[None, :, :], out=sub_scores
            )
            sub_scores.argmax(axis=2, out=sub_arg)
            np.add(flat_offsets[:flat], sub_arg.reshape(-1), out=gather_idx[:flat])
            np.take(sub_scores.reshape(-1), gather_idx[:flat], out=best[:flat])
            np.add(
                best[:flat].reshape(n_active, n_states),
                log_b[first:, t],
                out=delta[first:],
            )
            backpointers[first:, t] = sub_arg

        final_state = delta.argmax(axis=1)
        log_joint = delta[rows, final_state]

        paths = np.zeros((batch, max_len), dtype=np.int64)
        paths[rows, lengths - 1] = final_state
        for t in range(max_len - 2, -1, -1):  # repro: loop-ok[inherent backtrack recursion]
            within = (t + 1) < lengths
            follow = backpointers[rows, t + 1, paths[:, t + 1]]
            paths[:, t] = np.where(within, follow, paths[:, t])

        return [
            (paths[b, : lengths[b]].copy(), float(log_joint[b])) for b in range(batch)
        ]

    def _viterbi_log_params(
        self,
        startprob: np.ndarray,
        transmat: np.ndarray,
        log_startprob: np.ndarray | None,
        log_transmat: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(log pi, contiguous log A^T)`` for the log-domain Viterbi kernel."""
        if log_startprob is None:
            log_startprob = safe_log(np.asarray(startprob, dtype=np.float64))
        if log_transmat is None:
            log_transmat = safe_log(np.asarray(transmat, dtype=np.float64))
        return log_startprob, np.ascontiguousarray(log_transmat.T)

    def viterbi_long(
        self,
        startprob: np.ndarray,
        transmat: np.ndarray,
        source,
        *,
        window: int,
        overlap: int,
        group_size: int | None = None,
        log_startprob: np.ndarray | None = None,
        log_transmat: np.ndarray | None = None,
    ) -> LongDecodeResult:
        """Chunked Viterbi feeding window groups straight to the fused kernel.

        Each group of windows becomes one padded ``(G, window, K)`` bucket
        decoded by :meth:`_viterbi_bucket` — no per-window repack, no
        length sorting (all windows have equal length).  ``group_size``
        defaults to the backend's ``bucket_size``.
        """
        startprob = np.asarray(startprob, dtype=np.float64)
        transmat = np.asarray(transmat, dtype=np.float64)
        _check_params(startprob, transmat)
        log_pi, log_AT = self._viterbi_log_params(
            startprob, transmat, log_startprob, log_transmat
        )
        if group_size is None:
            group_size = self.bucket_size

        def decode_bucket(start_log, padded, lengths):
            return self._viterbi_bucket(start_log, log_AT, padded, lengths)

        # log_AT.T is exactly log(A) (the kernel keeps the transpose
        # contiguous); reuse it for stitch scoring instead of re-deriving.
        return chunked_viterbi(
            log_pi,
            log_AT.T,
            source,
            window=window,
            overlap=overlap,
            group_size=group_size,
            decode_bucket=decode_bucket,
        )

    # -------------------------------------------------------------- #
    # Public batched entry points
    # -------------------------------------------------------------- #
    def _run_buckets(self, startprob, transmat, log_obs_seqs, kernel):
        startprob = np.asarray(startprob, dtype=np.float64)
        transmat = np.asarray(transmat, dtype=np.float64)
        log_obs_seqs = [np.asarray(lo, dtype=np.float64) for lo in log_obs_seqs]
        _check_params(startprob, transmat)
        if not log_obs_seqs:
            return []
        _check_tables(startprob.shape[0], log_obs_seqs)
        lengths = [lo.shape[0] for lo in log_obs_seqs]
        results: list = [None] * len(log_obs_seqs)
        buckets = bucket_indices(lengths, self.bucket_size)

        def run(idx: np.ndarray):
            padded, bucket_lengths = self._pack(log_obs_seqs, idx)
            return kernel(startprob, transmat, padded, bucket_lengths)

        for idx, bucket_results in zip(buckets, self._map_buckets(run, buckets)):
            for j, res in zip(idx, bucket_results):
                results[j] = res
        return results

    def forward_backward(
        self, startprob, transmat, log_obs_seqs, log_startprob=None, log_transmat=None
    ) -> list[SequencePosteriors]:
        return self._run_buckets(
            startprob, transmat, log_obs_seqs, self._forward_backward_bucket
        )

    def viterbi(
        self, startprob, transmat, log_obs_seqs, log_startprob=None, log_transmat=None
    ) -> list[tuple[np.ndarray, float]]:
        log_pi, log_AT = self._viterbi_log_params(
            startprob, transmat, log_startprob, log_transmat
        )

        def kernel(pi, A, padded, lengths):
            return self._viterbi_bucket(log_pi, log_AT, padded, lengths)

        return self._run_buckets(startprob, transmat, log_obs_seqs, kernel)

    def log_likelihood(
        self, startprob, transmat, log_obs_seqs, log_startprob=None, log_transmat=None
    ) -> np.ndarray:
        def kernel(pi, A, padded, lengths):
            _, _, _, _, lls, underflow = self._forward_bucket(pi, A, padded, lengths)
            out = [float(ll) for ll in lls]
            if underflow.any():
                log_pi, log_A = safe_log(pi), safe_log(A)
                for b in np.flatnonzero(underflow):
                    log_alpha = log_forward(log_pi, log_A, padded[b, : lengths[b]])
                    out[b] = float(logsumexp(log_alpha[-1]))
            return out

        return np.array(self._run_buckets(startprob, transmat, log_obs_seqs, kernel))


class LogDomainBackend(InferenceBackend):
    """Reference backend: the original per-sequence log-space recursions.

    Numerically identical to calling
    :func:`repro.hmm.forward_backward.compute_posteriors` /
    :func:`repro.hmm.viterbi.viterbi_decode` sequence by sequence; the only
    difference is that ``log(pi)`` / ``log(A)`` are taken once per call
    (the engine caches them across calls) instead of once per sequence.
    """

    name = "log"
    wants_log_params = True

    def _prepare(self, startprob, transmat, log_startprob, log_transmat):
        if log_startprob is None:
            log_startprob = safe_log(np.asarray(startprob, dtype=np.float64))
        if log_transmat is None:
            log_transmat = safe_log(np.asarray(transmat, dtype=np.float64))
        return log_startprob, log_transmat

    def forward_backward(
        self, startprob, transmat, log_obs_seqs, log_startprob=None, log_transmat=None
    ) -> list[SequencePosteriors]:
        log_pi, log_A = self._prepare(startprob, transmat, log_startprob, log_transmat)
        return [
            compute_posteriors_from_log(
                log_pi, log_A, np.asarray(log_obs, dtype=np.float64)
            )
            for log_obs in log_obs_seqs
        ]

    def viterbi(
        self, startprob, transmat, log_obs_seqs, log_startprob=None, log_transmat=None
    ) -> list[tuple[np.ndarray, float]]:
        log_pi, log_A = self._prepare(startprob, transmat, log_startprob, log_transmat)
        return [
            viterbi_decode_from_log(log_pi, log_A, np.asarray(log_obs, dtype=np.float64))
            for log_obs in log_obs_seqs
        ]

    def log_likelihood(
        self, startprob, transmat, log_obs_seqs, log_startprob=None, log_transmat=None
    ) -> np.ndarray:
        log_pi, log_A = self._prepare(startprob, transmat, log_startprob, log_transmat)
        out = np.empty(len(log_obs_seqs))
        for n, log_obs in enumerate(log_obs_seqs):
            log_alpha = log_forward(
                log_pi, log_A, np.asarray(log_obs, dtype=np.float64)
            )
            out[n] = float(logsumexp(log_alpha[-1]))
        return out


# ------------------------------------------------------------------ #
# Streaming (incremental) inference
# ------------------------------------------------------------------ #
@dataclass
class StreamStep:
    """Result of pushing one observation into a :class:`StreamingSession`.

    Attributes
    ----------
    t:
        Zero-based index of the timestep just consumed.
    filtering:
        Filtering posterior ``p(x_t | y_1..t)`` of length ``K``.
    log_likelihood:
        Running log marginal likelihood ``log P(y_1..t)``.
    finalized:
        Newly finalized ``(position, state)`` pairs from the fixed-lag
        Viterbi window (empty until the window exceeds the lag).
    """

    t: int
    filtering: np.ndarray
    log_likelihood: float
    finalized: list[tuple[int, int]] = field(default_factory=list)


class StreamingSession:
    """Incremental single-sequence inference: filtering + fixed-lag Viterbi.

    The session consumes one emission log-likelihood row per call to
    :meth:`step` and maintains two recursions in the log domain:

    * the forward (filtering) recursion, yielding the posterior
      ``p(x_t | y_1..t)`` and the running log marginal likelihood after
      every step — the quantities an online tagger shows per token;
    * the Viterbi recursion over a sliding window of ``lag`` backpointer
      columns.  Once ``lag`` further observations have arrived, the label
      of a position is *finalized* by backtracking from the current best
      state; :meth:`finish` flushes the remaining window with a full
      backtrack.

    With ``lag >= T`` (or ``lag=None``, the "infinite lag" default) no
    label is finalized before :meth:`finish`, and the emitted path is
    bit-identical to :func:`~repro.hmm.viterbi.viterbi_decode_from_log` on
    the whole sequence — the recursion and tie-breaking are the same ops.

    The per-step cost is ``O(K^2)``; sessions are deliberately
    single-sequence (online arrivals cannot be length-bucketed), which is
    why the batched backends are unaffected.
    """

    def __init__(
        self,
        log_startprob: np.ndarray,
        log_transmat: np.ndarray,
        lag: int | None = None,
    ) -> None:
        if lag is not None and lag < 1:
            raise ValidationError(f"lag must be at least 1, got {lag}")
        self._log_pi = np.asarray(log_startprob, dtype=np.float64)
        self._log_A = np.asarray(log_transmat, dtype=np.float64)
        n_states = self._log_pi.shape[0]
        if self._log_A.shape != (n_states, n_states):
            raise DimensionMismatchError(
                f"transition matrix shape {self._log_A.shape} does not match "
                f"{n_states} states"
            )
        self.n_states = n_states
        self.lag = lag
        self._log_alpha: np.ndarray | None = None
        self._log_delta: np.ndarray | None = None
        #: backpointer columns for times (next_emit, t]; _bp[i] belongs to
        #: time _next_emit + 1 + i.
        self._bp: deque[np.ndarray] = deque()
        self._t = -1
        self._next_emit = 0
        self._finished = False

    @property
    def t(self) -> int:
        """Index of the last consumed timestep (-1 before the first step)."""
        return self._t

    def _backtrack(self, down_to: int) -> list[tuple[int, int]]:
        """States of positions ``down_to .. t`` on the current best path."""
        assert self._log_delta is not None
        state = int(np.argmax(self._log_delta))
        states = [state]
        # self._bp holds columns for times (next_emit, t]; walk back from t.
        for tau in range(self._t, down_to, -1):
            state = int(self._bp[tau - self._next_emit - 1][state])
            states.append(state)
        states.reverse()
        return list(zip(range(down_to, self._t + 1), states))

    def step(self, log_obs_t: np.ndarray) -> StreamStep:
        """Consume one ``(K,)`` emission log-likelihood row."""
        if self._finished:
            raise ValidationError("cannot step a finished StreamingSession")
        row = np.asarray(log_obs_t, dtype=np.float64).reshape(-1)
        if row.shape[0] != self.n_states:
            raise DimensionMismatchError(
                f"expected a log-likelihood row of length {self.n_states}, "
                f"got shape {np.asarray(log_obs_t).shape}"
            )
        self._t += 1
        if self._t == 0:
            self._log_alpha = self._log_pi + row
            self._log_delta = self._log_pi + row
        else:
            self._log_alpha = row + logsumexp(
                self._log_alpha[:, None] + self._log_A, axis=0
            )
            scores = self._log_delta[:, None] + self._log_A
            backpointer = np.argmax(scores, axis=0)
            self._log_delta = (
                scores[backpointer, np.arange(self.n_states)] + row
            )
            self._bp.append(backpointer)

        log_likelihood = float(logsumexp(self._log_alpha))
        filtering = np.exp(self._log_alpha - log_likelihood)
        filtering /= filtering.sum()

        finalized: list[tuple[int, int]] = []
        if self.lag is not None and self._t - self._next_emit >= self.lag:
            last = self._t - self.lag  # newest position leaving the window
            finalized = self._backtrack(self._next_emit)[: last - self._next_emit + 1]
            self._next_emit = last + 1
            while len(self._bp) > self._t - self._next_emit:
                self._bp.popleft()
        return StreamStep(
            t=self._t,
            filtering=filtering,
            log_likelihood=log_likelihood,
            finalized=finalized,
        )

    def finish(self) -> list[tuple[int, int]]:
        """Finalize the remaining window; returns ``(position, state)`` pairs.

        After ``finish`` the session rejects further :meth:`step` calls.
        When no label was finalized early (``lag >= T`` or ``lag=None``) the
        concatenation of all finalized pairs is exactly the full-sequence
        Viterbi path.
        """
        if self._finished:
            return []
        self._finished = True
        if self._t < 0:
            return []
        remaining = self._backtrack(self._next_emit)
        self._bp.clear()
        self._next_emit = self._t + 1
        return remaining

    def peek_tail(self) -> list[tuple[int, int]]:
        """Current best labels of the not-yet-finalized window, non-destructively.

        Returns the same ``(position, state)`` pairs :meth:`finish` would
        emit right now, but keeps the session open: the window is not
        flushed, and further :meth:`step` calls may still revise these
        labels (they are provisional, exactly like the tail of a chunked
        decode window before its overlap is stitched).
        """
        if self._finished or self._t < 0:
            return []
        return self._backtrack(self._next_emit)

    @property
    def log_joint(self) -> float:
        """Joint log-probability of the current best (Viterbi) path."""
        if self._log_delta is None:
            raise ValidationError("no observations consumed yet")
        return float(np.max(self._log_delta))


@dataclass
class _StreamSlot:
    """Bookkeeping of one stream inside a :class:`BatchedStreamingSession`."""

    lag: int | None
    t: int = -1
    next_emit: int = 0
    bp: deque = field(default_factory=deque)
    finished: bool = False


class BatchedStreamingSession:
    """Many concurrent streaming sessions stepped together per tick.

    :class:`StreamingSession` pays ``O(K^2)`` *plus several Python-level
    numpy calls* per token per stream; serving B concurrent online streams
    that way costs B separate session steps per tick.  This session keeps
    the forward and Viterbi messages of all streams stacked as ``(B, K)``
    arrays, so one tick over the active streams runs the ``K x K``
    propagation as a single vectorized ``(B, K, K)`` broadcast/reduction —
    the batched-matmul shape of the offline backends, applied to online
    traffic.

    Per-stream results are **bit-identical** to :class:`StreamingSession`:
    every elementary operation (broadcast add against ``log(A)``, axis
    max/argmax with first-index tie-breaking, the ``logsumexp``
    reductions, posterior normalization) reduces over the same ``K``
    values in the same order as the single-stream recursion, and the
    fixed-lag window bookkeeping (backpointer deque, backtracking) is the
    same code shape per stream.  Equivalence is asserted exactly in
    ``tests/test_hmm_streaming_batch.py``.

    Streams are independent: they may have different lags, start at
    different times (:meth:`add_stream` mid-flight), advance on different
    ticks (pass an explicit ``streams`` subset to :meth:`step_many`) and
    finish independently (:meth:`finish` frees the slot for reuse).
    """

    def __init__(
        self,
        log_startprob: np.ndarray,
        log_transmat: np.ndarray,
        lags: Sequence[int | None] = (),
    ) -> None:
        self._log_pi = np.asarray(log_startprob, dtype=np.float64)
        self._log_A = np.asarray(log_transmat, dtype=np.float64)
        n_states = self._log_pi.shape[0]
        if self._log_A.shape != (n_states, n_states):
            raise DimensionMismatchError(
                f"transition matrix shape {self._log_A.shape} does not match "
                f"{n_states} states"
            )
        self.n_states = n_states
        self._slots: list[_StreamSlot] = []
        self._free: list[int] = []
        self._log_alpha = np.zeros((0, n_states))
        self._log_delta = np.zeros((0, n_states))
        for lag in lags:
            self.add_stream(lag)

    # -------------------------------------------------------------- #
    @property
    def n_streams(self) -> int:
        """Number of active (unfinished) streams."""
        return sum(1 for slot in self._slots if not slot.finished)

    def active_streams(self) -> list[int]:
        """Ids of all unfinished streams, in id order."""
        return [i for i, slot in enumerate(self._slots) if not slot.finished]

    def add_stream(self, lag: int | None = None) -> int:
        """Open one more stream; returns its id (finished slots are reused)."""
        if lag is not None and lag < 1:
            raise ValidationError(f"lag must be at least 1, got {lag}")
        if self._free:
            i = self._free.pop()
            self._slots[i] = _StreamSlot(lag=lag)
            self._log_alpha[i] = 0.0
            self._log_delta[i] = 0.0
            return i
        self._slots.append(_StreamSlot(lag=lag))
        pad = np.zeros((1, self.n_states))
        self._log_alpha = np.concatenate([self._log_alpha, pad])
        self._log_delta = np.concatenate([self._log_delta, pad])
        return len(self._slots) - 1

    def _slot(self, i: int) -> _StreamSlot:
        if not 0 <= i < len(self._slots):
            raise ValidationError(f"unknown stream id {i}")
        return self._slots[i]

    # -------------------------------------------------------------- #
    def _backtrack(
        self, i: int, down_to: int, best_state: int | None = None
    ) -> list[tuple[int, int]]:
        """States of positions ``down_to .. t`` on stream ``i``'s best path.

        ``best_state`` is the (precomputed) argmax of the stream's current
        Viterbi message; stepping passes the batched per-tick argmax so the
        per-stream bookkeeping loop does no numpy calls.
        """
        slot = self._slots[i]
        state = int(np.argmax(self._log_delta[i])) if best_state is None else best_state
        states = [state]
        for tau in range(slot.t, down_to, -1):
            state = int(slot.bp[tau - slot.next_emit - 1][state])
            states.append(state)
        states.reverse()
        return list(zip(range(down_to, slot.t + 1), states))

    def step_many(  # repro: hot-path
        self,
        log_obs_rows: np.ndarray,
        streams: Sequence[int] | None = None,
    ) -> list[StreamStep]:
        """Advance several streams by one token each, as one batched tick.

        Parameters
        ----------
        log_obs_rows:
            ``(M, K)`` emission log-likelihood rows, one per advancing
            stream, aligned with ``streams``.
        streams:
            Ids of the streams consuming a token this tick; defaults to
            every active stream (in id order).

        Returns one :class:`StreamStep` per advanced stream, in order.
        """
        rows = np.asarray(log_obs_rows, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[1] != self.n_states:
            raise DimensionMismatchError(
                f"expected log-likelihood rows of shape (M, {self.n_states}), "
                f"got {rows.shape}"
            )
        if streams is None:
            streams = self.active_streams()
        streams = [int(i) for i in streams]
        if len(streams) != rows.shape[0]:
            raise ValidationError(
                f"{rows.shape[0]} rows for {len(streams)} streams"
            )
        if len(set(streams)) != len(streams):
            raise ValidationError("duplicate stream ids in one tick")
        for i in streams:  # repro: loop-ok[pre-flight validation, M small]
            if self._slot(i).finished:
                raise ValidationError(f"cannot step finished stream {i}")
        if not streams:
            return []

        idx = np.asarray(streams, dtype=np.int64)
        fresh = np.array([self._slots[i].t < 0 for i in streams])
        backpointers: np.ndarray | None = None
        if not fresh.any():
            # Fast path (the steady state of a long-running pool): no mask
            # gather/scatter, just the batched recursion over all M rows.
            new_alpha = rows + logsumexp(
                self._log_alpha[idx][:, :, None] + self._log_A[None, :, :], axis=1
            )
            scores = self._log_delta[idx][:, :, None] + self._log_A[None, :, :]
            backpointers = np.argmax(scores, axis=1)
            best = np.take_along_axis(scores, backpointers[:, None, :], axis=1)[:, 0, :]
            new_delta = best + rows
        else:
            ongoing = ~fresh
            new_alpha = np.empty_like(rows)
            new_delta = np.empty_like(rows)
            start = self._log_pi[None, :] + rows[fresh]
            new_alpha[fresh] = start
            new_delta[fresh] = start
            if ongoing.any():
                sub_rows = rows[ongoing]
                alpha = self._log_alpha[idx[ongoing]]
                new_alpha[ongoing] = sub_rows + logsumexp(
                    alpha[:, :, None] + self._log_A[None, :, :], axis=1
                )
                scores = (
                    self._log_delta[idx[ongoing]][:, :, None] + self._log_A[None, :, :]
                )
                backpointers = np.argmax(scores, axis=1)
                best = np.take_along_axis(
                    scores, backpointers[:, None, :], axis=1
                )[:, 0, :]
                new_delta[ongoing] = best + sub_rows
        self._log_alpha[idx] = new_alpha
        self._log_delta[idx] = new_delta

        log_likelihoods = logsumexp(new_alpha, axis=1)
        filtering = np.exp(new_alpha - log_likelihoods[:, None])
        filtering /= filtering.sum(axis=1, keepdims=True)
        # One batched argmax feeds every stream's fixed-lag backtrack this
        # tick (identical tie-breaking to the per-row argmax).
        best_states = np.argmax(new_delta, axis=1)

        steps: list[StreamStep] = []
        ongoing_row = 0
        for m, i in enumerate(streams):  # repro: loop-ok[per-stream step assembly]
            slot = self._slots[i]
            slot.t += 1
            if not fresh[m]:
                assert backpointers is not None
                slot.bp.append(backpointers[ongoing_row])
                ongoing_row += 1
            finalized: list[tuple[int, int]] = []
            if slot.lag is not None and slot.t - slot.next_emit >= slot.lag:
                last = slot.t - slot.lag
                finalized = self._backtrack(
                    i, slot.next_emit, best_state=int(best_states[m])
                )[: last - slot.next_emit + 1]
                slot.next_emit = last + 1
                while len(slot.bp) > slot.t - slot.next_emit:  # repro: loop-ok[bounded window trim]
                    slot.bp.popleft()
            steps.append(
                StreamStep(
                    t=slot.t,
                    filtering=filtering[m].copy(),
                    log_likelihood=float(log_likelihoods[m]),
                    finalized=finalized,
                )
            )
        return steps

    def step(self, stream: int, log_obs_t: np.ndarray) -> StreamStep:
        """Advance one stream by one token (a one-row :meth:`step_many`)."""
        row = np.asarray(log_obs_t, dtype=np.float64).reshape(1, -1)
        return self.step_many(row, [stream])[0]

    def finish(self, stream: int) -> list[tuple[int, int]]:
        """Finalize one stream's remaining window and free its slot.

        Returns the remaining ``(position, state)`` pairs, exactly as
        :meth:`StreamingSession.finish` would for the same inputs.
        """
        slot = self._slot(stream)
        if slot.finished:
            return []
        slot.finished = True
        remaining: list[tuple[int, int]] = []
        if slot.t >= 0:
            remaining = self._backtrack(stream, slot.next_emit)
        slot.bp.clear()
        slot.next_emit = slot.t + 1
        self._free.append(stream)
        return remaining

    def peek_tail(self, stream: int) -> list[tuple[int, int]]:
        """One stream's provisional tail labels, without finalizing it.

        The batched analogue of :meth:`StreamingSession.peek_tail`: the
        pairs :meth:`finish` would emit for ``stream`` right now, with the
        stream left open and its window intact.
        """
        slot = self._slot(stream)
        if slot.finished or slot.t < 0:
            return []
        return self._backtrack(stream, slot.next_emit)


_BACKENDS = {
    ScaledBatchedBackend.name: ScaledBatchedBackend,
    LogDomainBackend.name: LogDomainBackend,
}


def available_backends() -> tuple[str, ...]:
    """Names of the registered inference backends."""
    return tuple(sorted(_BACKENDS))


def build_backend(
    name: str, bucket_size: int = 64, n_workers: int = 1
) -> InferenceBackend:
    """Instantiate a backend by name (``"scaled"`` or ``"log"``)."""
    try:
        cls = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown inference backend {name!r}; available: {available_backends()}"
        ) from None
    if cls is ScaledBatchedBackend:
        return cls(bucket_size=bucket_size, n_workers=n_workers)
    return cls()
