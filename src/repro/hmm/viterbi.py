"""Viterbi decoding of the most likely hidden state sequence."""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionMismatchError
from repro.utils.maths import safe_log


def viterbi_decode(
    startprob: np.ndarray, transmat: np.ndarray, log_obs: np.ndarray
) -> tuple[np.ndarray, float]:
    """Most probable state path and its joint log-probability.

    Solves ``argmax_X log P(X, Y | pi, A, B)`` by dynamic programming.

    Parameters
    ----------
    startprob:
        Initial state distribution ``pi`` (probability domain).
    transmat:
        Row-stochastic transition matrix ``A`` (probability domain).
    log_obs:
        Per-state observation log-likelihoods, shape ``(T, K)``.

    Returns
    -------
    (path, log_joint):
        ``path`` is the length-``T`` integer state sequence, ``log_joint``
        the log-probability of the decoded path together with the
        observations.
    """
    log_pi = safe_log(np.asarray(startprob, dtype=np.float64))
    log_A = safe_log(np.asarray(transmat, dtype=np.float64))
    return viterbi_decode_from_log(log_pi, log_A, log_obs)


def viterbi_decode_from_log(
    log_startprob: np.ndarray, log_transmat: np.ndarray, log_obs: np.ndarray
) -> tuple[np.ndarray, float]:
    """Viterbi decoding from *log-domain* parameters.

    Identical to :func:`viterbi_decode` but takes ``log(pi)`` and ``log(A)``
    directly, so callers decoding many sequences can precompute the logs
    once (the inference engine caches them across decode calls).
    """
    log_obs = np.asarray(log_obs, dtype=np.float64)
    if log_obs.ndim != 2:
        raise DimensionMismatchError(f"log_obs must be 2-D, got shape {log_obs.shape}")
    T, n_states = log_obs.shape
    if log_startprob.shape[0] != n_states or log_transmat.shape != (n_states, n_states):
        raise DimensionMismatchError(
            "startprob/transmat dimensions do not match observation likelihoods"
        )

    delta = np.full((T, n_states), -np.inf)
    backpointers = np.zeros((T, n_states), dtype=np.int64)
    delta[0] = log_startprob + log_obs[0]
    for t in range(1, T):
        scores = delta[t - 1][:, None] + log_transmat
        backpointers[t] = np.argmax(scores, axis=0)
        delta[t] = scores[backpointers[t], np.arange(n_states)] + log_obs[t]

    path = np.zeros(T, dtype=np.int64)
    path[-1] = int(np.argmax(delta[-1]))
    for t in range(T - 2, -1, -1):
        path[t] = backpointers[t + 1, path[t + 1]]
    return path, float(delta[-1, path[-1]])
