"""Univariate Gaussian emissions (the toy experiment of the paper)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.hmm.emissions.base import EmissionModel
from repro.utils.rng import SeedLike, as_generator

_LOG_2PI = float(np.log(2.0 * np.pi))
_MIN_VARIANCE = 1e-6


class GaussianEmission(EmissionModel):
    """One univariate Gaussian per hidden state.

    Serialization: :meth:`to_state_dict` / :meth:`from_state_dict` snapshot
    the per-state means and variances.

    Parameters
    ----------
    means:
        Vector of per-state means ``B.mu`` (length ``n_states``).
    variances:
        Vector of per-state variances ``B.sigma^2``; values are floored at a
        small constant so degenerate states cannot produce infinite
        likelihoods during EM.
    """

    family = "gaussian"

    def __init__(self, means: np.ndarray, variances: np.ndarray) -> None:
        means = np.asarray(means, dtype=np.float64)
        variances = np.asarray(variances, dtype=np.float64)
        if means.ndim != 1 or variances.ndim != 1:
            raise ValidationError("means and variances must be one-dimensional")
        if means.shape != variances.shape:
            raise ValidationError(
                f"means and variances must have the same length, got "
                f"{means.shape} and {variances.shape}"
            )
        if np.any(variances <= 0):
            raise ValidationError("variances must be strictly positive")
        self.means = means.copy()
        self.variances = np.maximum(variances, _MIN_VARIANCE)
        self.n_states = means.size

    @classmethod
    def random_init(
        cls,
        n_states: int,
        sequences: Sequence[np.ndarray] | None = None,
        seed: SeedLike = None,
    ) -> "GaussianEmission":
        """Create a randomly initialized Gaussian emission model.

        Means are drawn from a normal distribution matched to the data range
        and variances from a Gamma distribution, mirroring the paper's
        initialization of the toy experiment.
        """
        rng = as_generator(seed)
        if sequences:
            values = np.concatenate([np.asarray(s, dtype=np.float64) for s in sequences])
            loc, scale = float(values.mean()), float(values.std() + 1e-3)
        else:
            loc, scale = 0.0, 1.0
        means = rng.normal(loc=loc, scale=scale, size=n_states)
        variances = rng.gamma(shape=2.0, scale=max(scale, 0.5), size=n_states)
        return cls(means, np.maximum(variances, _MIN_VARIANCE))

    def log_likelihoods(self, sequence: np.ndarray) -> np.ndarray:
        obs = np.asarray(sequence, dtype=np.float64)
        if obs.ndim != 1:
            raise ValidationError(f"Gaussian emissions expect 1-D sequences, got {obs.shape}")
        diff = obs[:, None] - self.means[None, :]
        return -0.5 * (_LOG_2PI + np.log(self.variances)[None, :] + diff**2 / self.variances[None, :])

    def m_step(
        self, sequences: Sequence[np.ndarray], posteriors: Sequence[np.ndarray]
    ) -> None:
        weight_sum = np.zeros(self.n_states)
        weighted_obs = np.zeros(self.n_states)
        for seq, post in zip(sequences, posteriors):
            obs = np.asarray(seq, dtype=np.float64)
            weight_sum += post.sum(axis=0)
            weighted_obs += post.T @ obs
        safe = np.maximum(weight_sum, 1e-12)
        new_means = weighted_obs / safe

        weighted_sq = np.zeros(self.n_states)
        for seq, post in zip(sequences, posteriors):
            obs = np.asarray(seq, dtype=np.float64)
            diff_sq = (obs[:, None] - new_means[None, :]) ** 2
            weighted_sq += np.sum(post * diff_sq, axis=0)
        new_variances = np.maximum(weighted_sq / safe, _MIN_VARIANCE)

        self.means = new_means
        self.variances = new_variances

    def m_step_compiled(self, corpus, gamma_concat: np.ndarray) -> None:
        """Vectorized M-step: weighted moments of the concatenated corpus."""
        obs = np.asarray(corpus.concat, dtype=np.float64)
        safe = np.maximum(gamma_concat.sum(axis=0), 1e-12)
        new_means = (gamma_concat.T @ obs) / safe
        diff_sq = (obs[:, None] - new_means[None, :]) ** 2
        new_variances = np.maximum(
            np.sum(gamma_concat * diff_sq, axis=0) / safe, _MIN_VARIANCE
        )
        self.means = new_means
        self.variances = new_variances

    def sample(self, state: int, rng: np.random.Generator) -> float:
        return float(rng.normal(self.means[state], np.sqrt(self.variances[state])))

    def initialize_random(self, sequences: Sequence[np.ndarray], seed: SeedLike = None) -> None:
        fresh = self.random_init(self.n_states, sequences, seed)
        self.means = fresh.means
        self.variances = fresh.variances

    def copy(self) -> "GaussianEmission":
        return GaussianEmission(self.means.copy(), self.variances.copy())

    def to_state_dict(self) -> dict:
        return {
            "family": self.family,
            "means": self.means.copy(),
            "variances": self.variances.copy(),
        }

    @classmethod
    def _from_state_dict(cls, state: dict) -> "GaussianEmission":
        return cls(state["means"], state["variances"])

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"GaussianEmission(n_states={self.n_states})"
