"""Abstract interface shared by all emission families.

An emission model owns the per-state observation distributions ``B`` of the
HMM.  The HMM core only ever talks to emissions through this interface, so
the same forward-backward / Viterbi / EM machinery serves the Gaussian toy
experiment, the categorical PoS-tagging experiment, and the Bernoulli OCR
experiment.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.utils.rng import SeedLike

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hmm.corpus import CompiledCorpus


class EmissionModel(abc.ABC):
    """Per-state observation distributions of an HMM.

    Concrete implementations store their parameters as numpy arrays and
    expose three operations: scoring observations, re-estimating parameters
    from weighted posteriors (the emission part of the M-step), and sampling.
    """

    #: number of hidden states the emission model covers
    n_states: int

    #: short identifier written into persisted state dicts; concrete
    #: families override it and register themselves in ``_FAMILY_REGISTRY``.
    family: str = "abstract"

    _FAMILY_REGISTRY: dict[str, type["EmissionModel"]] = {}

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        if cls.family != "abstract":
            EmissionModel._FAMILY_REGISTRY[cls.family] = cls

    @abc.abstractmethod
    def to_state_dict(self) -> dict:
        """Serializable parameter snapshot (JSON scalars + numpy arrays).

        The dict must carry ``"family": self.family`` so
        :meth:`from_state_dict` can dispatch to the right subclass.
        """

    @classmethod
    def from_state_dict(cls, state: dict) -> "EmissionModel":
        """Rebuild an emission model from :meth:`to_state_dict` output.

        Called on :class:`EmissionModel` it dispatches on ``state["family"]``;
        called on a concrete subclass it rebuilds that family directly.
        """
        family = state.get("family")
        if cls is EmissionModel:
            try:
                target = cls._FAMILY_REGISTRY[family]
            except KeyError:
                raise ValueError(
                    f"unknown emission family {family!r}; known: "
                    f"{sorted(cls._FAMILY_REGISTRY)}"
                ) from None
            return target.from_state_dict(state)
        if family != cls.family:
            raise ValueError(
                f"state dict holds family {family!r}, not {cls.family!r}"
            )
        return cls._from_state_dict(state)

    @classmethod
    @abc.abstractmethod
    def _from_state_dict(cls, state: dict) -> "EmissionModel":
        """Family-specific reconstruction (``state["family"]`` already checked)."""

    @abc.abstractmethod
    def log_likelihoods(self, sequence: np.ndarray) -> np.ndarray:
        """Log-likelihood of every observation under every state.

        Parameters
        ----------
        sequence:
            Observations for one sequence; the first axis is time.

        Returns
        -------
        numpy.ndarray
            Array of shape ``(T, n_states)`` with entries
            ``log P(y_t | x_t = i)``.
        """

    def log_likelihoods_batch(self, sequences: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Emission tables for a whole collection of sequences.

        Equivalent to ``[self.log_likelihoods(s) for s in sequences]``;
        families whose scoring is an indexing or matmul operation override
        this to score all sequences in one vectorized call (the batched
        engine and the tagging service hand over whole micro-batches).
        """
        return [self.log_likelihoods(sequence) for sequence in sequences]

    def log_likelihoods_concat(self, concat: np.ndarray) -> np.ndarray:
        """Emission table of an already-concatenated corpus (``(N, K)``).

        ``concat`` is the flat token array of a
        :class:`~repro.hmm.corpus.CompiledCorpus` — all sequences stacked
        along the time axis.  The default treats it as one long sequence
        (every family scores timesteps independently); families with a
        cheaper corpus-level form override it (categorical takes the log of
        the ``(K, V)`` parameter table once and gathers, instead of taking
        ``N * K`` logs of the gathered probabilities).
        """
        return self.log_likelihoods(concat)

    def m_step_compiled(self, corpus: "CompiledCorpus", gamma_concat: np.ndarray) -> None:
        """Emission M-step from corpus-level stacked posteriors.

        ``gamma_concat`` has shape ``(n_tokens, K)`` and is aligned with
        ``corpus.concat``.  The default splits it back into per-sequence
        arrays and delegates to :meth:`m_step`; vectorizable families
        override it with one bincount/matmul over the flat corpus.
        """
        self.m_step(corpus.sequences, corpus.split(gamma_concat))

    @abc.abstractmethod
    def m_step(
        self, sequences: Sequence[np.ndarray], posteriors: Sequence[np.ndarray]
    ) -> None:
        """Update parameters from posterior state responsibilities.

        ``posteriors[n]`` has shape ``(T_n, n_states)`` and holds
        ``q(x_t = i)`` for sequence ``n``.  Implementations update their
        parameters in place (standard EM weighted-average updates).
        """

    @abc.abstractmethod
    def sample(self, state: int, rng: np.random.Generator) -> np.ndarray | float | int:
        """Draw one observation from state ``state``."""

    @abc.abstractmethod
    def initialize_random(self, sequences: Sequence[np.ndarray], seed: SeedLike = None) -> None:
        """Randomly (re-)initialize parameters before EM, using the data scale."""

    @abc.abstractmethod
    def copy(self) -> "EmissionModel":
        """Deep copy of the emission model (used to snapshot EM state)."""

    def validate_sequence(self, sequence: np.ndarray) -> np.ndarray:
        """Hook for subclasses to validate/convert a single sequence."""
        return np.asarray(sequence)
