"""Abstract interface shared by all emission families.

An emission model owns the per-state observation distributions ``B`` of the
HMM.  The HMM core only ever talks to emissions through this interface, so
the same forward-backward / Viterbi / EM machinery serves the Gaussian toy
experiment, the categorical PoS-tagging experiment, and the Bernoulli OCR
experiment.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.utils.rng import SeedLike


class EmissionModel(abc.ABC):
    """Per-state observation distributions of an HMM.

    Concrete implementations store their parameters as numpy arrays and
    expose three operations: scoring observations, re-estimating parameters
    from weighted posteriors (the emission part of the M-step), and sampling.
    """

    #: number of hidden states the emission model covers
    n_states: int

    @abc.abstractmethod
    def log_likelihoods(self, sequence: np.ndarray) -> np.ndarray:
        """Log-likelihood of every observation under every state.

        Parameters
        ----------
        sequence:
            Observations for one sequence; the first axis is time.

        Returns
        -------
        numpy.ndarray
            Array of shape ``(T, n_states)`` with entries
            ``log P(y_t | x_t = i)``.
        """

    @abc.abstractmethod
    def m_step(
        self, sequences: Sequence[np.ndarray], posteriors: Sequence[np.ndarray]
    ) -> None:
        """Update parameters from posterior state responsibilities.

        ``posteriors[n]`` has shape ``(T_n, n_states)`` and holds
        ``q(x_t = i)`` for sequence ``n``.  Implementations update their
        parameters in place (standard EM weighted-average updates).
        """

    @abc.abstractmethod
    def sample(self, state: int, rng: np.random.Generator) -> np.ndarray | float | int:
        """Draw one observation from state ``state``."""

    @abc.abstractmethod
    def initialize_random(self, sequences: Sequence[np.ndarray], seed: SeedLike = None) -> None:
        """Randomly (re-)initialize parameters before EM, using the data scale."""

    @abc.abstractmethod
    def copy(self) -> "EmissionModel":
        """Deep copy of the emission model (used to snapshot EM state)."""

    def validate_sequence(self, sequence: np.ndarray) -> np.ndarray:
        """Hook for subclasses to validate/convert a single sequence."""
        return np.asarray(sequence)
