"""Emission distribution families for the HMM substrate."""

from repro.hmm.emissions.base import EmissionModel
from repro.hmm.emissions.gaussian import GaussianEmission
from repro.hmm.emissions.categorical import CategoricalEmission
from repro.hmm.emissions.bernoulli import BernoulliEmission

__all__ = [
    "EmissionModel",
    "GaussianEmission",
    "CategoricalEmission",
    "BernoulliEmission",
]
