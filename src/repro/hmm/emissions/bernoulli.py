"""Product-of-Bernoullis emissions (naive Bayes pixels) for the OCR task.

Each hidden state (letter) emits a binary feature vector of dimension ``D``
(128 = 16x8 pixels in the paper); pixels are conditionally independent given
the state, each with its own Bernoulli parameter.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.hmm.emissions.base import EmissionModel
from repro.utils.rng import SeedLike, as_generator

_PROB_FLOOR = 1e-4


class BernoulliEmission(EmissionModel):
    """Per-state independent Bernoulli distributions over binary features.

    Parameters
    ----------
    pixel_probs:
        Matrix of shape ``(n_states, n_features)`` with
        ``pixel_probs[i, d] = P(y_td = 1 | x_t = i)``.  Values are clipped
        away from 0/1 so log-likelihoods stay finite.
    """

    family = "bernoulli"

    def __init__(self, pixel_probs: np.ndarray) -> None:
        P = np.asarray(pixel_probs, dtype=np.float64)
        if P.ndim != 2:
            raise ValidationError(f"pixel_probs must be 2-D, got shape {P.shape}")
        if np.any(P < 0) or np.any(P > 1):
            raise ValidationError("pixel_probs must lie in [0, 1]")
        self.pixel_probs = np.clip(P, _PROB_FLOOR, 1.0 - _PROB_FLOOR)
        self.n_states, self.n_features = P.shape

    @classmethod
    def random_init(
        cls, n_states: int, n_features: int, seed: SeedLike = None
    ) -> "BernoulliEmission":
        """Initialize pixel probabilities uniformly in ``[0.25, 0.75]``."""
        rng = as_generator(seed)
        probs = rng.uniform(0.25, 0.75, size=(n_states, n_features))
        return cls(probs)

    def log_likelihoods(self, sequence: np.ndarray) -> np.ndarray:
        obs = np.asarray(sequence, dtype=np.float64)
        if obs.ndim != 2 or obs.shape[1] != self.n_features:
            raise ValidationError(
                f"Bernoulli emissions expect sequences of shape (T, {self.n_features}), "
                f"got {obs.shape}"
            )
        log_p = np.log(self.pixel_probs)
        log_1p = np.log1p(-self.pixel_probs)
        return obs @ log_p.T + (1.0 - obs) @ log_1p.T

    def log_likelihoods_batch(self, sequences: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Score the vertically stacked corpus in one call, then split."""
        arrays = [np.asarray(seq, dtype=np.float64) for seq in sequences]
        for obs in arrays:
            if obs.ndim != 2 or obs.shape[1] != self.n_features:
                raise ValidationError(
                    f"Bernoulli emissions expect sequences of shape "
                    f"(T, {self.n_features}), got {obs.shape}"
                )
        if not arrays:
            return []
        flat = np.vstack(arrays) if len(arrays) > 1 else arrays[0]
        bounds = np.cumsum([a.shape[0] for a in arrays])[:-1]
        return np.split(self.log_likelihoods(flat), bounds)

    def m_step(
        self, sequences: Sequence[np.ndarray], posteriors: Sequence[np.ndarray]
    ) -> None:
        weight_sum = np.zeros(self.n_states)
        weighted_pixels = np.zeros((self.n_states, self.n_features))
        for seq, post in zip(sequences, posteriors):
            obs = np.asarray(seq, dtype=np.float64)
            weight_sum += post.sum(axis=0)
            weighted_pixels += post.T @ obs
        safe = np.maximum(weight_sum, 1e-12)[:, None]
        self.pixel_probs = np.clip(weighted_pixels / safe, _PROB_FLOOR, 1.0 - _PROB_FLOOR)

    def m_step_compiled(self, corpus, gamma_concat: np.ndarray) -> None:
        """Vectorized M-step: one ``(K, N) @ (N, D)`` matmul over the corpus."""
        obs = np.asarray(corpus.concat, dtype=np.float64)
        weight_sum = gamma_concat.sum(axis=0)
        weighted_pixels = gamma_concat.T @ obs
        safe = np.maximum(weight_sum, 1e-12)[:, None]
        self.pixel_probs = np.clip(weighted_pixels / safe, _PROB_FLOOR, 1.0 - _PROB_FLOOR)

    def sample(self, state: int, rng: np.random.Generator) -> np.ndarray:
        return (rng.random(self.n_features) < self.pixel_probs[state]).astype(np.float64)

    def initialize_random(self, sequences: Sequence[np.ndarray], seed: SeedLike = None) -> None:
        fresh = self.random_init(self.n_states, self.n_features, seed)
        self.pixel_probs = fresh.pixel_probs

    def copy(self) -> "BernoulliEmission":
        return BernoulliEmission(self.pixel_probs.copy())

    def to_state_dict(self) -> dict:
        return {"family": self.family, "pixel_probs": self.pixel_probs.copy()}

    @classmethod
    def _from_state_dict(cls, state: dict) -> "BernoulliEmission":
        return cls(state["pixel_probs"])

    def fit_supervised(
        self,
        sequences: Sequence[np.ndarray],
        labels: Sequence[np.ndarray],
        pseudocount: float = 1.0,
    ) -> None:
        """Maximum-likelihood (with Laplace smoothing) fit from labeled data."""
        counts = np.full((self.n_states, self.n_features), pseudocount)
        totals = np.full(self.n_states, 2.0 * pseudocount)
        for seq, lab in zip(sequences, labels):
            obs = np.asarray(seq, dtype=np.float64)
            lab = np.asarray(lab, dtype=np.int64)
            for state in range(self.n_states):
                mask = lab == state
                if np.any(mask):
                    counts[state] += obs[mask].sum(axis=0)
                    totals[state] += float(mask.sum())
        self.pixel_probs = np.clip(counts / totals[:, None], _PROB_FLOOR, 1.0 - _PROB_FLOOR)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"BernoulliEmission(n_states={self.n_states}, n_features={self.n_features})"
