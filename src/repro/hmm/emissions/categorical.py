"""Categorical (multinomial) emissions used for PoS tagging over a vocabulary."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.hmm.emissions.base import EmissionModel
from repro.utils.maths import normalize_rows, safe_log
from repro.utils.rng import SeedLike, as_generator


class CategoricalEmission(EmissionModel):
    """Per-state categorical distribution over a discrete vocabulary.

    Parameters
    ----------
    emission_probs:
        Row-stochastic matrix ``B`` of shape ``(n_states, n_symbols)``;
        ``B[i, v] = P(y_t = v | x_t = i)``.
    """

    family = "categorical"

    def __init__(self, emission_probs: np.ndarray) -> None:
        B = np.asarray(emission_probs, dtype=np.float64)
        if B.ndim != 2:
            raise ValidationError(f"emission_probs must be 2-D, got shape {B.shape}")
        if np.any(B < 0):
            raise ValidationError("emission_probs must be non-negative")
        sums = B.sum(axis=1)
        if not np.allclose(sums, 1.0, atol=1e-6):
            raise ValidationError("rows of emission_probs must sum to 1")
        if np.allclose(sums, 1.0, rtol=0.0, atol=1e-12):
            # Already normalized: keep the caller's buffer.  This preserves
            # read-only memory-mapped tables (serving artifacts loaded with
            # mmap=True) — renormalizing would silently copy the whole
            # table onto the private heap, defeating page sharing.
            self.emission_probs = B
        else:
            self.emission_probs = B / sums[:, None]
        self.n_states, self.n_symbols = B.shape

    @classmethod
    def random_init(
        cls, n_states: int, n_symbols: int, seed: SeedLike = None, concentration: float = 1.0
    ) -> "CategoricalEmission":
        """Draw each state's emission row from a symmetric Dirichlet."""
        rng = as_generator(seed)
        rows = rng.dirichlet(np.full(n_symbols, concentration), size=n_states)
        return cls(rows)

    def log_likelihoods(self, sequence: np.ndarray) -> np.ndarray:
        obs = np.asarray(sequence)
        if obs.ndim != 1:
            raise ValidationError(f"Categorical emissions expect 1-D sequences, got {obs.shape}")
        if obs.size and (obs.min() < 0 or obs.max() >= self.n_symbols):
            raise ValidationError("observation symbol out of range")
        return safe_log(self.emission_probs[:, obs].T)

    def log_likelihoods_batch(self, sequences: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Score the concatenated corpus in one call, then split per sequence."""
        arrays = [np.asarray(seq) for seq in sequences]
        for obs in arrays:
            if obs.ndim != 1:
                raise ValidationError(
                    f"Categorical emissions expect 1-D sequences, got {obs.shape}"
                )
        if not arrays:
            return []
        flat = np.concatenate(arrays) if len(arrays) > 1 else arrays[0]
        bounds = np.cumsum([a.shape[0] for a in arrays])[:-1]
        return np.split(self.log_likelihoods(flat), bounds)

    def log_likelihoods_concat(self, concat: np.ndarray) -> np.ndarray:
        """One ``(K, V)`` log-table plus one fancy-index for the whole corpus.

        ``log`` of a gathered probability equals a gather of the logged
        table, so this matches :meth:`log_likelihoods` exactly while taking
        ``K * V`` logarithms instead of ``N * K``.
        """
        obs = np.asarray(concat)
        if obs.ndim != 1:
            raise ValidationError(
                f"Categorical emissions expect 1-D sequences, got {obs.shape}"
            )
        if obs.size and (obs.min() < 0 or obs.max() >= self.n_symbols):
            raise ValidationError("observation symbol out of range")
        return safe_log(self.emission_probs).T[obs]

    def m_step(
        self, sequences: Sequence[np.ndarray], posteriors: Sequence[np.ndarray]
    ) -> None:
        counts = np.zeros((self.n_states, self.n_symbols))
        for seq, post in zip(sequences, posteriors):
            obs = np.asarray(seq, dtype=np.int64)
            np.add.at(counts.T, obs, post)
        self.emission_probs = normalize_rows(counts)

    def m_step_compiled(self, corpus, gamma_concat: np.ndarray) -> None:
        """Vectorized M-step: one weighted bincount per state over the corpus."""
        tokens = np.asarray(corpus.concat, dtype=np.int64)
        counts = np.empty((self.n_states, self.n_symbols))
        for state in range(self.n_states):
            counts[state] = np.bincount(
                tokens, weights=gamma_concat[:, state], minlength=self.n_symbols
            )
        self.emission_probs = normalize_rows(counts)

    def sample(self, state: int, rng: np.random.Generator) -> int:
        return int(rng.choice(self.n_symbols, p=self.emission_probs[state]))

    def initialize_random(self, sequences: Sequence[np.ndarray], seed: SeedLike = None) -> None:
        fresh = self.random_init(self.n_states, self.n_symbols, seed)
        self.emission_probs = fresh.emission_probs

    def copy(self) -> "CategoricalEmission":
        return CategoricalEmission(self.emission_probs.copy())

    def to_state_dict(self) -> dict:
        return {"family": self.family, "emission_probs": self.emission_probs.copy()}

    @classmethod
    def _from_state_dict(cls, state: dict) -> "CategoricalEmission":
        return cls(state["emission_probs"])

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CategoricalEmission(n_states={self.n_states}, n_symbols={self.n_symbols})"
