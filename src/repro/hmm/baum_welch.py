"""Baum-Welch (EM) training for HMMs with a pluggable transition M-step.

The expectation step collects the unary posteriors ``gamma`` and the expected
transition counts ``xi`` via forward-backward.  The maximization step updates
``pi`` and the emissions in closed form and delegates the transition update to
a :class:`~repro.hmm.transition_updaters.TransitionUpdater` — the single
extension point the dHMM needs.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.exceptions import ConvergenceWarning, ValidationError
from repro.hmm.corpus import CompiledCorpus, CorpusPosteriors
from repro.hmm.engine import InferenceEngine
from repro.hmm.model import HMM
from repro.hmm.transition_updaters import (
    MaximumLikelihoodTransitionUpdater,
    TransitionUpdater,
)
from repro.utils.maths import normalize_rows


@dataclass
class EStepStatistics:
    """Sufficient statistics gathered during one E-step over all sequences."""

    start_counts: np.ndarray
    transition_counts: np.ndarray
    posteriors: list[np.ndarray]
    log_likelihood: float


@dataclass
class FitResult:
    """Summary of an EM run.

    Attributes
    ----------
    log_likelihood:
        Final total data log-likelihood (without any prior term).
    history:
        Log-likelihood after every EM iteration.
    n_iter:
        Number of EM iterations performed.
    converged:
        Whether the improvement dropped below the tolerance before the
        iteration cap was reached.
    """

    log_likelihood: float
    history: list[float] = field(default_factory=list)
    n_iter: int = 0
    converged: bool = False


class BaumWelchTrainer:
    """Expectation-Maximization trainer for :class:`~repro.hmm.model.HMM`.

    Parameters
    ----------
    transition_updater:
        Strategy used for the transition M-step; defaults to the classical
        normalized-counts update.
    max_iter, tol:
        EM stopping criteria (iteration cap and minimum log-likelihood
        improvement).
    update_startprob, update_emissions, update_transitions:
        Flags allowing individual parameter blocks to be frozen, used by
        ablation experiments and by supervised fine-tuning.
    warn_on_no_convergence:
        Emit a :class:`~repro.exceptions.ConvergenceWarning` if EM stops
        because the iteration budget ran out.
    engine:
        Optional :class:`~repro.hmm.engine.InferenceEngine` used for the
        E-step; when omitted, the model's own engine (and therefore the
        process-wide backend configuration) is used.
    """

    def __init__(
        self,
        transition_updater: TransitionUpdater | None = None,
        max_iter: int = 50,
        tol: float = 1e-4,
        update_startprob: bool = True,
        update_emissions: bool = True,
        update_transitions: bool = True,
        warn_on_no_convergence: bool = False,
        engine: InferenceEngine | None = None,
    ) -> None:
        if max_iter < 1:
            raise ValidationError(f"max_iter must be at least 1, got {max_iter}")
        if tol < 0:
            raise ValidationError(f"tol must be non-negative, got {tol}")
        self.transition_updater = transition_updater or MaximumLikelihoodTransitionUpdater()
        self.max_iter = max_iter
        self.tol = tol
        self.update_startprob = update_startprob
        self.update_emissions = update_emissions
        self.update_transitions = update_transitions
        self.warn_on_no_convergence = warn_on_no_convergence
        self.engine = engine

    # ------------------------------------------------------------------ #
    def e_step(self, model: HMM, sequences: Sequence[np.ndarray]) -> EStepStatistics:
        """Run batched forward-backward over all sequences and accumulate statistics.

        The emission log-likelihood tables are computed once per iteration
        and handed to the inference engine, which groups the sequences into
        padded length-buckets so every timestep of the recursions is one
        matmul over a whole bucket.
        """
        engine = self.engine if self.engine is not None else model.inference_engine
        # Scored through the batch API so vectorizable families (categorical,
        # Bernoulli) produce every table in one call instead of a
        # per-sequence Python loop — the same path HMM.score/predict use.
        log_obs_seqs = model.emissions.log_likelihoods_batch(sequences)
        all_stats = engine.posteriors_batch(model.startprob, model.transmat, log_obs_seqs)

        k = model.n_states
        start_counts = np.zeros(k)
        transition_counts = np.zeros((k, k))
        posteriors: list[np.ndarray] = []
        total_ll = 0.0
        for stats in all_stats:
            start_counts += stats.gamma[0]
            transition_counts += stats.xi_sum
            posteriors.append(stats.gamma)
            total_ll += stats.log_likelihood
        return EStepStatistics(
            start_counts=start_counts,
            transition_counts=transition_counts,
            posteriors=posteriors,
            log_likelihood=total_ll,
        )

    def m_step(
        self, model: HMM, sequences: Sequence[np.ndarray], stats: EStepStatistics
    ) -> None:
        """Update ``pi``, ``A`` and the emissions in place."""
        if self.update_startprob:
            total = stats.start_counts.sum()
            if total > 0:
                model.startprob = stats.start_counts / total
        if self.update_transitions:
            model.transmat = self.transition_updater.update(
                stats.transition_counts, model.transmat
            )
        else:
            model.transmat = normalize_rows(model.transmat)
        if self.update_emissions:
            model.emissions.m_step(sequences, stats.posteriors)

    def _m_step_corpus(
        self, model: HMM, corpus: CompiledCorpus, stats: CorpusPosteriors
    ) -> None:
        """Corpus-level M-step: all accumulation already happened in the E-step."""
        if self.update_startprob:
            total = stats.start_counts.sum()
            if total > 0:
                model.startprob = stats.start_counts / total
        if self.update_transitions:
            model.transmat = self.transition_updater.update(stats.xi_sum, model.transmat)
        else:
            model.transmat = normalize_rows(model.transmat)
        if self.update_emissions:
            model.emissions.m_step_compiled(corpus, stats.gamma_concat)

    # ------------------------------------------------------------------ #
    def fit(
        self, model: HMM, sequences: "Sequence[np.ndarray] | CompiledCorpus"
    ) -> FitResult:
        """Run EM until convergence, mutating ``model`` in place.

        ``sequences`` may be a plain sequence collection or an
        already-compiled :class:`~repro.hmm.corpus.CompiledCorpus` (e.g.
        shared with a subsequent batched decode).  Raw sequences are
        compiled once up front, so every EM iteration reuses the same
        concatenated token arrays, bucket assignments and padded index
        tensors: per iteration the corpus is re-scored with one vectorized
        emission call, the backend runs one gather + recursion + scatter
        per bucket, and the M-step consumes the stacked statistics directly
        — no per-sequence Python anywhere in the loop.

        Subclasses overriding :meth:`e_step` or :meth:`m_step` keep their
        semantics: the compiled fast path is only taken when both steps are
        the stock implementations, otherwise each iteration runs through
        the overridable per-sequence methods.
        """
        if isinstance(sequences, CompiledCorpus):
            corpus, raw_sequences = sequences, sequences.sequences
        else:
            if not sequences:
                raise ValidationError("sequences must be non-empty")
            corpus, raw_sequences = None, sequences

        if (
            type(self).e_step is not BaumWelchTrainer.e_step
            or type(self).m_step is not BaumWelchTrainer.m_step
        ):
            return self._fit_loop(
                model,
                lambda: self.e_step(model, raw_sequences),
                lambda stats: self.m_step(model, raw_sequences, stats),
            )

        if corpus is None:
            engine = self.engine if self.engine is not None else model.inference_engine
            corpus = engine.compile(raw_sequences)

        def corpus_e_step() -> CorpusPosteriors:
            engine = self.engine if self.engine is not None else model.inference_engine
            scores_ext = corpus.score(model.emissions)
            return engine.posteriors_corpus(
                model.startprob, model.transmat, corpus, scores_ext
            )

        return self._fit_loop(
            model, corpus_e_step, lambda stats: self._m_step_corpus(model, corpus, stats)
        )

    def _fit_loop(self, model: HMM, run_e_step, run_m_step) -> FitResult:
        """Shared EM driver: convergence check, history, non-convergence warning."""
        history: list[float] = []
        converged = False
        n_iter = 0
        for n_iter in range(1, self.max_iter + 1):
            stats = run_e_step()
            history.append(stats.log_likelihood)
            if len(history) >= 2 and abs(history[-1] - history[-2]) < self.tol:
                converged = True
                break
            run_m_step(stats)

        if not converged and self.warn_on_no_convergence:
            warnings.warn(
                f"EM stopped after {n_iter} iterations without converging",
                ConvergenceWarning,
                stacklevel=3,
            )
        final_ll = history[-1] if history else float("-inf")
        return FitResult(
            log_likelihood=final_ll, history=history, n_iter=n_iter, converged=converged
        )
