"""Long-sequence inference: chunked Viterbi with overlap stitching, and
checkpointed forward-backward with O(sqrt(T) * K) working memory.

Every batched inference path in :mod:`repro.hmm.backends` materializes
``O(T * K)`` recursion tensors per sequence.  At sentence scale that is the
point — one padded bucket, one matmul per timestep — but a single
chromosome-scale annotation track (T in the millions) either exhausts
memory or degenerates into one serial ``(1, K) @ (K, K)`` recursion with
Python-loop overhead per timestep.  This module provides the genome-scale
counterparts:

* :func:`chunked_viterbi` — split the sequence into overlapping windows of
  ``decode_window`` tokens, decode a whole *group* of windows batched as
  one bucket through the fused log-domain Viterbi kernel (turning the
  serial O(T) recursion into B-way data parallelism over windows), then
  stitch adjacent windows' paths at a high-confidence agreement run inside
  the overlap.  Window 0 starts from the true ``log pi``; later windows
  start uniform — exactly the situation of the fixed-lag streaming
  sessions, whose stabilization property (Viterbi decisions become
  independent of the start vector after a bounded lag) is what makes the
  stitch exact once the overlap exceeds the model's mixing lag.  When no
  agreement run exists (adversarial low-self-transition models), the
  overlap's labels fall back to the posterior argmax over a context
  window, and the stitch is counted as a fallback.
* :func:`checkpointed_posteriors` — exact scaled-domain forward-backward
  whose working set is ``O(sqrt(T) * K)``: the forward pass stores one
  ``(K,)`` checkpoint per ``sqrt(T)`` block, and the backward pass
  recomputes each block's forward messages from its checkpoint.  The
  ``(T, K)`` gamma output is the result itself; no other O(T * K) tensor
  exists at any point.
* :func:`streaming_log_likelihood` — forward-only scoring in ``O(K)``
  state plus one fetched block at a time.

Observations are consumed through a *source* (:class:`ArraySource` over a
precomputed table, or :class:`EmissionSource` scoring raw observations on
demand), so peak memory is bounded by the window/block size — independent
of T — whenever the caller avoids materializing the full emission table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import DimensionMismatchError, ValidationError
from repro.hmm.forward_backward import (
    SequencePosteriors,
    compute_posteriors_from_log,
)

__all__ = [
    "ArraySource",
    "EmissionSource",
    "LongDecodeResult",
    "as_source",
    "chunked_viterbi",
    "checkpointed_posteriors",
    "plan_windows",
    "score_path",
    "streaming_log_likelihood",
]

#: Smallest admissible scaling constant (mirrors the backends' guard).
_TINY = 1e-300


# ------------------------------------------------------------------ #
# Observation sources
# ------------------------------------------------------------------ #
class ArraySource:
    """Block source over a precomputed ``(T, K)`` emission log-likelihood table.

    ``fetch`` returns views, so wrapping an existing table adds no copies;
    peak memory is whatever the caller already holds.
    """

    def __init__(self, log_obs: np.ndarray) -> None:
        table = np.asarray(log_obs, dtype=np.float64)
        if table.ndim != 2:
            raise DimensionMismatchError(
                f"emission table must be 2-D (T, K), got shape {table.shape}"
            )
        if table.shape[0] < 1:
            raise ValidationError("sequences must have at least one timestep")
        self._table = table

    @property
    def length(self) -> int:
        return self._table.shape[0]

    @property
    def n_states(self) -> int:
        return self._table.shape[1]

    def fetch(self, start: int, stop: int) -> np.ndarray:  # repro: hot-path
        """``(stop - start, K)`` float64 view of rows ``start .. stop``."""
        return self._table[start:stop]


class EmissionSource:
    """Block source scoring a raw observation sequence on demand.

    The full ``(T, K)`` emission table never exists: each ``fetch`` scores
    only the requested block through the emission family's vectorized
    scorer, so decoding a genome-scale track peaks at
    ``O(window * K)`` — the bounded-memory path for
    :meth:`repro.hmm.model.HMM.decode_long`.
    """

    def __init__(self, emissions, sequence) -> None:
        self._emissions = emissions
        self._sequence = np.asarray(sequence)
        if self._sequence.shape[0] < 1:
            raise ValidationError("sequences must have at least one timestep")

    @property
    def length(self) -> int:
        return int(self._sequence.shape[0])

    @property
    def n_states(self) -> int:
        return int(self._emissions.n_states)

    def fetch(self, start: int, stop: int) -> np.ndarray:  # repro: hot-path
        """Score rows ``start .. stop`` (one vectorized emission call)."""
        return self._emissions.log_likelihoods(self._sequence[start:stop])


def as_source(source) -> "ArraySource | EmissionSource":
    """Coerce a ``(T, K)`` array into an :class:`ArraySource`; pass sources through."""
    if hasattr(source, "fetch") and hasattr(source, "length"):
        return source
    return ArraySource(source)


# ------------------------------------------------------------------ #
# Window planning
# ------------------------------------------------------------------ #
def plan_windows(length: int, window: int, overlap: int) -> list[tuple[int, int]]:
    """Overlapping window spans covering ``[0, length)``.

    Windows start every ``window - overlap`` tokens; when the stride does
    not divide evenly, one final window is pinned to ``length - window`` so
    every token is covered and all windows (except a short single-window
    sequence) have exactly ``window`` tokens.  Consecutive windows overlap
    by at least ``overlap``.
    """
    if window < 2 * overlap:
        raise ValidationError(
            f"window must be at least 2 * overlap ({2 * overlap}), got {window}"
        )
    if overlap < 1:
        raise ValidationError(f"overlap must be at least 1, got {overlap}")
    if length < 1:
        raise ValidationError(f"length must be at least 1, got {length}")
    if length <= window:
        return [(0, length)]
    stride = window - overlap
    starts = list(range(0, length - window + 1, stride))
    if starts[-1] + window < length:
        starts.append(length - window)
    return [(s, s + window) for s in starts]


# ------------------------------------------------------------------ #
# Stitching
# ------------------------------------------------------------------ #
@dataclass(frozen=True)
class LongDecodeResult:
    """Outcome of one chunked long-sequence Viterbi decode.

    Attributes
    ----------
    path:
        ``(T,)`` int64 stitched state path.
    log_joint:
        Exact joint log-probability ``log P(path, Y)`` of the *stitched*
        path (computed by streaming re-scoring, so it is meaningful even
        for fallback stitches; on agreement stitches it matches the full
        Viterbi optimum).
    n_windows:
        Number of decode windows (1 means the sequence fit one window and
        the decode was the ordinary exact kernel).
    n_agreement_stitches / n_fallback_stitches:
        How many window joins found an agreement run inside the overlap vs
        fell back to the posterior-argmax tiebreak.  Their sum is
        ``n_windows - 1``.
    max_windows_resident:
        Largest number of windows materialized simultaneously (the padded
        decode group) — the deterministic memory-ceiling introspection the
        long-sequence benchmark gates on.
    window / overlap:
        The effective knobs used for this decode.
    """

    path: np.ndarray
    log_joint: float
    n_windows: int
    n_agreement_stitches: int
    n_fallback_stitches: int
    max_windows_resident: int
    window: int
    overlap: int

    @property
    def exact_stitch(self) -> bool:
        """True when every join stitched at an agreement run (no fallbacks)."""
        return self.n_fallback_stitches == 0


def _find_agreement_cut(prev_seg: np.ndarray, cur_seg: np.ndarray) -> int | None:
    """Index (into the overlap) of the best agreement point, or None.

    Agreement positions are grouped into consecutive runs; the longest run
    wins (ties break toward the overlap's middle, where both windows have
    the most context) and the cut lands at the run's midpoint.
    """
    agree = prev_seg == cur_seg
    idx = np.flatnonzero(agree)
    if idx.size == 0:
        return None
    breaks = np.flatnonzero(np.diff(idx) > 1)
    run_starts = np.concatenate(([0], breaks + 1))
    run_ends = np.concatenate((breaks, [idx.size - 1]))
    run_lengths = run_ends - run_starts + 1
    middles = (idx[run_starts] + idx[run_ends]) / 2.0
    center = (agree.size - 1) / 2.0
    # longest run first; among equals the one whose middle is most central
    order = np.lexsort((np.abs(middles - center), -run_lengths))
    best = order[0]
    return int((idx[run_starts[best]] + idx[run_ends[best]]) // 2)


def _posterior_fallback(
    log_startprob: np.ndarray,
    log_transmat: np.ndarray,
    source,
    ov_start: int,
    ov_stop: int,
) -> np.ndarray:
    """Posterior-argmax labels for an overlap with no agreement run.

    The posteriors are computed over the overlap plus an equal-sized
    context margin on both sides (clipped to the sequence), with the true
    ``log pi`` when the context reaches position 0 and a uniform start
    otherwise — the best bounded-memory estimate available locally.
    """
    context = ov_stop - ov_start
    c0 = max(ov_start - context, 0)
    c1 = min(ov_stop + context, source.length)
    block = source.fetch(c0, c1)
    start = log_startprob if c0 == 0 else np.zeros_like(log_startprob)
    posteriors = compute_posteriors_from_log(start, log_transmat, block)
    return posteriors.gamma[ov_start - c0 : ov_stop - c0].argmax(axis=1)


def score_path(  # repro: hot-path
    log_startprob: np.ndarray,
    log_transmat: np.ndarray,
    source,
    path: np.ndarray,
    block: int = 65536,
) -> float:
    """Exact joint log-probability of a given state path, streamed in blocks.

    ``log pi[x_0] + sum_t log A[x_{t-1}, x_t] + sum_t log b_{x_t}(y_t)``
    evaluated with ``O(block * K)`` peak memory regardless of T.
    """
    length = int(path.shape[0])
    total = float(log_startprob[path[0]])
    for b0 in range(0, length, block):  # repro: loop-ok[streamed block scoring]
        b1 = min(b0 + block, length)
        rows = source.fetch(b0, b1)
        seg = path[b0:b1]
        total += float(rows[np.arange(b1 - b0), seg].sum())
        t0 = max(b0, 1)
        if t0 < b1:
            total += float(log_transmat[path[t0 - 1 : b1 - 1], path[t0:b1]].sum())
    return total


def chunked_viterbi(  # repro: hot-path
    log_startprob: np.ndarray,
    log_transmat: np.ndarray,
    source,
    *,
    window: int,
    overlap: int,
    group_size: int,
    decode_bucket: Callable[[np.ndarray, np.ndarray, np.ndarray], Sequence],
) -> LongDecodeResult:
    """Chunked long-sequence Viterbi: batched windows, stitched overlaps.

    Parameters
    ----------
    log_startprob / log_transmat:
        Log-domain model parameters.
    source:
        Block source of emission log-likelihood rows (see :func:`as_source`).
    window / overlap:
        Window plan knobs (see :func:`plan_windows`).
    group_size:
        Windows decoded together as one padded bucket; the peak working
        tensor is ``(group_size, window, K)`` — the memory ceiling.
    decode_bucket:
        ``decode_bucket(log_startprob, log_b, lengths)`` returning one
        ``(path, log_joint)`` per bucket row — the backend's fused Viterbi
        kernel.  The true ``log pi`` is folded into window 0's first
        emission row, so a zero (uniform) start vector is passed for every
        window; adding 0.0 is exact, keeping the single-window case
        bit-identical to the unchunked kernel.
    """
    if group_size < 1:
        raise ValidationError(f"group_size must be at least 1, got {group_size}")
    source = as_source(source)
    length = source.length
    n_states = source.n_states
    spans = plan_windows(length, window, overlap)
    n_windows = len(spans)

    path = np.empty(length, dtype=np.int64)
    zero_start = np.zeros(n_states)
    n_agreement = 0
    n_fallback = 0
    max_resident = 0
    single_log_joint = 0.0
    prev_path: np.ndarray | None = None
    prev_start = 0
    prev_from = 0  # first position whose label window w-1 still owns

    for g0 in range(0, n_windows, group_size):  # repro: loop-ok[sequential window groups bound peak memory]
        g1 = min(g0 + group_size, n_windows)
        span_start = spans[g0][0]
        span_stop = spans[g1 - 1][1]
        block = source.fetch(span_start, span_stop)
        wlen = spans[g0][1] - spans[g0][0]
        padded = np.empty((g1 - g0, wlen, n_states))
        for g in range(g0, g1):  # repro: loop-ok[window views into the padded bucket]
            s, e = spans[g]
            padded[g - g0] = block[s - span_start : e - span_start]
        if g0 == 0:
            padded[0, 0] += log_startprob
        lengths = np.full(g1 - g0, wlen, dtype=np.int64)
        decoded = decode_bucket(zero_start, padded, lengths)
        max_resident = max(max_resident, g1 - g0)

        for g, (window_path, window_lj) in zip(range(g0, g1), decoded):  # repro: loop-ok[stitch bookkeeping per window]
            cur_start, cur_stop = spans[g]
            if n_windows == 1:
                single_log_joint = float(window_lj)
            if prev_path is None:
                prev_path, prev_start, prev_from = window_path, cur_start, 0
                continue
            prev_stop = prev_start + prev_path.shape[0]
            ov_len = prev_stop - cur_start
            prev_seg = prev_path[cur_start - prev_start :]
            cur_seg = window_path[:ov_len]
            cut = _find_agreement_cut(prev_seg, cur_seg)
            if cut is not None:
                abs_cut = cur_start + cut
                path[prev_from : abs_cut + 1] = prev_path[
                    prev_from - prev_start : abs_cut + 1 - prev_start
                ]
                cur_from = abs_cut + 1
                n_agreement += 1
            else:
                labels = _posterior_fallback(
                    log_startprob, log_transmat, source, cur_start, prev_stop
                )
                path[prev_from:cur_start] = prev_path[
                    prev_from - prev_start : cur_start - prev_start
                ]
                path[cur_start:prev_stop] = labels
                cur_from = prev_stop
                n_fallback += 1
            prev_path, prev_start, prev_from = window_path, cur_start, cur_from

    assert prev_path is not None
    path[prev_from:] = prev_path[prev_from - prev_start :]

    if n_windows == 1:
        log_joint = single_log_joint
    else:
        log_joint = score_path(log_startprob, log_transmat, source, path)
    return LongDecodeResult(
        path=path,
        log_joint=log_joint,
        n_windows=n_windows,
        n_agreement_stitches=n_agreement,
        n_fallback_stitches=n_fallback,
        max_windows_resident=max_resident,
        window=window,
        overlap=overlap,
    )


# ------------------------------------------------------------------ #
# Checkpointed forward-backward
# ------------------------------------------------------------------ #
def _obs_weights(log_b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Max-shifted observation weights ``exp(log_b - m)`` for one block."""
    shift = np.max(log_b, axis=1)
    shift = np.where(np.isfinite(shift), shift, 0.0)
    return np.exp(log_b - shift[:, None]), shift


def checkpointed_posteriors(  # repro: hot-path
    startprob: np.ndarray,
    transmat: np.ndarray,
    source,
    checkpoint: int | None = None,
) -> SequencePosteriors:
    """Exact forward-backward with sqrt-checkpointing of the backward pass.

    The forward sweep stores one normalized ``(K,)`` message per block of
    ``checkpoint`` (default ``ceil(sqrt(T))``) timesteps; the backward
    sweep recomputes each block's forward messages from its checkpoint, so
    the working set is ``O(sqrt(T) * K)`` — only the returned gamma is
    O(T * K), and that is the result itself.  The recursions are the same
    Rabiner-scaled operations as the batched backend, so the posteriors
    match :meth:`~repro.hmm.backends.ScaledBatchedBackend.forward_backward`
    to floating-point reassociation (tested at 1e-8).
    """
    source = as_source(source)
    length = source.length
    n_states = source.n_states
    startprob = np.asarray(startprob, dtype=np.float64)
    transmat = np.asarray(transmat, dtype=np.float64)
    if checkpoint is None:
        checkpoint = max(int(np.ceil(np.sqrt(length))), 1)
    if checkpoint < 1:
        raise ValidationError(f"checkpoint must be at least 1, got {checkpoint}")
    transmat_T = np.ascontiguousarray(transmat.T)
    block_starts = list(range(0, length, checkpoint))

    # Forward sweep: carry-in checkpoints + the exact log-likelihood.
    carries: list[np.ndarray | None] = []
    alpha: np.ndarray | None = None
    log_likelihood = 0.0
    for b0 in block_starts:  # repro: loop-ok[forward checkpoint sweep]
        b1 = min(b0 + checkpoint, length)
        carries.append(None if alpha is None else alpha.copy())
        obs, shift = _obs_weights(source.fetch(b0, b1))
        scales = np.empty(b1 - b0)
        for i in range(b1 - b0):  # repro: loop-ok[inherent time recursion]
            if b0 + i == 0:
                raw = startprob * obs[0]
            else:
                raw = (alpha @ transmat) * obs[i]
            scales[i] = max(float(raw.sum()), _TINY)
            alpha = raw / scales[i]
        log_likelihood += float(
            np.log(np.maximum(scales, _TINY)).sum() + shift.sum()
        )

    # Backward sweep: recompute each block's forward messages from its
    # checkpoint, run the scaled backward recursion across it, and
    # accumulate gamma / xi on the way.
    gamma = np.empty((length, n_states))
    xi_sum = np.zeros((n_states, n_states))
    w_carry: np.ndarray | None = None  # obs[b1] * beta_hat[b1] / c[b1]
    for j in range(len(block_starts) - 1, -1, -1):  # repro: loop-ok[backward checkpoint sweep]
        b0 = block_starts[j]
        b1 = min(b0 + checkpoint, length)
        n_rows = b1 - b0
        obs, _ = _obs_weights(source.fetch(b0, b1))
        alpha_hat = np.empty((n_rows, n_states))
        scales = np.empty(n_rows)
        alpha = carries[j]
        for i in range(n_rows):  # repro: loop-ok[forward recomputation within block]
            if b0 + i == 0:
                raw = startprob * obs[0]
            else:
                raw = (alpha @ transmat) * obs[i]
            scales[i] = max(float(raw.sum()), _TINY)
            alpha = raw / scales[i]
            alpha_hat[i] = alpha
        beta_hat = np.empty((n_rows, n_states))
        if b1 == length:
            beta_hat[n_rows - 1] = 1.0
        else:
            assert w_carry is not None
            beta_hat[n_rows - 1] = w_carry @ transmat_T
        for i in range(n_rows - 2, -1, -1):  # repro: loop-ok[inherent backward recursion]
            beta_hat[i] = (obs[i + 1] * beta_hat[i + 1] / scales[i + 1]) @ transmat_T
        block_gamma = alpha_hat * beta_hat
        block_gamma /= np.maximum(block_gamma.sum(axis=1, keepdims=True), _TINY)
        gamma[b0:b1] = block_gamma
        xi_weight = obs * beta_hat / scales[:, None]
        if n_rows > 1:
            xi_sum += transmat * (alpha_hat[:-1].T @ xi_weight[1:])
        if b0 > 0:
            carry_in = carries[j]
            assert carry_in is not None
            xi_sum += transmat * np.outer(carry_in, xi_weight[0])
        w_carry = xi_weight[0]

    return SequencePosteriors(
        gamma=gamma, xi_sum=xi_sum, log_likelihood=log_likelihood
    )


def streaming_log_likelihood(  # repro: hot-path
    startprob: np.ndarray,
    transmat: np.ndarray,
    source,
    block: int = 65536,
) -> float:
    """Log marginal likelihood via a forward-only sweep in ``O(K)`` state.

    The same scaled forward recursion as :func:`checkpointed_posteriors`,
    without checkpoints: nothing is retained beyond the running message
    and one fetched block, so scoring is memory-bounded at any T.
    """
    source = as_source(source)
    length = source.length
    startprob = np.asarray(startprob, dtype=np.float64)
    transmat = np.asarray(transmat, dtype=np.float64)
    alpha: np.ndarray | None = None
    log_likelihood = 0.0
    for b0 in range(0, length, block):  # repro: loop-ok[streamed block sweep]
        b1 = min(b0 + block, length)
        obs, shift = _obs_weights(source.fetch(b0, b1))
        scales = np.empty(b1 - b0)
        for i in range(b1 - b0):  # repro: loop-ok[inherent time recursion]
            if b0 + i == 0:
                raw = startprob * obs[0]
            else:
                raw = (alpha @ transmat) * obs[i]
            scales[i] = max(float(raw.sum()), _TINY)
            alpha = raw / scales[i]
        log_likelihood += float(
            np.log(np.maximum(scales, _TINY)).sum() + shift.sum()
        )
    return log_likelihood
