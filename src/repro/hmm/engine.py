"""Batched HMM inference engine with pluggable numerical backends.

:class:`InferenceEngine` is the single entry point through which the model
(:class:`~repro.hmm.model.HMM`), the EM trainer
(:class:`~repro.hmm.baum_welch.BaumWelchTrainer`) and the supervised
classifiers run forward-backward, Viterbi decoding and likelihood scoring.
It adds two things on top of the raw backends in
:mod:`repro.hmm.backends`:

* **Batching** — every public method accepts a whole collection of
  per-sequence emission log-likelihood tables, so the backend can group
  sequences into padded length-buckets and run each timestep as one
  ``(B, K) @ (K, K)`` matmul over the bucket.
* **Parameter caching** — derived parameters (``log(pi)``, ``log(A)`` and
  float64 copies of ``pi`` / ``A``) are computed once and reused across
  calls as long as the model parameters are unchanged, so repeated decodes
  between EM iterations do not re-derive them per sequence.

Backend selection defaults to the process-wide
:class:`repro.core.config.InferenceConfig` (see
:func:`repro.core.config.set_inference_config` and the
:func:`repro.core.config.inference_backend` context manager); pass
``backend="log"`` explicitly to force the per-sequence log-domain
reference implementation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.hmm.backends import (
    BatchedStreamingSession,
    InferenceBackend,
    StreamingSession,
    build_backend,
)
from repro.hmm.corpus import CompiledCorpus, CorpusPosteriors
from repro.hmm.forward_backward import SequencePosteriors
from repro.hmm.longseq import (
    LongDecodeResult,
    checkpointed_posteriors,
    streaming_log_likelihood,
)
from repro.utils.maths import safe_log


class _CachedParams:
    """Float64 parameter views plus lazily derived logs, validity-checked.

    The cache is validated with :func:`numpy.array_equal` against stored
    copies — an ``O(K^2)`` comparison that is negligible next to any
    inference call — so in-place mutation of the model parameters is
    detected, not just rebinding.
    """

    __slots__ = ("startprob", "transmat", "_log_pi", "_log_A")

    def __init__(self, startprob: np.ndarray, transmat: np.ndarray) -> None:
        self.startprob = np.array(startprob, dtype=np.float64)
        self.transmat = np.array(transmat, dtype=np.float64)
        self._log_pi: np.ndarray | None = None
        self._log_A: np.ndarray | None = None

    def matches(self, startprob: np.ndarray, transmat: np.ndarray) -> bool:
        return np.array_equal(startprob, self.startprob) and np.array_equal(
            transmat, self.transmat
        )

    @property
    def log_startprob(self) -> np.ndarray:
        if self._log_pi is None:
            self._log_pi = safe_log(self.startprob)
        return self._log_pi

    @property
    def log_transmat(self) -> np.ndarray:
        if self._log_A is None:
            self._log_A = safe_log(self.transmat)
        return self._log_A


class InferenceEngine:
    """Facade running batched HMM inference through a numerical backend.

    Parameters
    ----------
    backend:
        A backend name (``"scaled"`` / ``"log"``), a ready
        :class:`~repro.hmm.backends.InferenceBackend` instance, or ``None``
        to follow the process-wide default from
        :func:`repro.core.config.get_inference_config`.
    bucket_size:
        Maximum sequences per padded length-bucket (scaled backend only);
        ``None`` follows the process-wide default.
    """

    def __init__(
        self,
        backend: str | InferenceBackend | None = None,
        bucket_size: int | None = None,
        n_workers: int | None = None,
    ) -> None:
        if isinstance(backend, InferenceBackend):
            if bucket_size is not None or n_workers is not None:
                raise ValueError(
                    "bucket_size/n_workers cannot be combined with a ready "
                    "backend instance; configure the backend directly"
                )
            self.backend = backend
        else:
            if backend is None or bucket_size is None or n_workers is None:
                # Imported lazily: repro.core imports the hmm layer, so a
                # top-level import here would be circular.
                from repro.core.config import get_inference_config

                cfg = get_inference_config()
                backend = backend if backend is not None else cfg.backend
                bucket_size = bucket_size if bucket_size is not None else cfg.bucket_size
                n_workers = n_workers if n_workers is not None else cfg.n_workers
            self.backend = build_backend(
                backend, bucket_size=bucket_size, n_workers=n_workers
            )
        self._params: _CachedParams | None = None

    @property
    def backend_name(self) -> str:
        """Name of the active backend (``"scaled"`` or ``"log"``)."""
        return self.backend.name

    # -------------------------------------------------------------- #
    def _cached(self, startprob: np.ndarray, transmat: np.ndarray) -> _CachedParams:
        params = self._params
        if params is None or not params.matches(startprob, transmat):
            params = _CachedParams(startprob, transmat)
            self._params = params
        return params

    # -------------------------------------------------------------- #
    # Batched primitives
    # -------------------------------------------------------------- #
    def _dispatch(self, method_name, startprob, transmat, log_obs_seqs):
        p = self._cached(startprob, transmat)
        wants_logs = self.backend.wants_log_params
        return getattr(self.backend, method_name)(
            p.startprob,
            p.transmat,
            log_obs_seqs,
            log_startprob=p.log_startprob if wants_logs else None,
            log_transmat=p.log_transmat if wants_logs else None,
        )

    @staticmethod
    def _long_indices(log_obs_seqs: Sequence[np.ndarray]) -> list[int]:
        """Positions of sequences exceeding the configured long threshold.

        Resolved from the process-wide config at call time, so
        :func:`~repro.core.config.inference_backend`-style overrides of
        ``long_threshold`` take effect without rebuilding the engine.
        """
        from repro.core.config import get_inference_config

        threshold = get_inference_config().long_threshold
        return [n for n, lo in enumerate(log_obs_seqs) if len(lo) > threshold]

    def posteriors_batch(
        self,
        startprob: np.ndarray,
        transmat: np.ndarray,
        log_obs_seqs: Sequence[np.ndarray],
    ) -> list[SequencePosteriors]:
        """Forward-backward posteriors for every emission table, in order.

        Sequences longer than ``InferenceConfig.long_threshold`` are routed
        through :meth:`posteriors_long` (sqrt-checkpointed, bounded working
        memory); the rest go through the backend's padded buckets.
        """
        long_idx = self._long_indices(log_obs_seqs)
        if not long_idx:
            return self._dispatch("forward_backward", startprob, transmat, log_obs_seqs)
        long_set = set(long_idx)
        short_pos = [n for n in range(len(log_obs_seqs)) if n not in long_set]
        results: list[SequencePosteriors] = [None] * len(log_obs_seqs)
        if short_pos:
            short = self._dispatch(
                "forward_backward",
                startprob,
                transmat,
                [log_obs_seqs[n] for n in short_pos],
            )
            for n, res in zip(short_pos, short):
                results[n] = res
        for n in long_idx:
            results[n] = self.posteriors_long(startprob, transmat, log_obs_seqs[n])
        return results

    def viterbi_batch(
        self,
        startprob: np.ndarray,
        transmat: np.ndarray,
        log_obs_seqs: Sequence[np.ndarray],
    ) -> list[tuple[np.ndarray, float]]:
        """Most likely state path and joint log-probability per table.

        Sequences longer than ``InferenceConfig.long_threshold`` are routed
        through the chunked :meth:`viterbi_long` decode instead of a padded
        bucket row.
        """
        long_idx = self._long_indices(log_obs_seqs)
        if not long_idx:
            return self._dispatch("viterbi", startprob, transmat, log_obs_seqs)
        long_set = set(long_idx)
        short_pos = [n for n in range(len(log_obs_seqs)) if n not in long_set]
        results: list[tuple[np.ndarray, float]] = [None] * len(log_obs_seqs)
        if short_pos:
            short = self._dispatch(
                "viterbi", startprob, transmat, [log_obs_seqs[n] for n in short_pos]
            )
            for n, res in zip(short_pos, short):
                results[n] = res
        for n in long_idx:
            long_res = self.viterbi_long(startprob, transmat, log_obs_seqs[n])
            results[n] = (long_res.path, long_res.log_joint)
        return results

    def log_likelihood_batch(
        self,
        startprob: np.ndarray,
        transmat: np.ndarray,
        log_obs_seqs: Sequence[np.ndarray],
    ) -> np.ndarray:
        """Log marginal likelihood of every emission table (1-D array).

        Sequences longer than ``InferenceConfig.long_threshold`` are scored
        by the forward-only streamed sweep (:meth:`log_likelihood_long`).
        """
        long_idx = self._long_indices(log_obs_seqs)
        if not long_idx:
            return self._dispatch("log_likelihood", startprob, transmat, log_obs_seqs)
        long_set = set(long_idx)
        short_pos = [n for n in range(len(log_obs_seqs)) if n not in long_set]
        out = np.empty(len(log_obs_seqs))
        if short_pos:
            out[short_pos] = self._dispatch(
                "log_likelihood",
                startprob,
                transmat,
                [log_obs_seqs[n] for n in short_pos],
            )
        for n in long_idx:
            out[n] = self.log_likelihood_long(startprob, transmat, log_obs_seqs[n])
        return out

    # -------------------------------------------------------------- #
    # Long-sequence (chunked / checkpointed) entry points
    # -------------------------------------------------------------- #
    def _long_knobs(
        self, window: int | None, overlap: int | None
    ) -> tuple[int, int]:
        from repro.core.config import get_inference_config

        cfg = get_inference_config()
        window = cfg.decode_window if window is None else int(window)
        overlap = cfg.decode_overlap if overlap is None else int(overlap)
        return window, overlap

    def viterbi_long(
        self,
        startprob: np.ndarray,
        transmat: np.ndarray,
        source,
        window: int | None = None,
        overlap: int | None = None,
        group_size: int | None = None,
    ) -> LongDecodeResult:
        """Chunked Viterbi decode of one long sequence.

        ``source`` is a ``(T, K)`` emission log-likelihood table or a block
        source (:func:`repro.hmm.longseq.as_source`); knobs default to
        ``InferenceConfig.decode_window`` / ``decode_overlap`` resolved at
        call time.  Peak working memory is ``O(group_size * window * K)``
        regardless of T; the result carries stitch diagnostics (see
        :class:`~repro.hmm.longseq.LongDecodeResult`).
        """
        window, overlap = self._long_knobs(window, overlap)
        if group_size is None:
            group_size = getattr(self.backend, "bucket_size", 64)
        p = self._cached(startprob, transmat)
        return self.backend.viterbi_long(
            p.startprob,
            p.transmat,
            source,
            window=window,
            overlap=overlap,
            group_size=group_size,
            log_startprob=p.log_startprob,
            log_transmat=p.log_transmat,
        )

    def posteriors_long(
        self,
        startprob: np.ndarray,
        transmat: np.ndarray,
        source,
        checkpoint: int | None = None,
    ) -> SequencePosteriors:
        """Exact posteriors of one long sequence with O(sqrt(T) * K) working memory.

        Backend-independent: the sqrt-checkpointed recursion
        (:func:`repro.hmm.longseq.checkpointed_posteriors`) matches the
        batched backends to floating-point reassociation (1e-8 tested).
        """
        p = self._cached(startprob, transmat)
        return checkpointed_posteriors(
            p.startprob, p.transmat, source, checkpoint=checkpoint
        )

    def log_likelihood_long(
        self,
        startprob: np.ndarray,
        transmat: np.ndarray,
        source,
    ) -> float:
        """Log marginal likelihood of one long sequence, streamed in O(K) state."""
        p = self._cached(startprob, transmat)
        return streaming_log_likelihood(p.startprob, p.transmat, source)

    # -------------------------------------------------------------- #
    # Compiled-corpus entry points
    # -------------------------------------------------------------- #
    def compile(self, sequences) -> CompiledCorpus:
        """Compile a dataset once for repeated inference through this engine.

        The corpus is bucketed with the backend's ``bucket_size`` so its
        precomputed padded index tensors line up exactly with the buckets
        the backend would otherwise rebuild on every call.  The result is
        emission- and parameter-agnostic: one compile serves every EM
        iteration and every decode over the same dataset.

        Sequences longer than ``InferenceConfig.long_threshold`` compile
        into window-decode plans (``corpus.long_windows``) instead of
        padded bucket rows, so corpus-level decode/score/posterior calls
        route them through the chunked long-sequence kernels.
        """
        from repro.core.config import get_inference_config

        cfg = get_inference_config()
        return CompiledCorpus(
            sequences,
            bucket_size=getattr(self.backend, "bucket_size", cfg.bucket_size),
            long_threshold=cfg.long_threshold,
            decode_window=cfg.decode_window,
            decode_overlap=cfg.decode_overlap,
        )

    def _dispatch_corpus(self, method_name, startprob, transmat, corpus, scores_ext):
        p = self._cached(startprob, transmat)
        wants_logs = self.backend.wants_log_params
        return getattr(self.backend, method_name)(
            p.startprob,
            p.transmat,
            corpus,
            scores_ext,
            log_startprob=p.log_startprob if wants_logs else None,
            log_transmat=p.log_transmat if wants_logs else None,
        )

    def posteriors_corpus(
        self,
        startprob: np.ndarray,
        transmat: np.ndarray,
        corpus: CompiledCorpus,
        scores_ext: np.ndarray,
    ) -> CorpusPosteriors:
        """Stacked forward-backward statistics over a compiled corpus.

        ``scores_ext`` is the ``(n_tokens + 1, K)`` emission table from
        :meth:`CompiledCorpus.score`; the scaled backend gathers each
        padded bucket from it with one fancy-index and scatters the
        posteriors straight back into the concatenated layout, so an EM
        iteration runs with zero per-sequence Python.
        """
        return self._dispatch_corpus(
            "forward_backward_corpus", startprob, transmat, corpus, scores_ext
        )

    def viterbi_corpus(
        self,
        startprob: np.ndarray,
        transmat: np.ndarray,
        corpus: CompiledCorpus,
        scores_ext: np.ndarray,
    ) -> list[tuple[np.ndarray, float]]:
        """Viterbi path and joint log-probability per corpus sequence."""
        return self._dispatch_corpus(
            "viterbi_corpus", startprob, transmat, corpus, scores_ext
        )

    def log_likelihood_corpus(
        self,
        startprob: np.ndarray,
        transmat: np.ndarray,
        corpus: CompiledCorpus,
        scores_ext: np.ndarray,
    ) -> np.ndarray:
        """Log marginal likelihood of every corpus sequence (1-D array)."""
        return self._dispatch_corpus(
            "log_likelihood_corpus", startprob, transmat, corpus, scores_ext
        )

    # -------------------------------------------------------------- #
    # Single-sequence conveniences
    # -------------------------------------------------------------- #
    def posteriors(
        self, startprob: np.ndarray, transmat: np.ndarray, log_obs: np.ndarray
    ) -> SequencePosteriors:
        """Forward-backward posteriors of one sequence."""
        return self.posteriors_batch(startprob, transmat, [log_obs])[0]

    def viterbi(
        self, startprob: np.ndarray, transmat: np.ndarray, log_obs: np.ndarray
    ) -> tuple[np.ndarray, float]:
        """Viterbi path and joint log-probability of one sequence."""
        return self.viterbi_batch(startprob, transmat, [log_obs])[0]

    def log_likelihood(
        self, startprob: np.ndarray, transmat: np.ndarray, log_obs: np.ndarray
    ) -> float:
        """Log marginal likelihood of one sequence."""
        return float(self.log_likelihood_batch(startprob, transmat, [log_obs])[0])

    # -------------------------------------------------------------- #
    # Streaming
    # -------------------------------------------------------------- #
    def start_stream(
        self,
        startprob: np.ndarray,
        transmat: np.ndarray,
        lag: int | None = None,
    ) -> StreamingSession:
        """Open an incremental inference session for one online sequence.

        The session consumes one emission log-likelihood row at a time and
        exposes per-step filtering posteriors plus fixed-lag Viterbi labels
        (see :class:`~repro.hmm.backends.StreamingSession`).  ``log(pi)`` /
        ``log(A)`` come from the engine's parameter cache, so opening many
        sessions against the same model re-derives nothing.

        Parameters
        ----------
        startprob, transmat:
            Probability-domain model parameters.
        lag:
            Fixed lag of the sliding Viterbi window; ``None`` defers all
            labels to ``finish()`` (exact full-sequence Viterbi).
        """
        p = self._cached(startprob, transmat)
        return StreamingSession(p.log_startprob, p.log_transmat, lag=lag)

    def start_stream_batch(
        self,
        startprob: np.ndarray,
        transmat: np.ndarray,
        lags: Sequence[int | None] = (),
    ) -> BatchedStreamingSession:
        """Open a batched incremental session over many concurrent streams.

        Each tick steps every advancing stream with one vectorized
        ``(B, K, K)`` propagation instead of B single-stream session steps,
        while staying bit-identical per stream to
        :meth:`start_stream` sessions (see
        :class:`~repro.hmm.backends.BatchedStreamingSession`).  Streams can
        also be added after construction via ``add_stream``.

        Parameters
        ----------
        startprob, transmat:
            Probability-domain model parameters (logs come from the
            engine's parameter cache).
        lags:
            Per-stream fixed lags for the streams opened immediately
            (``None`` entries defer all labels to ``finish``).
        """
        p = self._cached(startprob, transmat)
        return BatchedStreamingSession(p.log_startprob, p.log_transmat, lags=lags)


def build_engine(
    backend: str | InferenceBackend | None = None,
    bucket_size: int | None = None,
    n_workers: int | None = None,
) -> InferenceEngine:
    """Construct an :class:`InferenceEngine` (thin convenience wrapper)."""
    return InferenceEngine(backend=backend, bucket_size=bucket_size, n_workers=n_workers)
