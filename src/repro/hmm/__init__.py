"""Hidden Markov Model substrate.

Everything the paper's dHMM builds on: emission families, the batched
scaled-domain inference engine (with the log-space recursions kept as a
reference backend), Viterbi decoding, Baum-Welch EM training, supervised
(counting) estimation and sequence sampling.
"""

from repro.hmm.emissions import (
    BernoulliEmission,
    CategoricalEmission,
    EmissionModel,
    GaussianEmission,
)
from repro.hmm.backends import (
    InferenceBackend,
    LogDomainBackend,
    ScaledBatchedBackend,
    StreamingSession,
    StreamStep,
    available_backends,
    build_backend,
    viterbi_backpointer_dtype,
)
from repro.hmm.corpus import (
    CompiledCorpus,
    CorpusBucket,
    CorpusPosteriors,
    LongSequenceWindows,
    compile_corpus,
)
from repro.hmm.engine import InferenceEngine, build_engine
from repro.hmm.longseq import (
    ArraySource,
    EmissionSource,
    LongDecodeResult,
    as_source,
    checkpointed_posteriors,
    chunked_viterbi,
    plan_windows,
    streaming_log_likelihood,
)
from repro.hmm.forward_backward import (
    SequencePosteriors,
    log_backward,
    log_forward,
    compute_posteriors,
    compute_posteriors_from_log,
    sequence_log_likelihood,
)
from repro.hmm.viterbi import viterbi_decode, viterbi_decode_from_log
from repro.hmm.model import HMM
from repro.hmm.baum_welch import BaumWelchTrainer, EStepStatistics, FitResult
from repro.hmm.transition_updaters import (
    MaximumLikelihoodTransitionUpdater,
    TransitionUpdater,
)
from repro.hmm.supervised import estimate_supervised_parameters

__all__ = [
    "EmissionModel",
    "GaussianEmission",
    "CategoricalEmission",
    "BernoulliEmission",
    "InferenceBackend",
    "InferenceEngine",
    "ScaledBatchedBackend",
    "LogDomainBackend",
    "StreamingSession",
    "StreamStep",
    "available_backends",
    "build_backend",
    "build_engine",
    "viterbi_backpointer_dtype",
    "CompiledCorpus",
    "CorpusBucket",
    "CorpusPosteriors",
    "LongSequenceWindows",
    "compile_corpus",
    "ArraySource",
    "EmissionSource",
    "LongDecodeResult",
    "as_source",
    "checkpointed_posteriors",
    "chunked_viterbi",
    "plan_windows",
    "streaming_log_likelihood",
    "SequencePosteriors",
    "log_forward",
    "log_backward",
    "compute_posteriors",
    "compute_posteriors_from_log",
    "sequence_log_likelihood",
    "viterbi_decode",
    "viterbi_decode_from_log",
    "HMM",
    "BaumWelchTrainer",
    "EStepStatistics",
    "FitResult",
    "TransitionUpdater",
    "MaximumLikelihoodTransitionUpdater",
    "estimate_supervised_parameters",
]
