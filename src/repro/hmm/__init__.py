"""Hidden Markov Model substrate.

Everything the paper's dHMM builds on: emission families, log-space
forward-backward inference, Viterbi decoding, Baum-Welch EM training,
supervised (counting) estimation and sequence sampling.
"""

from repro.hmm.emissions import (
    BernoulliEmission,
    CategoricalEmission,
    EmissionModel,
    GaussianEmission,
)
from repro.hmm.forward_backward import (
    SequencePosteriors,
    log_backward,
    log_forward,
    compute_posteriors,
    sequence_log_likelihood,
)
from repro.hmm.viterbi import viterbi_decode
from repro.hmm.model import HMM
from repro.hmm.baum_welch import BaumWelchTrainer, EStepStatistics, FitResult
from repro.hmm.transition_updaters import (
    MaximumLikelihoodTransitionUpdater,
    TransitionUpdater,
)
from repro.hmm.supervised import estimate_supervised_parameters

__all__ = [
    "EmissionModel",
    "GaussianEmission",
    "CategoricalEmission",
    "BernoulliEmission",
    "SequencePosteriors",
    "log_forward",
    "log_backward",
    "compute_posteriors",
    "sequence_log_likelihood",
    "viterbi_decode",
    "HMM",
    "BaumWelchTrainer",
    "EStepStatistics",
    "FitResult",
    "TransitionUpdater",
    "MaximumLikelihoodTransitionUpdater",
    "estimate_supervised_parameters",
]
