"""Pluggable M-step updates for the transition matrix.

The only place where the dHMM differs from the classical Baum-Welch
algorithm is the M-step for the transition matrix ``A``.  The trainer
therefore delegates that update to a :class:`TransitionUpdater`; the plain
maximum-likelihood updater lives here, and the diversity-regularized updater
(projected gradient ascent on counts + DPP log-det) lives in
:mod:`repro.core.transition_prior`.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.utils.maths import normalize_rows


class TransitionUpdater(abc.ABC):
    """Strategy object computing the M-step update of the transition matrix."""

    @abc.abstractmethod
    def update(self, expected_counts: np.ndarray, current: np.ndarray) -> np.ndarray:
        """Return the new transition matrix.

        Parameters
        ----------
        expected_counts:
            ``(K, K)`` matrix of expected transition counts
            ``sum_n sum_t q(x_{t-1}=i, x_t=j)`` accumulated over all
            training sequences in the E-step (or raw counts in the
            supervised case).
        current:
            The transition matrix from the previous iteration, used as the
            starting point by iterative updaters.
        """

    def objective(self, expected_counts: np.ndarray, transmat: np.ndarray) -> float:
        """Objective value this updater maximizes (for convergence traces)."""
        safe = np.clip(transmat, 1e-300, None)
        return float(np.sum(expected_counts * np.log(safe)))


class MaximumLikelihoodTransitionUpdater(TransitionUpdater):
    """Classical Baum-Welch closed-form update: normalize expected counts.

    An optional pseudocount implements simple Dirichlet smoothing, which is
    also what the "Optimized HMM" baseline uses.
    """

    def __init__(self, pseudocount: float = 0.0) -> None:
        if pseudocount < 0:
            raise ValueError(f"pseudocount must be non-negative, got {pseudocount}")
        self.pseudocount = pseudocount

    def update(self, expected_counts: np.ndarray, current: np.ndarray) -> np.ndarray:
        counts = np.asarray(expected_counts, dtype=np.float64)
        return normalize_rows(counts, pseudocount=self.pseudocount)
