"""Supervised (fully observed) HMM parameter estimation by counting.

When the hidden states are observed during training (the paper's OCR
setting), maximum likelihood reduces to frequency counting: ``pi`` from the
first state of every sequence, ``A`` from consecutive state pairs, and the
emission parameters from per-state observation statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.maths import normalize_rows


@dataclass
class SupervisedCounts:
    """Raw counts extracted from a labeled corpus."""

    start_counts: np.ndarray
    transition_counts: np.ndarray
    state_counts: np.ndarray


def count_transitions(
    label_sequences: Sequence[np.ndarray], n_states: int
) -> SupervisedCounts:
    """Count initial states, transitions and state occupancies."""
    if n_states < 1:
        raise ValidationError(f"n_states must be positive, got {n_states}")
    start_counts = np.zeros(n_states)
    transition_counts = np.zeros((n_states, n_states))
    state_counts = np.zeros(n_states)
    for seq in label_sequences:
        labels = np.asarray(seq, dtype=np.int64)
        if labels.size == 0:
            continue
        if labels.min() < 0 or labels.max() >= n_states:
            raise ValidationError("label outside the valid state range")
        start_counts[labels[0]] += 1.0
        np.add.at(state_counts, labels, 1.0)
        if labels.size > 1:
            np.add.at(transition_counts, (labels[:-1], labels[1:]), 1.0)
    return SupervisedCounts(
        start_counts=start_counts,
        transition_counts=transition_counts,
        state_counts=state_counts,
    )


def estimate_supervised_parameters(
    label_sequences: Sequence[np.ndarray],
    n_states: int,
    pseudocount: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Count-based estimates of ``(pi, A)`` from labeled sequences.

    Parameters
    ----------
    label_sequences:
        Integer state sequences observed during training.
    n_states:
        Size of the state space ``K``.
    pseudocount:
        Additive (Laplace) smoothing applied to both ``pi`` and the rows of
        ``A``; a small positive value avoids zero transition probabilities
        for pairs never seen in training.

    Returns
    -------
    (startprob, transmat)
    """
    if pseudocount < 0:
        raise ValidationError(f"pseudocount must be non-negative, got {pseudocount}")
    counts = count_transitions(label_sequences, n_states)

    start = counts.start_counts + pseudocount
    total = start.sum()
    startprob = start / total if total > 0 else np.full(n_states, 1.0 / n_states)
    # normalize_rows maps all-zero rows (states with no outgoing transition
    # observed and pseudocount=0) to uniform, so the estimate is always a
    # valid row-stochastic matrix rather than a degenerate NaN/zero row.
    transmat = normalize_rows(counts.transition_counts, pseudocount=pseudocount)
    return startprob, transmat
