"""The Hidden Markov Model container class.

``HMM`` bundles the three parameter blocks of the paper's notation,
``lambda = (pi, A, B)``:

* ``startprob`` — the initial state distribution ``pi``;
* ``transmat`` — the row-stochastic transition matrix ``A``;
* ``emissions`` — an :class:`~repro.hmm.emissions.base.EmissionModel`
  holding ``B``.

The class offers inference (scoring, posteriors, Viterbi decoding) and
sampling; training is delegated to :class:`~repro.hmm.baum_welch.BaumWelchTrainer`
(unsupervised) and :func:`~repro.hmm.supervised.estimate_supervised_parameters`
(supervised), both of which work for the plain HMM and the dHMM alike.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.hmm.corpus import CompiledCorpus
from repro.hmm.emissions.base import EmissionModel
from repro.hmm.engine import InferenceEngine
from repro.hmm.forward_backward import SequencePosteriors
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_probability_matrix, check_probability_vector


class HMM:
    """First-order Hidden Markov Model with pluggable emissions.

    Parameters
    ----------
    startprob:
        Initial state distribution ``pi`` of length ``K``.
    transmat:
        Row-stochastic ``K x K`` transition matrix ``A``.
    emissions:
        Emission model ``B`` covering the same ``K`` states.
    engine:
        Optional :class:`~repro.hmm.engine.InferenceEngine` running all
        inference for this model.  When omitted, an engine following the
        process-wide :class:`~repro.core.config.InferenceConfig` is built
        lazily (and rebuilt if the configuration changes).
    """

    def __init__(
        self,
        startprob: np.ndarray,
        transmat: np.ndarray,
        emissions: EmissionModel,
        engine: InferenceEngine | None = None,
    ) -> None:
        self.startprob = check_probability_vector(startprob, "startprob")
        self.transmat = check_probability_matrix(transmat, "transmat")
        if self.transmat.shape[0] != self.transmat.shape[1]:
            raise ValidationError("transmat must be square")
        if self.startprob.shape[0] != self.transmat.shape[0]:
            raise ValidationError("startprob and transmat disagree on the number of states")
        if emissions.n_states != self.startprob.shape[0]:
            raise ValidationError("emission model covers a different number of states")
        self.emissions = emissions
        self._engine = engine
        self._auto_engine: InferenceEngine | None = None
        self._auto_engine_config = None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def random_init(
        cls,
        emissions: EmissionModel,
        seed: SeedLike = None,
        dirichlet_concentration: float = 3.0,
    ) -> "HMM":
        """Random HMM with Dirichlet-sampled ``pi`` and rows of ``A``.

        The concentration default of 3 matches the paper's toy-experiment
        initialization ``Dir(eta_i = 3)``.
        """
        rng = as_generator(seed)
        k = emissions.n_states
        startprob = rng.dirichlet(np.full(k, dirichlet_concentration))
        transmat = rng.dirichlet(np.full(k, dirichlet_concentration), size=k)
        return cls(startprob, transmat, emissions)

    @property
    def n_states(self) -> int:
        """Number of hidden states ``K``."""
        return self.startprob.shape[0]

    def copy(self) -> "HMM":
        """Deep copy of the model (parameters and emissions).

        An explicitly supplied inference engine is shared with the copy;
        auto-configured engines are rebuilt lazily.
        """
        return HMM(
            self.startprob.copy(),
            self.transmat.copy(),
            self.emissions.copy(),
            engine=self._engine,
        )

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    @property
    def inference_engine(self) -> InferenceEngine:
        """The engine running inference for this model.

        An explicitly supplied engine wins; otherwise one is built from the
        process-wide :class:`~repro.core.config.InferenceConfig` and kept
        until that configuration changes.
        """
        if self._engine is not None:
            return self._engine
        from repro.core.config import get_inference_config

        config = get_inference_config()
        if self._auto_engine is None or self._auto_engine_config != config:
            self._auto_engine = InferenceEngine(
                backend=config.backend, bucket_size=config.bucket_size
            )
            self._auto_engine_config = config
        return self._auto_engine

    def log_likelihood(self, sequence: np.ndarray) -> float:
        """Log marginal likelihood ``log P(Y | lambda)`` of one sequence."""
        log_obs = self.emissions.log_likelihoods(sequence)
        return self.inference_engine.log_likelihood(self.startprob, self.transmat, log_obs)

    def score(self, sequences: Sequence[np.ndarray]) -> float:
        """Total log-likelihood of a collection of sequences (batched)."""
        log_obs_seqs = self.emissions.log_likelihoods_batch(sequences)
        return float(
            self.inference_engine.log_likelihood_batch(
                self.startprob, self.transmat, log_obs_seqs
            ).sum()
        )

    def posteriors(self, sequence: np.ndarray) -> SequencePosteriors:
        """Forward-backward posteriors for one sequence."""
        log_obs = self.emissions.log_likelihoods(sequence)
        return self.inference_engine.posteriors(self.startprob, self.transmat, log_obs)

    def posteriors_batch(
        self, sequences: Sequence[np.ndarray]
    ) -> list[SequencePosteriors]:
        """Forward-backward posteriors for a collection of sequences (batched)."""
        log_obs_seqs = self.emissions.log_likelihoods_batch(sequences)
        return self.inference_engine.posteriors_batch(
            self.startprob, self.transmat, log_obs_seqs
        )

    def decode(self, sequence: np.ndarray) -> np.ndarray:
        """Most likely hidden state path (Viterbi) for one sequence."""
        log_obs = self.emissions.log_likelihoods(sequence)
        path, _ = self.inference_engine.viterbi(self.startprob, self.transmat, log_obs)
        return path

    def predict(self, sequences: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Viterbi paths for a collection of sequences (batched decode)."""
        log_obs_seqs = self.emissions.log_likelihoods_batch(sequences)
        return [
            path
            for path, _ in self.inference_engine.viterbi_batch(
                self.startprob, self.transmat, log_obs_seqs
            )
        ]

    def decode_long(
        self,
        sequence: np.ndarray,
        window: int | None = None,
        overlap: int | None = None,
    ):
        """Chunked Viterbi decode of one arbitrarily long sequence.

        Unlike :meth:`decode`, the ``(T, K)`` emission table is never
        materialized: windows are scored on demand through an
        :class:`~repro.hmm.longseq.EmissionSource`, so peak memory is
        bounded by the window/overlap knobs (defaulting to
        ``InferenceConfig.decode_window`` / ``decode_overlap``) regardless
        of T.  Returns a :class:`~repro.hmm.longseq.LongDecodeResult` with
        the stitched path plus stitch diagnostics.
        """
        from repro.hmm.longseq import EmissionSource

        source = EmissionSource(self.emissions, sequence)
        return self.inference_engine.viterbi_long(
            self.startprob, self.transmat, source, window=window, overlap=overlap
        )

    # ------------------------------------------------------------------ #
    # Compiled-corpus inference
    # ------------------------------------------------------------------ #
    def compile(self, sequences: Sequence[np.ndarray]) -> CompiledCorpus:
        """Compile a dataset once for repeated inference against this model.

        The returned :class:`~repro.hmm.corpus.CompiledCorpus` is parameter-
        agnostic: compile once, then train
        (:meth:`~repro.hmm.baum_welch.BaumWelchTrainer.fit` accepts it
        directly), decode (:meth:`predict_corpus`) and score
        (:meth:`score_corpus`) against it without re-padding or re-bucketing.
        """
        return self.inference_engine.compile(sequences)

    def predict_corpus(self, corpus: CompiledCorpus) -> list[np.ndarray]:
        """Viterbi paths for every sequence of a compiled corpus."""
        scores_ext = corpus.score(self.emissions)
        return [
            path
            for path, _ in self.inference_engine.viterbi_corpus(
                self.startprob, self.transmat, corpus, scores_ext
            )
        ]

    def score_corpus(self, corpus: CompiledCorpus) -> float:
        """Total log-likelihood of a compiled corpus."""
        scores_ext = corpus.score(self.emissions)
        return float(
            self.inference_engine.log_likelihood_corpus(
                self.startprob, self.transmat, corpus, scores_ext
            ).sum()
        )

    def stream(self, lag: int | None = None):
        """Open a :class:`~repro.hmm.backends.StreamingSession` on this model.

        The caller feeds emission log-likelihood rows; for a higher-level
        tokens-in/labels-out interface see
        :class:`repro.serving.StreamingDecoder`.
        """
        return self.inference_engine.start_stream(self.startprob, self.transmat, lag=lag)

    def stream_batch(self, lags=()):
        """Open a :class:`~repro.hmm.backends.BatchedStreamingSession`.

        Steps many concurrent online streams together, one vectorized
        ``(B, K, K)`` propagation per tick; per-stream results are
        bit-identical to :meth:`stream` sessions.  See
        :class:`repro.serving.StreamPool` for the tokens-in/labels-out
        multiplexer built on top.
        """
        return self.inference_engine.start_stream_batch(
            self.startprob, self.transmat, lags=lags
        )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_state_dict(self) -> dict:
        """Serializable snapshot of ``(pi, A, B)`` (arrays + JSON scalars)."""
        return {
            "startprob": self.startprob.copy(),
            "transmat": self.transmat.copy(),
            "emissions": self.emissions.to_state_dict(),
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "HMM":
        """Rebuild an :class:`HMM` from :meth:`to_state_dict` output."""
        return cls(
            np.asarray(state["startprob"], dtype=np.float64),
            np.asarray(state["transmat"], dtype=np.float64),
            EmissionModel.from_state_dict(state["emissions"]),
        )

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #
    def sample(self, length: int, seed: SeedLike = None) -> tuple[np.ndarray, list]:
        """Draw a state path and observations of the given length.

        Returns
        -------
        (states, observations):
            ``states`` is an integer array of length ``length``;
            ``observations`` is a list of per-step emissions whose type
            depends on the emission family (floats, ints or binary vectors).
        """
        if length < 1:
            raise ValidationError(f"length must be at least 1, got {length}")
        rng = as_generator(seed)
        states = np.zeros(length, dtype=np.int64)
        observations: list = []
        states[0] = int(rng.choice(self.n_states, p=self.startprob))
        observations.append(self.emissions.sample(states[0], rng))
        for t in range(1, length):
            states[t] = int(rng.choice(self.n_states, p=self.transmat[states[t - 1]]))
            observations.append(self.emissions.sample(states[t], rng))
        return states, observations

    def sample_dataset(
        self, n_sequences: int, length: int, seed: SeedLike = None
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Draw ``n_sequences`` i.i.d. sequences of a fixed length.

        Returns parallel lists ``(state_paths, observation_sequences)``;
        observations are stacked into arrays when the emission type allows it.
        """
        rng = as_generator(seed)
        states_list: list[np.ndarray] = []
        obs_list: list[np.ndarray] = []
        for _ in range(n_sequences):
            states, obs = self.sample(length, rng)
            states_list.append(states)
            obs_list.append(np.asarray(obs))
        return states_list, obs_list

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"HMM(n_states={self.n_states}, emissions={self.emissions!r})"
