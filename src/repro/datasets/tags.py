"""The reduced 15-tag inventory of the paper's PoS experiment (Table 2).

The paper merges the 46 Penn Treebank WSJ tags into 15 groups and reports the
frequency of each original tag in its training slice.  We keep the full
mapping so the synthetic corpus generator can reproduce the same group
frequencies and the same skewed long-tail behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: (reduced index [1-based in the paper], original PTB tag, frequency) rows of Table 2.
_TABLE2_ROWS: list[tuple[int, str, int]] = [
    (1, "NNP", 9408),
    (1, "NNPS", 244),
    (1, "NNS", 6047),
    (1, "NN", 13166),
    (1, "SYM", 1),
    (2, ",", 4886),
    (2, "--", 712),
    (2, "''", 693),
    (2, ":", 563),
    (2, ".", 3874),
    (2, "$", 724),
    (2, "(", 120),
    (2, ")", 126),
    (2, "LS", 13),
    (2, "#", 16),
    (3, "CD", 3546),
    (4, "JJS", 182),
    (4, "JJ", 5834),
    (4, "JJR", 381),
    (5, "MD", 927),
    (6, "VBZ", 2125),
    (6, "VB", 2554),
    (6, "VBG", 1459),
    (6, "VBD", 3043),
    (6, "VBN", 2134),
    (6, "VBP", 1321),
    (6, "VBG|NN", 1),
    (7, "DT", 8165),
    (7, "PDT", 27),
    (7, "WDT", 445),
    (8, "IN", 9959),
    (8, "CC", 2265),
    (8, "TO", 2179),
    (9, "FW", 4),
    (10, "WRB", 178),
    (10, "RB", 2829),
    (10, "RBS", 35),
    (10, "RBR", 136),
    (11, "UH", 3),
    (12, "WP", 241),
    (12, "WP$", 14),
    (12, "PRP", 1716),
    (12, "PRP$", 766),
    (13, "POS", 824),
    (14, "EX", 88),
    (15, "RP", 107),
]

#: Human-readable names for the 15 reduced groups (0-based index order).
_REDUCED_NAMES = [
    "NOUN",          # 1
    "PUNCT",         # 2
    "NUMBER",        # 3
    "ADJECTIVE",     # 4
    "MODAL",         # 5
    "VERB",          # 6
    "DETERMINER",    # 7
    "PREPOSITION",   # 8
    "FOREIGN",       # 9
    "ADVERB",        # 10
    "INTERJECTION",  # 11
    "PRONOUN",       # 12
    "POSSESSIVE",    # 13
    "EXISTENTIAL",   # 14
    "PARTICLE",      # 15
]

N_REDUCED_TAGS = 15


@dataclass(frozen=True)
class TagInfo:
    """One row of Table 2: an original PTB tag with its reduced group."""

    reduced_index: int  # 0-based reduced group index
    ptb_tag: str
    frequency: int
    reduced_name: str


TAG_INVENTORY: list[TagInfo] = [
    TagInfo(
        reduced_index=row[0] - 1,
        ptb_tag=row[1],
        frequency=row[2],
        reduced_name=_REDUCED_NAMES[row[0] - 1],
    )
    for row in _TABLE2_ROWS
]


def reduced_tag_names() -> list[str]:
    """Names of the 15 reduced tag groups, in index order."""
    return list(_REDUCED_NAMES)


def tag_frequency_vector() -> np.ndarray:
    """Total Table-2 frequency of each reduced tag group (length 15)."""
    freq = np.zeros(N_REDUCED_TAGS, dtype=np.float64)
    for info in TAG_INVENTORY:
        freq[info.reduced_index] += info.frequency
    return freq


def tag_frequency_table() -> list[tuple[str, int]]:
    """(name, frequency) pairs for the reduced groups, sorted by frequency."""
    freq = tag_frequency_vector()
    pairs = [(name, int(freq[i])) for i, name in enumerate(_REDUCED_NAMES)]
    return sorted(pairs, key=lambda item: item[1], reverse=True)
