"""The paper's simulated toy experiment (Section 4.1).

A 5-state HMM with single-mode Gaussian emissions:

* ``pi = (0.0101, 0.0912, 0.2421, 0.0652, 0.5914)``
* a fixed, diverse ground-truth transition matrix,
* ``B.mu = (1, 2, 3, 4, 5)`` and ``B.sigma = 0.025`` (the sigma is swept in
  the Fig. 3/5 experiments).

300 sequences of length 6 are generated from the ground truth, and both the
plain HMM and the dHMM are trained on them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.hmm.emissions.gaussian import GaussianEmission
from repro.hmm.model import HMM
from repro.utils.rng import SeedLike, as_generator

#: Ground-truth initial distribution from the paper.
TOY_STARTPROB = np.array([0.0101, 0.0912, 0.2421, 0.0652, 0.5914])

#: Ground-truth transition matrix.  The paper only shows it as a bar-chart
#: figure (Fig. 2a, first column); this matrix reproduces its qualitative
#: structure: each state has a distinct, fairly peaked transition profile so
#: the rows are mutually diverse.
TOY_TRANSMAT = np.array(
    [
        [0.60, 0.10, 0.10, 0.10, 0.10],
        [0.05, 0.10, 0.65, 0.10, 0.10],
        [0.10, 0.05, 0.10, 0.65, 0.10],
        [0.10, 0.10, 0.05, 0.15, 0.60],
        [0.55, 0.15, 0.10, 0.15, 0.05],
    ]
)

#: Ground-truth Gaussian means and (default) standard deviation.
TOY_MEANS = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
TOY_SIGMA = 0.025

#: Dataset size used throughout Section 4.1.
TOY_N_SEQUENCES = 300
TOY_SEQUENCE_LENGTH = 6


@dataclass
class ToyDataset:
    """A sampled toy dataset together with its generating model.

    Attributes
    ----------
    observations:
        List of float arrays (length ``sequence_length`` each).
    states:
        Ground-truth hidden state paths, parallel to ``observations``.
    model:
        The generating :class:`~repro.hmm.model.HMM`.
    sigma:
        Emission standard deviation used for generation.
    """

    observations: list[np.ndarray]
    states: list[np.ndarray]
    model: HMM
    sigma: float

    @property
    def n_sequences(self) -> int:
        return len(self.observations)

    @property
    def n_states(self) -> int:
        return self.model.n_states


def toy_ground_truth_model(sigma: float = TOY_SIGMA) -> HMM:
    """Ground-truth toy HMM with the requested emission standard deviation."""
    if sigma <= 0:
        raise ValidationError(f"sigma must be positive, got {sigma}")
    emissions = GaussianEmission(TOY_MEANS.copy(), np.full(5, sigma**2))
    return HMM(TOY_STARTPROB.copy(), TOY_TRANSMAT.copy(), emissions)


def generate_toy_dataset(
    n_sequences: int = TOY_N_SEQUENCES,
    sequence_length: int = TOY_SEQUENCE_LENGTH,
    sigma: float = TOY_SIGMA,
    seed: SeedLike = None,
) -> ToyDataset:
    """Sample the paper's toy dataset.

    Parameters
    ----------
    n_sequences, sequence_length:
        Dataset dimensions; the paper uses 300 sequences of length 6.
    sigma:
        Emission standard deviation; Fig. 3/5 sweep it as
        ``0.025 + 0.1 * (t - 1)``.
    seed:
        Seed or generator for reproducibility.
    """
    if n_sequences < 1 or sequence_length < 1:
        raise ValidationError("n_sequences and sequence_length must be positive")
    rng = as_generator(seed)
    model = toy_ground_truth_model(sigma)
    states, observations = model.sample_dataset(n_sequences, sequence_length, rng)
    return ToyDataset(observations=observations, states=states, model=model, sigma=sigma)


def sigma_sweep_values(n_points: int = 50, start: float = 0.025, step: float = 0.1) -> np.ndarray:
    """The emission-sigma grid of Fig. 3/5: ``sigma_t = 0.025 + 0.1 (t-1)``."""
    if n_points < 1:
        raise ValidationError(f"n_points must be positive, got {n_points}")
    return start + step * np.arange(n_points)
