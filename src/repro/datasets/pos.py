"""Synthetic WSJ-like part-of-speech corpus.

The paper evaluates unsupervised PoS tagging on the Penn Treebank WSJ corpus
(15 merged tags, ~10K vocabulary, 3828 sentences of length 2-250).  The WSJ
corpus is distributed by the LDC and cannot be redistributed, so this module
generates a *synthetic* corpus with the same statistical shape:

* the 15 reduced tag groups of Table 2, with marginal frequencies matched to
  the table (so ~25% of tags cover ~85% of tokens);
* a tag-level first-order Markov chain with linguistically motivated
  structure (determiners precede nouns/adjectives, modals precede verbs,
  punctuation ends clauses, ...), giving every tag a *distinct* transition
  profile — exactly the property the diversity prior exploits;
* a Zipfian long-tail vocabulary in which most word types are strongly
  associated with a single tag (as in real text) while frequent function
  words are tag-specific.

The generator exercises the same code path as the real corpus would
(categorical-emission HMM/dHMM over a large vocabulary) and preserves the
phenomena the paper's PoS figures describe.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.tags import N_REDUCED_TAGS, reduced_tag_names, tag_frequency_vector
from repro.exceptions import ValidationError
from repro.utils.maths import normalize_rows
from repro.utils.rng import SeedLike, as_generator


@dataclass
class PosCorpus:
    """A tagged corpus of word-index sentences.

    Attributes
    ----------
    words:
        List of integer arrays; each entry is a sentence of word indices.
    tags:
        Parallel list of integer arrays with the gold tag of every token.
    vocabulary_size:
        Number of distinct word types.
    tag_names:
        Names of the tag groups (length ``n_tags``).
    startprob, transmat, emission_probs:
        The generating model parameters (useful as the "true parameters"
        reference of Fig. 9).
    """

    words: list[np.ndarray]
    tags: list[np.ndarray]
    vocabulary_size: int
    tag_names: list[str] = field(default_factory=reduced_tag_names)
    startprob: np.ndarray | None = None
    transmat: np.ndarray | None = None
    emission_probs: np.ndarray | None = None

    @property
    def n_sentences(self) -> int:
        return len(self.words)

    @property
    def n_tags(self) -> int:
        return len(self.tag_names)

    @property
    def n_tokens(self) -> int:
        return int(sum(len(s) for s in self.words))

    def tag_histogram(self) -> np.ndarray:
        """Token count of every tag group in the corpus."""
        counts = np.zeros(self.n_tags, dtype=np.float64)
        for sent in self.tags:
            np.add.at(counts, sent, 1.0)
        return counts

    def word_histogram(self) -> np.ndarray:
        """Token count of every word type in the corpus."""
        counts = np.zeros(self.vocabulary_size, dtype=np.float64)
        for sent in self.words:
            np.add.at(counts, sent, 1.0)
        return counts


def _build_tag_transition_matrix(n_tags: int, rng: np.random.Generator) -> np.ndarray:
    """A linguistically structured, diverse tag-transition matrix.

    Indices follow the Table-2 reduced groups:
    0 NOUN, 1 PUNCT, 2 NUMBER, 3 ADJECTIVE, 4 MODAL, 5 VERB, 6 DETERMINER,
    7 PREPOSITION, 8 FOREIGN, 9 ADVERB, 10 INTERJECTION, 11 PRONOUN,
    12 POSSESSIVE, 13 EXISTENTIAL, 14 PARTICLE.
    """
    base = np.full((n_tags, n_tags), 0.2)
    boosts = {
        0: {5: 8.0, 1: 6.0, 7: 5.0, 0: 6.0, 12: 2.0},          # NOUN -> VERB/PUNCT/PREP/NOUN
        1: {6: 6.0, 0: 5.0, 11: 4.0, 7: 3.0, 2: 2.0},          # PUNCT -> DET/NOUN/PRON
        2: {0: 8.0, 1: 4.0, 7: 2.0},                           # NUMBER -> NOUN
        3: {0: 10.0, 3: 2.0, 1: 2.0},                          # ADJ -> NOUN
        4: {5: 12.0, 9: 3.0},                                  # MODAL -> VERB
        5: {6: 6.0, 7: 5.0, 0: 4.0, 9: 3.0, 14: 2.0, 1: 3.0},  # VERB -> DET/PREP/NOUN/ADV
        6: {0: 10.0, 3: 5.0, 2: 2.0},                          # DET -> NOUN/ADJ
        7: {6: 6.0, 0: 6.0, 2: 3.0, 11: 2.0},                  # PREP -> DET/NOUN
        8: {8: 4.0, 0: 4.0, 1: 3.0},                           # FOREIGN
        9: {5: 5.0, 3: 4.0, 9: 2.0, 1: 3.0},                   # ADV -> VERB/ADJ
        10: {1: 6.0, 11: 3.0},                                 # INTERJECTION -> PUNCT
        11: {5: 8.0, 4: 3.0, 1: 2.0},                          # PRONOUN -> VERB/MODAL
        12: {0: 9.0, 3: 3.0},                                  # POSSESSIVE -> NOUN
        13: {5: 9.0, 4: 2.0},                                  # EXISTENTIAL -> VERB
        14: {6: 5.0, 7: 4.0, 0: 3.0, 1: 2.0},                  # PARTICLE -> DET/PREP
    }
    for src, dsts in boosts.items():
        for dst, weight in dsts.items():
            base[src, dst] += weight
    # Small random perturbation so repeated corpora are not identical, while
    # keeping the structure deterministic given the seed.
    base *= rng.uniform(0.9, 1.1, size=base.shape)
    return normalize_rows(base)


def _build_emission_matrix(
    n_tags: int,
    vocabulary_size: int,
    tag_marginals: np.ndarray,
    rng: np.random.Generator,
    zipf_exponent: float,
    ambiguity: float,
) -> np.ndarray:
    """Per-tag word distributions with a Zipfian long tail.

    Words are partitioned among tags proportionally to the tag marginals;
    each tag's word probabilities follow a Zipf law over its own word block.
    A small ``ambiguity`` mass is spread over the whole vocabulary so that
    some words remain ambiguous between tags (as in real text).
    """
    ranks = np.arange(1, vocabulary_size + 1, dtype=np.float64)
    zipf = 1.0 / ranks**zipf_exponent

    # Assign word types to tags: frequent word blocks go to frequent tags.
    allocation = np.maximum((tag_marginals * vocabulary_size).astype(int), 5)
    # Adjust so the allocation sums exactly to the vocabulary size.
    while allocation.sum() > vocabulary_size:
        allocation[np.argmax(allocation)] -= 1
    while allocation.sum() < vocabulary_size:
        allocation[np.argmin(allocation)] += 1

    emission = np.zeros((n_tags, vocabulary_size))
    cursor = 0
    order = np.argsort(tag_marginals)[::-1]
    for tag in order:
        block = slice(cursor, cursor + allocation[tag])
        block_size = allocation[tag]
        weights = zipf[:block_size] * rng.uniform(0.8, 1.2, size=block_size)
        emission[tag, block] = weights / weights.sum()
        cursor += block_size
    # Ambiguity: mix in a shared Zipfian background.
    background = zipf / zipf.sum()
    emission = (1.0 - ambiguity) * emission + ambiguity * background[None, :]
    return normalize_rows(emission)


def generate_wsj_like_corpus(
    n_sentences: int = 3828,
    vocabulary_size: int = 10000,
    min_length: int = 2,
    max_length: int = 250,
    mean_length: float = 21.0,
    zipf_exponent: float = 1.1,
    ambiguity: float = 0.02,
    seed: SeedLike = None,
) -> PosCorpus:
    """Generate the synthetic WSJ-like tagged corpus.

    Parameters
    ----------
    n_sentences:
        Number of sentences (paper: 3828).
    vocabulary_size:
        Number of word types (paper: ~10K).
    min_length, max_length, mean_length:
        Sentence length distribution: a geometric-like draw clipped to
        ``[min_length, max_length]`` with the given mean (the paper reports
        lengths between 2 and 250).
    zipf_exponent:
        Exponent of the word-frequency Zipf law.
    ambiguity:
        Fraction of emission mass shared between tags (word ambiguity).
    seed:
        Seed or generator.
    """
    if n_sentences < 1:
        raise ValidationError(f"n_sentences must be positive, got {n_sentences}")
    if vocabulary_size < N_REDUCED_TAGS * 5:
        raise ValidationError("vocabulary_size too small for 15 tag groups")
    if not min_length <= max_length:
        raise ValidationError("min_length must not exceed max_length")
    if not 0 <= ambiguity < 1:
        raise ValidationError("ambiguity must lie in [0, 1)")

    rng = as_generator(seed)
    n_tags = N_REDUCED_TAGS
    marginals = tag_frequency_vector()
    marginals = marginals / marginals.sum()

    transmat = _build_tag_transition_matrix(n_tags, rng)
    emission = _build_emission_matrix(
        n_tags, vocabulary_size, marginals, rng, zipf_exponent, ambiguity
    )
    # Sentences tend to start with determiners, nouns, pronouns, prepositions.
    startprob = marginals.copy()
    for tag, boost in {6: 2.0, 0: 1.5, 11: 1.5, 7: 1.2}.items():
        startprob[tag] *= boost
    startprob = startprob / startprob.sum()

    words: list[np.ndarray] = []
    tags: list[np.ndarray] = []
    for _ in range(n_sentences):
        length = int(np.clip(rng.geometric(1.0 / mean_length) + min_length - 1, min_length, max_length))
        sent_tags = np.zeros(length, dtype=np.int64)
        sent_words = np.zeros(length, dtype=np.int64)
        sent_tags[0] = rng.choice(n_tags, p=startprob)
        sent_words[0] = rng.choice(vocabulary_size, p=emission[sent_tags[0]])
        for t in range(1, length):
            sent_tags[t] = rng.choice(n_tags, p=transmat[sent_tags[t - 1]])
            sent_words[t] = rng.choice(vocabulary_size, p=emission[sent_tags[t]])
        words.append(sent_words)
        tags.append(sent_tags)

    return PosCorpus(
        words=words,
        tags=tags,
        vocabulary_size=vocabulary_size,
        tag_names=reduced_tag_names(),
        startprob=startprob,
        transmat=transmat,
        emission_probs=emission,
    )
