"""Cross-validation and train/test splitting utilities."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import SeedLike, as_generator


def k_fold_indices(
    n_items: int, n_folds: int = 10, shuffle: bool = True, seed: SeedLike = None
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Index pairs ``(train_idx, test_idx)`` for k-fold cross-validation.

    The paper's OCR experiment reports averages over 10-fold CV; this helper
    returns the folds as arrays of item indices.
    """
    if n_items < 2:
        raise ValidationError(f"need at least 2 items, got {n_items}")
    if not 2 <= n_folds <= n_items:
        raise ValidationError(f"n_folds must lie in [2, {n_items}], got {n_folds}")

    indices = np.arange(n_items)
    if shuffle:
        rng = as_generator(seed)
        rng.shuffle(indices)
    folds = np.array_split(indices, n_folds)

    splits: list[tuple[np.ndarray, np.ndarray]] = []
    for i in range(n_folds):
        test_idx = folds[i]
        train_idx = np.concatenate([folds[j] for j in range(n_folds) if j != i])
        splits.append((np.sort(train_idx), np.sort(test_idx)))
    return splits


def train_test_split_indices(
    n_items: int, test_fraction: float = 0.2, seed: SeedLike = None
) -> tuple[np.ndarray, np.ndarray]:
    """Single random train/test split of ``n_items`` items."""
    if n_items < 2:
        raise ValidationError(f"need at least 2 items, got {n_items}")
    if not 0 < test_fraction < 1:
        raise ValidationError(f"test_fraction must lie in (0, 1), got {test_fraction}")
    rng = as_generator(seed)
    indices = rng.permutation(n_items)
    n_test = max(1, int(round(test_fraction * n_items)))
    n_test = min(n_test, n_items - 1)
    return np.sort(indices[n_test:]), np.sort(indices[:n_test])
