"""Synthetic OCR dataset of handwritten lowercase words.

The paper's OCR experiment uses the Kassel/Taskar handwriting dataset: 6877
English words, first letters removed, each remaining letter rasterized to a
16x8 binary image (128 features).  That dataset is not bundled here, so this
module synthesizes an equivalent:

* a 16x8 glyph *prototype* for each of the 26 lowercase letters (drawn with
  simple stroke primitives so different letters are visually distinct);
* per-writer distortions (shifts, thickness changes) and per-pixel flip
  noise, so letters of the same class vary realistically;
* words sampled from an English-like letter-bigram chain (so the letter
  transition structure — 'q' followed by 'u', frequent 'th'/'he'/'in' pairs —
  is present for the supervised HMM/dHMM to exploit), with the length
  distribution of the original dataset (1-14 letters).

The resulting data exercises the identical code path (Bernoulli naive-Bayes
emissions over 128 binary pixels, supervised counting + diversity-regularized
refinement, 10-fold cross-validation) as the paper's experiment.
"""

from __future__ import annotations

import string
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.maths import normalize_rows
from repro.utils.rng import SeedLike, as_generator

IMAGE_HEIGHT = 16
IMAGE_WIDTH = 8
N_PIXELS = IMAGE_HEIGHT * IMAGE_WIDTH
N_LETTERS = 26
LETTERS = list(string.ascii_lowercase)

#: Approximate English letter frequencies (per mille), used for the word sampler.
_LETTER_FREQUENCIES = {
    "e": 127, "t": 91, "a": 82, "o": 75, "i": 70, "n": 67, "s": 63, "h": 61,
    "r": 60, "d": 43, "l": 40, "c": 28, "u": 28, "m": 24, "w": 24, "f": 22,
    "g": 20, "y": 20, "p": 19, "b": 15, "v": 10, "k": 8, "j": 2, "x": 2,
    "q": 1, "z": 1,
}

#: Common English bigrams given extra transition weight.
_COMMON_BIGRAMS = [
    "th", "he", "in", "er", "an", "re", "nd", "on", "en", "at", "ou", "ed",
    "ha", "to", "or", "it", "is", "hi", "es", "ng", "st", "ar", "te", "se",
    "me", "sh", "le", "ti", "qu", "ch", "ck", "ll", "ss", "ee", "oo", "mm",
    "mb", "ma",
]


@dataclass
class OcrDataset:
    """A synthetic OCR corpus of segmented letter images.

    Attributes
    ----------
    images:
        List of ``(word_length, 128)`` binary arrays, one per word.
    labels:
        Parallel list of integer letter labels (0='a' .. 25='z').
    words:
        The underlying strings (for display/debugging).
    prototypes:
        ``(26, 128)`` clean glyph prototypes used for generation.
    """

    images: list[np.ndarray]
    labels: list[np.ndarray]
    words: list[str]
    prototypes: np.ndarray

    @property
    def n_words(self) -> int:
        return len(self.images)

    @property
    def n_letters_total(self) -> int:
        return int(sum(len(lab) for lab in self.labels))


def _draw_glyph(letter_index: int) -> np.ndarray:
    """Deterministic 16x8 binary prototype for one lowercase letter.

    Each letter is rendered from a small set of stroke primitives (vertical /
    horizontal bars, halves of a box, diagonals) chosen so that different
    letters produce clearly distinct pixel patterns while sharing strokes the
    way real letters do ('b'/'h', 'c'/'o', 'v'/'w', ...).
    """
    grid = np.zeros((IMAGE_HEIGHT, IMAGE_WIDTH), dtype=np.float64)

    def vline(col: int, top: int = 2, bottom: int = 14) -> None:
        grid[top:bottom, col] = 1.0

    def hline(row: int, left: int = 1, right: int = 7) -> None:
        grid[row, left:right] = 1.0

    def diag(sign: int, top: int = 4, bottom: int = 14) -> None:
        rows = np.arange(top, bottom)
        cols = np.linspace(1 if sign > 0 else 6, 6 if sign > 0 else 1, rows.size)
        grid[rows, cols.astype(int)] = 1.0

    letter = LETTERS[letter_index]
    # A compact "font": combinations of strokes per letter.
    if letter in "bdhklf":
        vline(1 if letter in "bhkf" else 6, 1, 14)
    if letter in "acegoqsdbpu":
        # round-ish bowl: box outline in the lower half
        hline(6), hline(13)
        vline(1, 6, 14), vline(6, 6, 14)
    if letter in "aes":
        hline(10, 2, 6)
    if letter == "a":
        vline(6, 4, 14)  # the tall right stem of 'a' distinguishes it from 'o'
    if letter in "cegs":
        grid[7:12, 6] = 0.0  # open the right side
    if letter in "pq":
        vline(1 if letter == "p" else 6, 6, 16)
        hline(15, 1, 4) if letter == "p" else hline(15, 4, 7)  # descender feet
    if letter == "u":
        grid[6, 1:7] = 0.0  # open top distinguishes 'u' from 'o'
    if letter in "ijlt":
        vline(3, 3 if letter == "t" else 5, 14)
    if letter == "t":
        hline(5, 1, 6)
    if letter in "ij":
        grid[2, 3] = 1.0  # the dot
    if letter == "j":
        grid[13:15, 1:4] = 1.0  # descending hook distinguishes 'j' from 'i'
    if letter in "mnhu":
        vline(1, 5, 14), vline(6, 5, 14)
        if letter in "mn h":
            hline(5, 1, 7)
        if letter == "u":
            hline(13, 1, 7)
    if letter == "m":
        vline(3, 5, 14)
        hline(5, 1, 7)
    if letter in "vwxyz":
        diag(+1)
        if letter in "vwx":
            diag(-1)
        if letter == "v":
            hline(13, 2, 6)  # the joined bottom of 'v' distinguishes it from 'x'
        if letter == "w":
            vline(3, 8, 14)
        if letter == "y":
            vline(6, 9, 16)
        if letter == "z":
            hline(4, 1, 7), hline(13, 1, 7)
    if letter == "r":
        vline(1, 5, 14)
        hline(6, 1, 5)
    if letter == "k":
        diag(+1, 7, 11)
        diag(-1, 10, 14)
    if letter == "f":
        hline(2, 2, 6), hline(7, 1, 5)
    if letter == "e":
        hline(9, 1, 7)
    if letter == "g":
        vline(6, 6, 16), hline(15, 1, 5)
        grid[10, 4:7] = 1.0  # the crossbar of 'g' distinguishes it from 'q'
    if letter == "x":
        grid[2:5, :] = 0.0
    return grid.reshape(-1)


def letter_prototypes() -> np.ndarray:
    """Clean ``(26, 128)`` binary glyph prototypes for all lowercase letters."""
    return np.stack([_draw_glyph(i) for i in range(N_LETTERS)])


def letter_bigram_chain(bigram_boost: float = 25.0) -> tuple[np.ndarray, np.ndarray]:
    """English-like letter start distribution and bigram transition matrix."""
    freq = np.array([_LETTER_FREQUENCIES[c] for c in LETTERS], dtype=np.float64)
    startprob = freq / freq.sum()
    transmat = np.tile(freq, (N_LETTERS, 1))
    for bigram in _COMMON_BIGRAMS:
        i, j = LETTERS.index(bigram[0]), LETTERS.index(bigram[1])
        transmat[i, j] += bigram_boost * freq.mean()
    # 'q' is (almost) always followed by 'u'.
    transmat[LETTERS.index("q"), :] = 0.05
    transmat[LETTERS.index("q"), LETTERS.index("u")] = 10.0
    return startprob, normalize_rows(transmat)


def _distort(
    prototype: np.ndarray, rng: np.random.Generator, noise: float, shift_prob: float
) -> np.ndarray:
    """Apply a random shift and pixel-flip noise to a glyph prototype."""
    image = prototype.reshape(IMAGE_HEIGHT, IMAGE_WIDTH).copy()
    if rng.random() < shift_prob:
        shift = int(rng.integers(-1, 2))
        image = np.roll(image, shift, axis=0)
    if rng.random() < shift_prob:
        shift = int(rng.integers(-1, 2))
        image = np.roll(image, shift, axis=1)
    flat = image.reshape(-1)
    flips = rng.random(N_PIXELS) < noise
    flat = np.where(flips, 1.0 - flat, flat)
    return flat


def generate_ocr_dataset(
    n_words: int = 6877,
    min_length: int = 1,
    max_length: int = 14,
    mean_length: float = 7.0,
    pixel_noise: float = 0.08,
    shift_probability: float = 0.5,
    seed: SeedLike = None,
) -> OcrDataset:
    """Generate the synthetic OCR dataset.

    Parameters
    ----------
    n_words:
        Number of words (paper: 6877).
    min_length, max_length, mean_length:
        Word-length distribution (paper: 1-14 letters).
    pixel_noise:
        Per-pixel flip probability applied to every glyph.
    shift_probability:
        Probability of a +/-1 pixel shift in each direction (writer variation).
    seed:
        Seed or generator.
    """
    if n_words < 1:
        raise ValidationError(f"n_words must be positive, got {n_words}")
    if not 1 <= min_length <= max_length:
        raise ValidationError("invalid word length bounds")
    if not 0 <= pixel_noise < 0.5:
        raise ValidationError("pixel_noise must lie in [0, 0.5)")

    rng = as_generator(seed)
    prototypes = letter_prototypes()
    startprob, transmat = letter_bigram_chain()

    images: list[np.ndarray] = []
    labels: list[np.ndarray] = []
    words: list[str] = []
    for _ in range(n_words):
        length = int(
            np.clip(rng.poisson(mean_length - min_length) + min_length, min_length, max_length)
        )
        letters_idx = np.zeros(length, dtype=np.int64)
        letters_idx[0] = rng.choice(N_LETTERS, p=startprob)
        for t in range(1, length):
            letters_idx[t] = rng.choice(N_LETTERS, p=transmat[letters_idx[t - 1]])
        glyphs = np.stack(
            [_distort(prototypes[idx], rng, pixel_noise, shift_probability) for idx in letters_idx]
        )
        images.append(glyphs)
        labels.append(letters_idx)
        words.append("".join(LETTERS[i] for i in letters_idx))

    return OcrDataset(images=images, labels=labels, words=words, prototypes=prototypes)
