"""Dataset generators and loaders for the paper's three experiment domains."""

from repro.datasets.toy import ToyDataset, toy_ground_truth_model, generate_toy_dataset
from repro.datasets.tags import TAG_INVENTORY, TagInfo, reduced_tag_names, tag_frequency_vector
from repro.datasets.pos import PosCorpus, generate_wsj_like_corpus
from repro.datasets.ocr import OcrDataset, generate_ocr_dataset, letter_prototypes
from repro.datasets.splits import k_fold_indices, train_test_split_indices

__all__ = [
    "ToyDataset",
    "toy_ground_truth_model",
    "generate_toy_dataset",
    "TAG_INVENTORY",
    "TagInfo",
    "reduced_tag_names",
    "tag_frequency_vector",
    "PosCorpus",
    "generate_wsj_like_corpus",
    "OcrDataset",
    "generate_ocr_dataset",
    "letter_prototypes",
    "k_fold_indices",
    "train_test_split_indices",
]
