"""Hidden-state histogram statistics (Table 1, Fig. 4, Fig. 5, Fig. 9)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError


def state_histogram(label_sequences: Sequence[np.ndarray], n_states: int) -> np.ndarray:
    """Frequency of every state over a collection of label sequences."""
    if n_states < 1:
        raise ValidationError(f"n_states must be positive, got {n_states}")
    counts = np.zeros(n_states, dtype=np.float64)
    for seq in label_sequences:
        arr = np.asarray(seq, dtype=np.int64)
        if arr.size == 0:
            continue
        if arr.min() < 0 or arr.max() >= n_states:
            raise ValidationError("label outside the valid state range")
        np.add.at(counts, arr, 1.0)
    return counts


def effective_state_count(
    label_sequences: Sequence[np.ndarray], n_states: int, threshold: float = 50.0
) -> int:
    """Number of states whose frequency exceeds ``threshold``.

    Mirrors the paper's Fig. 4/5 procedure: states used fewer than
    ``sigma_F = 50`` times are considered "not identified" by the model.
    """
    if threshold < 0:
        raise ValidationError(f"threshold must be non-negative, got {threshold}")
    counts = state_histogram(label_sequences, n_states)
    return int(np.sum(counts >= threshold))


def histogram_distance(histogram_a: np.ndarray, histogram_b: np.ndarray) -> float:
    """Total-variation distance between two (count) histograms after normalizing."""
    a = np.asarray(histogram_a, dtype=np.float64)
    b = np.asarray(histogram_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValidationError("histograms must have the same shape")
    a_sum, b_sum = a.sum(), b.sum()
    if a_sum <= 0 or b_sum <= 0:
        raise ValidationError("histograms must have positive mass")
    return float(0.5 * np.abs(a / a_sum - b / b_sum).sum())
