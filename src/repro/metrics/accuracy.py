"""Sequential-labeling accuracy measures (1-to-1, many-to-1, plain)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.metrics.hungarian import hungarian_assignment


def _flatten(sequences: Sequence[np.ndarray]) -> np.ndarray:
    if isinstance(sequences, np.ndarray) and sequences.ndim == 1:
        return sequences.astype(np.int64)
    return np.concatenate([np.asarray(s, dtype=np.int64) for s in sequences])


def confusion_matrix(
    true_labels: np.ndarray, predicted_labels: np.ndarray, n_true: int, n_pred: int
) -> np.ndarray:
    """Count matrix ``C[i, j] = #{t : true_t = i and pred_t = j}``."""
    counts = np.zeros((n_true, n_pred), dtype=np.float64)
    np.add.at(counts, (true_labels, predicted_labels), 1.0)
    return counts


def align_labels_one_to_one(
    true_labels, predicted_labels, n_states: int | None = None
) -> dict[int, int]:
    """Best 1-to-1 mapping from predicted labels to true labels (Hungarian).

    Returns a dict ``mapping[predicted] = true`` maximizing the number of
    correctly mapped positions, exactly the alignment the paper uses for its
    "1-to-1 accuracy" measure.
    """
    true_flat = _flatten(true_labels)
    pred_flat = _flatten(predicted_labels)
    if true_flat.shape != pred_flat.shape:
        raise ValidationError("true and predicted labels must have the same total length")
    if n_states is None:
        n_states = int(max(true_flat.max(), pred_flat.max())) + 1
    counts = confusion_matrix(true_flat, pred_flat, n_states, n_states)
    row_idx, col_idx = hungarian_assignment(-counts)
    return {int(pred): int(true) for true, pred in zip(row_idx, col_idx)}


def one_to_one_accuracy(true_labels, predicted_labels, n_states: int | None = None) -> float:
    """1-to-1 accuracy: map predicted states to true states bijectively.

    This is the measure reported in Table 1, Fig. 7 and Fig. 10 of the paper.
    """
    true_flat = _flatten(true_labels)
    pred_flat = _flatten(predicted_labels)
    mapping = align_labels_one_to_one(true_flat, pred_flat, n_states)
    mapped = np.array([mapping.get(int(p), -1) for p in pred_flat])
    return float(np.mean(mapped == true_flat))


def many_to_one_accuracy(true_labels, predicted_labels, n_states: int | None = None) -> float:
    """Many-to-1 accuracy: each predicted state maps to its majority true state."""
    true_flat = _flatten(true_labels)
    pred_flat = _flatten(predicted_labels)
    if true_flat.shape != pred_flat.shape:
        raise ValidationError("true and predicted labels must have the same total length")
    if n_states is None:
        n_states = int(max(true_flat.max(), pred_flat.max())) + 1
    counts = confusion_matrix(true_flat, pred_flat, n_states, n_states)
    best_true_for_pred = np.argmax(counts, axis=0)
    mapped = best_true_for_pred[pred_flat]
    return float(np.mean(mapped == true_flat))


def sequence_accuracy(true_labels, predicted_labels) -> float:
    """Plain per-position accuracy for supervised models (labels already aligned)."""
    true_flat = _flatten(true_labels)
    pred_flat = _flatten(predicted_labels)
    if true_flat.shape != pred_flat.shape:
        raise ValidationError("true and predicted labels must have the same total length")
    if true_flat.size == 0:
        raise ValidationError("cannot compute accuracy of empty label sequences")
    return float(np.mean(true_flat == pred_flat))


def remap_predictions(predicted_labels, mapping: dict[int, int]) -> list[np.ndarray]:
    """Apply a predicted->true label mapping to a collection of sequences."""
    remapped = []
    for seq in predicted_labels:
        arr = np.asarray(seq, dtype=np.int64)
        remapped.append(np.array([mapping.get(int(p), int(p)) for p in arr], dtype=np.int64))
    return remapped
