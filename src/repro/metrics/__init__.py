"""Evaluation metrics used throughout the paper's experiments."""

from repro.metrics.hungarian import hungarian_assignment
from repro.metrics.accuracy import (
    align_labels_one_to_one,
    many_to_one_accuracy,
    one_to_one_accuracy,
    sequence_accuracy,
)
from repro.metrics.diversity import (
    average_pairwise_bhattacharyya,
    average_pairwise_cosine_distance,
    pairwise_bhattacharyya_distances,
    row_diversity_profile,
)
from repro.metrics.histograms import (
    effective_state_count,
    state_histogram,
    histogram_distance,
)
from repro.metrics.clustering import v_measure

__all__ = [
    "hungarian_assignment",
    "align_labels_one_to_one",
    "one_to_one_accuracy",
    "many_to_one_accuracy",
    "sequence_accuracy",
    "average_pairwise_bhattacharyya",
    "average_pairwise_cosine_distance",
    "pairwise_bhattacharyya_distances",
    "row_diversity_profile",
    "state_histogram",
    "effective_state_count",
    "histogram_distance",
    "v_measure",
]
