"""Hungarian (Kuhn-Munkres) algorithm for minimum-cost assignment.

The paper aligns inferred hidden-state labels to ground-truth labels with the
Hungarian algorithm before computing 1-to-1 accuracy.  This module implements
the O(n^3) shortest-augmenting-path variant with dual potentials from scratch
(the test suite cross-checks it against ``scipy.optimize.linear_sum_assignment``).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def hungarian_assignment(cost_matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Solve the rectangular assignment problem, minimizing total cost.

    Parameters
    ----------
    cost_matrix:
        ``(n_rows, n_cols)`` matrix of finite costs.  When the matrix is
        rectangular, ``min(n_rows, n_cols)`` assignments are produced.

    Returns
    -------
    (row_indices, col_indices):
        Arrays such that pairing ``row_indices[i]`` with ``col_indices[i]``
        minimizes the summed cost, sorted by row index.
    """
    cost = np.asarray(cost_matrix, dtype=np.float64)
    if cost.ndim != 2:
        raise ValidationError(f"cost_matrix must be 2-D, got shape {cost.shape}")
    if cost.size == 0:
        return np.array([], dtype=np.int64), np.array([], dtype=np.int64)
    if np.any(~np.isfinite(cost)):
        raise ValidationError("cost_matrix must be finite")

    transposed = cost.shape[0] > cost.shape[1]
    if transposed:
        cost = cost.T
    n_rows, n_cols = cost.shape

    # Shortest augmenting path with potentials (1-indexed internal arrays).
    INF = float(np.inf)
    u = np.zeros(n_rows + 1)
    v = np.zeros(n_cols + 1)
    match_col = np.zeros(n_cols + 1, dtype=np.int64)  # row matched to each column
    way = np.zeros(n_cols + 1, dtype=np.int64)

    for row in range(1, n_rows + 1):
        match_col[0] = row
        current_col = 0
        min_value = np.full(n_cols + 1, INF)
        used = np.zeros(n_cols + 1, dtype=bool)
        while True:
            used[current_col] = True
            current_row = match_col[current_col]
            delta = INF
            next_col = 0
            for col in range(1, n_cols + 1):
                if used[col]:
                    continue
                reduced = cost[current_row - 1, col - 1] - u[current_row] - v[col]
                if reduced < min_value[col]:
                    min_value[col] = reduced
                    way[col] = current_col
                if min_value[col] < delta:
                    delta = min_value[col]
                    next_col = col
            for col in range(n_cols + 1):
                if used[col]:
                    u[match_col[col]] += delta
                    v[col] -= delta
                else:
                    min_value[col] -= delta
            current_col = next_col
            if match_col[current_col] == 0:
                break
        # Augment along the found path.
        while current_col != 0:
            previous_col = way[current_col]
            match_col[current_col] = match_col[previous_col]
            current_col = previous_col

    rows = []
    cols = []
    for col in range(1, n_cols + 1):
        if match_col[col] != 0:
            rows.append(match_col[col] - 1)
            cols.append(col - 1)
    row_idx = np.asarray(rows, dtype=np.int64)
    col_idx = np.asarray(cols, dtype=np.int64)
    if transposed:
        row_idx, col_idx = col_idx, row_idx
    order = np.argsort(row_idx)
    return row_idx[order], col_idx[order]
