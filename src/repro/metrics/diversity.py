"""Diversity measures over the rows of a transition matrix.

The paper quantifies how "diverse" a learned transition matrix is with the
average pairwise Bhattacharyya distance between its rows (Fig. 3, 8, 12) and
also refers to an average cosine distance in the figure axis labels; both are
provided.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.maths import bhattacharyya_distance


def _check_rows(matrix: np.ndarray) -> np.ndarray:
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2:
        raise ValidationError(f"matrix must be 2-D, got shape {arr.shape}")
    if arr.shape[0] < 2:
        raise ValidationError("need at least two rows to measure diversity")
    if np.any(arr < 0):
        raise ValidationError("matrix must be non-negative")
    return arr


def pairwise_bhattacharyya_distances(matrix: np.ndarray) -> np.ndarray:
    """Symmetric matrix of Bhattacharyya distances between all row pairs."""
    arr = _check_rows(matrix)
    k = arr.shape[0]
    distances = np.zeros((k, k))
    for i in range(k):
        for j in range(i + 1, k):
            d = bhattacharyya_distance(arr[i], arr[j])
            distances[i, j] = d
            distances[j, i] = d
    return distances


def average_pairwise_bhattacharyya(matrix: np.ndarray) -> float:
    """Mean Bhattacharyya distance over all unordered row pairs (Fig. 3's y-axis)."""
    distances = pairwise_bhattacharyya_distances(matrix)
    k = distances.shape[0]
    upper = distances[np.triu_indices(k, k=1)]
    return float(upper.mean())


def average_pairwise_cosine_distance(matrix: np.ndarray) -> float:
    """Mean cosine distance ``1 - cos(row_i, row_j)`` over all row pairs."""
    arr = _check_rows(matrix)
    norms = np.linalg.norm(arr, axis=1, keepdims=True)
    normalized = arr / np.clip(norms, 1e-300, None)
    cosine = normalized @ normalized.T
    k = arr.shape[0]
    upper = cosine[np.triu_indices(k, k=1)]
    return float(np.mean(1.0 - upper))


def row_diversity_profile(matrix: np.ndarray, row: int) -> np.ndarray:
    """Bhattacharyya distance between one row and every other row.

    This is the quantity plotted in Fig. 8 (tag 1 vs the other tags) and
    Fig. 12 (letters 'x'/'y' vs the other letters): the returned vector has
    length ``k - 1`` and excludes the reference row itself.
    """
    arr = _check_rows(matrix)
    k = arr.shape[0]
    if not 0 <= row < k:
        raise ValidationError(f"row must lie in [0, {k}), got {row}")
    return np.array(
        [bhattacharyya_distance(arr[row], arr[other]) for other in range(k) if other != row]
    )
