"""Information-theoretic clustering metrics (supplementary to the paper).

V-measure (homogeneity/completeness harmonic mean) is a standard
unsupervised-tagging metric and is useful as a secondary check that the
diversity prior actually improves the induced labeling, not only the
1-to-1 accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def _entropy_from_counts(counts: np.ndarray) -> float:
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-np.sum(p * np.log(p)))


def v_measure(true_labels, predicted_labels, beta: float = 1.0) -> float:
    """V-measure between a true labeling and a predicted labeling.

    Parameters
    ----------
    true_labels, predicted_labels:
        Flat integer arrays (or lists of sequences, which are concatenated).
    beta:
        Weight of homogeneity vs completeness; 1.0 is the standard choice.
    """
    def flatten(x):
        if isinstance(x, np.ndarray) and x.ndim == 1:
            return x.astype(np.int64)
        return np.concatenate([np.asarray(s, dtype=np.int64) for s in x])

    true = flatten(true_labels)
    pred = flatten(predicted_labels)
    if true.shape != pred.shape:
        raise ValidationError("true and predicted labels must have the same total length")
    if true.size == 0:
        raise ValidationError("cannot compute v-measure of empty labelings")

    n_true = int(true.max()) + 1
    n_pred = int(pred.max()) + 1
    contingency = np.zeros((n_true, n_pred))
    np.add.at(contingency, (true, pred), 1.0)

    h_true = _entropy_from_counts(contingency.sum(axis=1))
    h_pred = _entropy_from_counts(contingency.sum(axis=0))

    total = contingency.sum()
    joint = contingency / total
    # conditional entropies H(true | pred) and H(pred | true)
    pred_marginal = joint.sum(axis=0)
    true_marginal = joint.sum(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        h_true_given_pred = -np.nansum(
            joint * (np.log(joint) - np.log(pred_marginal[None, :]))
        )
        h_pred_given_true = -np.nansum(
            joint * (np.log(joint) - np.log(true_marginal[:, None]))
        )

    homogeneity = 1.0 if h_true == 0 else 1.0 - h_true_given_pred / h_true
    completeness = 1.0 if h_pred == 0 else 1.0 - h_pred_given_true / h_pred
    if homogeneity + completeness == 0:
        return 0.0
    return float(
        (1 + beta) * homogeneity * completeness / (beta * homogeneity + completeness)
    )
