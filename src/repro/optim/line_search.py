"""Step-size selection for projected gradient ascent.

The paper uses an "adaptive step" for the M-step gradient ascent
(Section 3.5.1, Eq. 16).  We provide both a classic backtracking search over
a projection-aware merit function and a stateful controller that grows the
step after successful iterations and shrinks it on failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

ObjectiveFn = Callable[[np.ndarray], float]
ProjectionFn = Callable[[np.ndarray], np.ndarray]


def backtracking_step(
    objective: ObjectiveFn,
    project: ProjectionFn,
    current: np.ndarray,
    gradient: np.ndarray,
    initial_step: float = 1.0,
    shrink: float = 0.5,
    max_halvings: int = 30,
    min_improvement: float = 0.0,
) -> tuple[np.ndarray, float, bool]:
    """Find a step size along ``gradient`` that improves ``objective``.

    The candidate point is always projected back onto the feasible set
    before evaluation, so the search is consistent with projected ascent.

    Returns
    -------
    (new_point, step, improved):
        The accepted point (or the current point when no step improved the
        objective), the step size used, and whether an improvement was found.
    """
    if initial_step <= 0:
        raise ValueError(f"initial_step must be positive, got {initial_step}")
    if not 0 < shrink < 1:
        raise ValueError(f"shrink must lie in (0, 1), got {shrink}")

    base_value = objective(current)
    step = initial_step
    for _ in range(max_halvings):
        candidate = project(current + step * gradient)
        value = objective(candidate)
        if np.isfinite(value) and value > base_value + min_improvement:
            return candidate, step, True
        step *= shrink
    return np.array(current, copy=True), 0.0, False


@dataclass
class AdaptiveStepController:
    """Grow-on-success / shrink-on-failure step-size controller.

    This mimics the "adaptive step" mentioned in the paper: after an accepted
    ascent step the base step is multiplied by ``growth``; after a rejected
    one it is multiplied by ``shrink``.  The step is clamped to
    ``[min_step, max_step]``.
    """

    initial_step: float = 1.0
    growth: float = 1.2
    shrink: float = 0.5
    min_step: float = 1e-12
    max_step: float = 1e6

    def __post_init__(self) -> None:
        if self.initial_step <= 0:
            raise ValueError("initial_step must be positive")
        if self.growth <= 1.0:
            raise ValueError("growth must be greater than 1")
        if not 0 < self.shrink < 1:
            raise ValueError("shrink must lie in (0, 1)")
        self._step = float(self.initial_step)

    @property
    def step(self) -> float:
        """Current base step size."""
        return self._step

    def report_success(self) -> float:
        """Record an accepted step and return the enlarged step size."""
        self._step = min(self._step * self.growth, self.max_step)
        return self._step

    def report_failure(self) -> float:
        """Record a rejected step and return the reduced step size."""
        self._step = max(self._step * self.shrink, self.min_step)
        return self._step

    def reset(self) -> None:
        """Restore the initial step size."""
        self._step = float(self.initial_step)
