"""Euclidean projection onto the probability simplex.

Implements Algorithm 1 of Wang & Carreira-Perpiñán (2013), "Projection onto
the probability simplex: An efficient algorithm with a simple proof, and an
application" (arXiv:1309.1541), which the dHMM paper uses to re-project the
rows of the transition matrix after each gradient step.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def project_to_simplex(point: np.ndarray, radius: float = 1.0) -> np.ndarray:
    """Project ``point`` onto the simplex ``{x : x >= 0, sum(x) = radius}``.

    Parameters
    ----------
    point:
        One-dimensional array of arbitrary real numbers.
    radius:
        Total mass of the simplex, 1.0 for probability vectors.

    Returns
    -------
    numpy.ndarray
        The Euclidean projection of ``point`` onto the simplex.
    """
    if radius <= 0:
        raise ValidationError(f"radius must be positive, got {radius}")
    v = np.asarray(point, dtype=np.float64)
    if v.ndim != 1:
        raise ValidationError(f"point must be one-dimensional, got shape {v.shape}")
    if v.size == 0:
        raise ValidationError("cannot project an empty vector")
    if np.any(~np.isfinite(v)):
        raise ValidationError("point contains non-finite entries")

    n = v.size
    u = np.sort(v)[::-1]
    cumulative = np.cumsum(u) - radius
    indices = np.arange(1, n + 1)
    candidate = u - cumulative / indices
    rho = int(np.nonzero(candidate > 0)[0][-1]) + 1
    theta = cumulative[rho - 1] / rho
    return np.maximum(v - theta, 0.0)


def project_rows_to_simplex(matrix: np.ndarray, radius: float = 1.0) -> np.ndarray:
    """Project every row of ``matrix`` onto the probability simplex.

    This is the vectorized form used in the dHMM M-step where every row of
    the transition matrix must remain a valid distribution.
    """
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2:
        raise ValidationError(f"matrix must be two-dimensional, got shape {arr.shape}")
    if arr.shape[1] == 0:
        raise ValidationError("matrix must have at least one column")
    if np.any(~np.isfinite(arr)):
        raise ValidationError("matrix contains non-finite entries")
    if radius <= 0:
        raise ValidationError(f"radius must be positive, got {radius}")

    n_rows, n_cols = arr.shape
    u = np.sort(arr, axis=1)[:, ::-1]
    cumulative = np.cumsum(u, axis=1) - radius
    indices = np.arange(1, n_cols + 1)[None, :]
    candidate = u - cumulative / indices
    # rho is the last index where the candidate is positive (1-based).
    positive = candidate > 0
    rho = n_cols - np.argmax(positive[:, ::-1], axis=1)
    theta = cumulative[np.arange(n_rows), rho - 1] / rho
    return np.maximum(arr - theta[:, None], 0.0)
