"""Optimization substrate: simplex projection and projected gradient ascent."""

from repro.optim.simplex import project_to_simplex, project_rows_to_simplex
from repro.optim.line_search import backtracking_step, AdaptiveStepController
from repro.optim.projected_gradient import (
    ProjectedGradientResult,
    maximize_rowwise_simplex,
)
from repro.optim.convergence import ConvergenceMonitor

__all__ = [
    "project_to_simplex",
    "project_rows_to_simplex",
    "backtracking_step",
    "AdaptiveStepController",
    "ProjectedGradientResult",
    "maximize_rowwise_simplex",
    "ConvergenceMonitor",
]
