"""Convergence tracking for iterative solvers (EM and gradient ascent)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ConvergenceMonitor:
    """Track an objective trace and decide when to stop.

    Convergence is declared when the absolute improvement between successive
    recorded values falls below ``tol`` (the paper's ``delta`` threshold in
    Algorithm 1), or when ``max_iter`` values have been recorded.
    """

    tol: float = 1e-6
    max_iter: int = 100
    history: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.tol < 0:
            raise ValueError("tol must be non-negative")
        if self.max_iter < 1:
            raise ValueError("max_iter must be at least 1")

    def update(self, value: float) -> bool:
        """Record ``value`` and return ``True`` if iteration should stop."""
        self.history.append(float(value))
        return self.converged or self.exhausted

    @property
    def converged(self) -> bool:
        """Whether the last improvement was below ``tol``."""
        if len(self.history) < 2:
            return False
        return abs(self.history[-1] - self.history[-2]) < self.tol

    @property
    def exhausted(self) -> bool:
        """Whether the iteration budget has been used up."""
        return len(self.history) >= self.max_iter

    @property
    def n_iter(self) -> int:
        """Number of recorded objective values."""
        return len(self.history)

    @property
    def last(self) -> float:
        """Most recently recorded objective value."""
        if not self.history:
            raise ValueError("no values recorded yet")
        return self.history[-1]

    def reset(self) -> None:
        """Clear the recorded history."""
        self.history.clear()
