"""Projected gradient ascent over row-stochastic matrices.

This is the workhorse of the dHMM M-step (Algorithm 1 in the paper): the
objective combines the expected complete-data log-likelihood of the
transitions with the DPP log-determinant prior, the gradient is Eq. (15),
and feasibility is restored after each step by projecting every row back
onto the probability simplex.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.optim.line_search import AdaptiveStepController
from repro.optim.simplex import project_rows_to_simplex

MatrixObjective = Callable[[np.ndarray], float]
MatrixGradient = Callable[[np.ndarray], np.ndarray]


@dataclass
class ProjectedGradientResult:
    """Outcome of a projected gradient ascent run.

    Attributes
    ----------
    solution:
        The final row-stochastic matrix.
    objective:
        Objective value at ``solution``.
    history:
        Objective value after every accepted iteration (including the
        starting point).
    n_iter:
        Number of iterations performed (accepted or not).
    converged:
        Whether the stop criterion ``|f_new - f_old| < tol`` was met.
    """

    solution: np.ndarray
    objective: float
    history: list[float] = field(default_factory=list)
    n_iter: int = 0
    converged: bool = False


def maximize_rowwise_simplex(
    objective: MatrixObjective,
    gradient: MatrixGradient,
    initial: np.ndarray,
    max_iter: int = 100,
    tol: float = 1e-6,
    initial_step: float = 0.1,
    min_value: float = 1e-12,
) -> ProjectedGradientResult:
    """Maximize ``objective`` over matrices whose rows lie on the simplex.

    Parameters
    ----------
    objective, gradient:
        Callables evaluating the objective and its gradient at a matrix.
    initial:
        Starting row-stochastic matrix; it is projected onto the simplex
        before the first evaluation for safety.
    max_iter:
        Maximum number of ascent iterations.
    tol:
        Stop when the objective improves by less than this amount.
    initial_step:
        Starting step size for the adaptive controller.
    min_value:
        Floor applied to matrix entries after projection, keeping the DPP
        kernel and the transition log-likelihood finite.
    """
    current = project_rows_to_simplex(np.asarray(initial, dtype=np.float64))
    current = _floor_and_renormalize(current, min_value)
    controller = AdaptiveStepController(initial_step=initial_step)

    best_value = objective(current)
    history = [best_value]
    converged = False
    iterations = 0

    for iterations in range(1, max_iter + 1):
        grad = gradient(current)
        # Normalize the step by the gradient's largest entry so the nominal
        # step size measures the maximum movement of a probability entry,
        # independent of how large the expected counts are.
        grad_scale = float(np.max(np.abs(grad)))
        if not np.isfinite(grad_scale) or grad_scale == 0.0:
            converged = True
            break
        direction = grad / grad_scale

        accepted = False
        # Try the controller's step, backing off a bounded number of times.
        for _ in range(40):
            step = controller.step
            candidate = project_rows_to_simplex(current + step * direction)
            candidate = _floor_and_renormalize(candidate, min_value)
            value = objective(candidate)
            if np.isfinite(value) and value > best_value:
                accepted = True
                break
            controller.report_failure()

        if not accepted:
            converged = True
            break

        improvement = value - best_value
        current = candidate
        best_value = value
        history.append(best_value)
        controller.report_success()
        if improvement < tol:
            converged = True
            break

    return ProjectedGradientResult(
        solution=current,
        objective=best_value,
        history=history,
        n_iter=iterations,
        converged=converged,
    )


def _floor_and_renormalize(matrix: np.ndarray, min_value: float) -> np.ndarray:
    """Clamp entries to ``min_value`` and renormalize rows to sum to one."""
    if min_value <= 0:
        return matrix
    floored = np.clip(matrix, min_value, None)
    return floored / floored.sum(axis=1, keepdims=True)
