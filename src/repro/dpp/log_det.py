"""Log-determinant prior score and its gradient with respect to transitions.

The diversity prior of the dHMM is ``alpha * log det(K~_A)`` where ``K~_A``
is the normalized probability product kernel over the rows of the transition
matrix ``A``.  The paper quotes the closed form (Eq. 15, for rho = 0.5)

    d log|K~_A| / d A_ij = 1/2 * sum_m [K~_A^{-1}]_{mi} sqrt(A_mj / A_ij)

which is the gradient of the *unnormalized* kernel's log-determinant.  The
projected-gradient M-step evaluates its objective through the *normalized*
kernel, so this module implements the exact gradient of the normalized form
(it differs by per-row normalization terms; on the probability simplex the
two agree up to components that are constant within a row and therefore
vanish under the simplex projection).  The exact form keeps every line-search
step a true ascent direction for any ``rho > 0``.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_solve

from repro.dpp.kernels import transition_kernel_matrix
from repro.exceptions import ValidationError

_MIN_PROB = 1e-12


def _factorize_psd(arr: np.ndarray, need_inverse: bool = True):
    """One-time factorization of a symmetric PSD matrix.

    Returns ``("cholesky", L)`` when the Cholesky factorization succeeds.
    On the semi-definite fallback, returns ``("eigh", (eigvals, eigvecs))``
    with clamped eigenvalues — or the cheaper ``("eigvals", eigvals)`` when
    ``need_inverse`` is False, since eigenvectors are only required to
    reconstruct the inverse.  Both the log-determinant and (when requested)
    the inverse are derived from this single factorization, so callers
    never factorize the same kernel twice.
    """
    try:
        return "cholesky", np.linalg.cholesky(arr)
    except np.linalg.LinAlgError:
        if need_inverse:
            eigvals, eigvecs = np.linalg.eigh(arr)
            eigvals = np.clip(eigvals, np.finfo(np.float64).tiny, None)
            return "eigh", (eigvals, eigvecs)
        eigvals = np.linalg.eigvalsh(arr)
        eigvals = np.clip(eigvals, np.finfo(np.float64).tiny, None)
        return "eigvals", eigvals


def _log_det_from_factor(kind: str, factor) -> float:
    if kind == "cholesky":
        return float(2.0 * np.sum(np.log(np.diag(factor))))
    if kind == "eigh":
        return float(np.sum(np.log(factor[0])))
    return float(np.sum(np.log(factor)))


def _inverse_from_factor(kind: str, factor) -> np.ndarray:
    if kind == "cholesky":
        # Two triangular solves against the identity (cho_solve-style),
        # reusing the factor instead of a fresh LU inside ``inv``.
        identity = np.eye(factor.shape[0])
        return cho_solve((factor, True), identity)
    if kind == "eigh":
        eigvals, eigvecs = factor
        return (eigvecs / eigvals[None, :]) @ eigvecs.T
    raise ValidationError("factorization was computed without inverse support")


def psd_log_det_and_inverse(matrix: np.ndarray) -> tuple[float, np.ndarray]:
    """Log-determinant and inverse of a PSD matrix from one factorization."""
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValidationError(f"matrix must be square, got shape {arr.shape}")
    kind, factor = _factorize_psd(arr)
    return _log_det_from_factor(kind, factor), _inverse_from_factor(kind, factor)


def log_det_psd(matrix: np.ndarray, jitter: float = 0.0) -> float:
    """Log-determinant of a symmetric positive (semi-)definite matrix.

    Uses a Cholesky factorization and falls back to an eigenvalue
    decomposition with clamped eigenvalues when the matrix is only
    semi-definite numerically.
    """
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValidationError(f"matrix must be square, got shape {arr.shape}")
    if jitter > 0:
        arr = arr + jitter * np.eye(arr.shape[0])
    kind, factor = _factorize_psd(arr, need_inverse=False)
    return _log_det_from_factor(kind, factor)


def dpp_log_prior(
    transition_matrix: np.ndarray, rho: float = 0.5, jitter: float = 1e-10
) -> float:
    """Unnormalized log-probability of ``A`` under the DPP diversity prior.

    Returns ``log det(K~_A)`` (Eq. 6 without the constant normalizer, which
    the paper also drops).  The value is non-positive because the normalized
    kernel has unit diagonal.  Entries of ``A`` are floored at the same
    ``1e-12`` the gradient path uses, so value and gradient always refer to
    the same kernel; genuinely negative entries are rejected, not clipped.
    """
    A = np.asarray(transition_matrix, dtype=np.float64)
    if np.any(A < 0):
        raise ValidationError("transition_matrix must be non-negative")
    kernel = transition_kernel_matrix(
        np.clip(A, _MIN_PROB, None), rho=rho, jitter=jitter
    )
    return log_det_psd(kernel)


def dpp_log_prior_and_gradient(
    transition_matrix: np.ndarray, rho: float = 0.5, jitter: float = 1e-10
) -> tuple[float, np.ndarray]:
    """``log det(K~_A)`` and its exact gradient from one kernel factorization.

    The kernel is built once and factorized once (Cholesky, with an
    eigendecomposition fallback); the gradient needs the kernel inverse
    anyway, so the log-determinant is read off the factor's diagonal for
    free and the inverse comes from triangular solves against the identity
    instead of a separate LU factorization.  This is the engine behind
    :func:`dpp_log_prior_gradient` — every gradient evaluation pays for
    exactly one factorization — and serves callers that want the prior
    value and gradient at the same point.

    Gradient derivation (for the normalized correlation kernel): with
    ``P = A ** rho``, ``raw = P P^T``, ``s_i = raw_ii`` and
    ``K~ = raw / sqrt(s_i s_l)``,

        d log|K~| / dA_ij
            = 2 rho A_ij^{rho-1} *
              ( sum_l [K~^-1]_{li} P_lj / sqrt(s_i s_l)
                - [K~^-1]_{ii} P_ij / s_i
                - (1 - [K~^-1]_{ii}) P_ij / s_i )

    which is evaluated in a fully vectorized form.
    """
    A = np.asarray(transition_matrix, dtype=np.float64)
    if A.ndim != 2:
        raise ValidationError(f"transition_matrix must be 2-D, got shape {A.shape}")
    if rho <= 0:
        raise ValidationError(f"rho must be positive, got {rho}")
    if np.any(A < 0):
        raise ValidationError("transition_matrix must be non-negative")
    A = np.clip(A, _MIN_PROB, None)

    powered = A ** rho
    raw = powered @ powered.T
    row_scale = np.clip(np.diag(raw), np.finfo(np.float64).tiny, None)
    norms = np.sqrt(row_scale)

    kernel = transition_kernel_matrix(A, rho=rho, jitter=jitter)
    kind, factor = _factorize_psd(kernel)
    log_det = _log_det_from_factor(kind, factor)
    kernel_inv = _inverse_from_factor(kind, factor)
    inv_diag = np.diag(kernel_inv)

    # T1_ij = sum_l [K~^-1]_{li} P_lj / sqrt(s_i s_l)  (all l, including i)
    scaled_inv = kernel_inv / norms[:, None]           # divide row l by sqrt(s_l)
    T1 = (scaled_inv.T @ powered) / norms[:, None]     # divide row i by sqrt(s_i)
    # Remove the l = i contribution and subtract the normalization pull-back,
    # which together give  - P_ij / s_i  (the inv_diag terms cancel).
    correction = powered / row_scale[:, None]
    T1 -= inv_diag[:, None] * correction
    T2 = (1.0 - inv_diag)[:, None] * correction

    prefactor = 2.0 * rho * A ** (rho - 1.0)
    return log_det, prefactor * (T1 - T2)


def dpp_log_prior_gradient(
    transition_matrix: np.ndarray, rho: float = 0.5, jitter: float = 1e-10
) -> np.ndarray:
    """Exact gradient of ``log det(K~_A)`` with respect to the entries of ``A``.

    See :func:`dpp_log_prior_and_gradient` for the derivation; this wrapper
    discards the log-determinant.
    """
    return dpp_log_prior_and_gradient(transition_matrix, rho=rho, jitter=jitter)[1]


def paper_closed_form_gradient(transition_matrix: np.ndarray) -> np.ndarray:
    """The paper's Eq. (15) closed form (rho = 0.5, unnormalized kernel).

    Kept for reference and tested against the exact gradient: on the
    probability simplex the two differ only by components that are constant
    within each row, which the simplex projection removes.
    """
    A = np.clip(np.asarray(transition_matrix, dtype=np.float64), _MIN_PROB, None)
    kernel = transition_kernel_matrix(A, rho=0.5)
    kernel_inv = np.linalg.inv(kernel)
    sqrt_A = np.sqrt(A)
    weighted = kernel_inv.T @ sqrt_A
    return 0.5 * weighted / sqrt_A
