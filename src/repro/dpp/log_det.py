"""Log-determinant prior score and its gradient with respect to transitions.

The diversity prior of the dHMM is ``alpha * log det(K~_A)`` where ``K~_A``
is the normalized probability product kernel over the rows of the transition
matrix ``A``.  The paper quotes the closed form (Eq. 15, for rho = 0.5)

    d log|K~_A| / d A_ij = 1/2 * sum_m [K~_A^{-1}]_{mi} sqrt(A_mj / A_ij)

which is the gradient of the *unnormalized* kernel's log-determinant.  The
projected-gradient M-step evaluates its objective through the *normalized*
kernel, so this module implements the exact gradient of the normalized form
(it differs by per-row normalization terms; on the probability simplex the
two agree up to components that are constant within a row and therefore
vanish under the simplex projection).  The exact form keeps every line-search
step a true ascent direction for any ``rho > 0``.
"""

from __future__ import annotations

import numpy as np

from repro.dpp.kernels import transition_kernel_matrix
from repro.exceptions import ValidationError

_MIN_PROB = 1e-12


def log_det_psd(matrix: np.ndarray, jitter: float = 0.0) -> float:
    """Log-determinant of a symmetric positive (semi-)definite matrix.

    Uses a Cholesky factorization and falls back to an eigenvalue
    decomposition with clamped eigenvalues when the matrix is only
    semi-definite numerically.
    """
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValidationError(f"matrix must be square, got shape {arr.shape}")
    if jitter > 0:
        arr = arr + jitter * np.eye(arr.shape[0])
    try:
        chol = np.linalg.cholesky(arr)
        return float(2.0 * np.sum(np.log(np.diag(chol))))
    except np.linalg.LinAlgError:
        eigvals = np.linalg.eigvalsh(arr)
        eigvals = np.clip(eigvals, np.finfo(np.float64).tiny, None)
        return float(np.sum(np.log(eigvals)))


def dpp_log_prior(
    transition_matrix: np.ndarray, rho: float = 0.5, jitter: float = 1e-10
) -> float:
    """Unnormalized log-probability of ``A`` under the DPP diversity prior.

    Returns ``log det(K~_A)`` (Eq. 6 without the constant normalizer, which
    the paper also drops).  The value is non-positive because the normalized
    kernel has unit diagonal.
    """
    kernel = transition_kernel_matrix(transition_matrix, rho=rho, jitter=jitter)
    return log_det_psd(kernel)


def dpp_log_prior_gradient(
    transition_matrix: np.ndarray, rho: float = 0.5, jitter: float = 1e-10
) -> np.ndarray:
    """Exact gradient of ``log det(K~_A)`` with respect to the entries of ``A``.

    Derivation (for the normalized correlation kernel): with
    ``P = A ** rho``, ``raw = P P^T``, ``s_i = raw_ii`` and
    ``K~ = raw / sqrt(s_i s_l)``,

        d log|K~| / dA_ij
            = 2 rho A_ij^{rho-1} *
              ( sum_l [K~^-1]_{li} P_lj / sqrt(s_i s_l)
                - [K~^-1]_{ii} P_ij / s_i
                - (1 - [K~^-1]_{ii}) P_ij / s_i )

    which this function evaluates in a fully vectorized form.
    """
    A = np.asarray(transition_matrix, dtype=np.float64)
    if A.ndim != 2:
        raise ValidationError(f"transition_matrix must be 2-D, got shape {A.shape}")
    if rho <= 0:
        raise ValidationError(f"rho must be positive, got {rho}")
    A = np.clip(A, _MIN_PROB, None)

    powered = A ** rho
    raw = powered @ powered.T
    row_scale = np.clip(np.diag(raw), np.finfo(np.float64).tiny, None)
    norms = np.sqrt(row_scale)

    kernel = transition_kernel_matrix(A, rho=rho, jitter=jitter)
    kernel_inv = np.linalg.inv(kernel)
    inv_diag = np.diag(kernel_inv)

    # T1_ij = sum_l [K~^-1]_{li} P_lj / sqrt(s_i s_l)  (all l, including i)
    scaled_inv = kernel_inv / norms[:, None]           # divide row l by sqrt(s_l)
    T1 = (scaled_inv.T @ powered) / norms[:, None]     # divide row i by sqrt(s_i)
    # Remove the l = i contribution and subtract the normalization pull-back,
    # which together give  - P_ij / s_i  (the inv_diag terms cancel).
    correction = powered / row_scale[:, None]
    T1 -= inv_diag[:, None] * correction
    T2 = (1.0 - inv_diag)[:, None] * correction

    prefactor = 2.0 * rho * A ** (rho - 1.0)
    return prefactor * (T1 - T2)


def paper_closed_form_gradient(transition_matrix: np.ndarray) -> np.ndarray:
    """The paper's Eq. (15) closed form (rho = 0.5, unnormalized kernel).

    Kept for reference and tested against the exact gradient: on the
    probability simplex the two differ only by components that are constant
    within each row, which the simplex projection removes.
    """
    A = np.clip(np.asarray(transition_matrix, dtype=np.float64), _MIN_PROB, None)
    kernel = transition_kernel_matrix(A, rho=0.5)
    kernel_inv = np.linalg.inv(kernel)
    sqrt_A = np.sqrt(A)
    weighted = kernel_inv.T @ sqrt_A
    return 0.5 * weighted / sqrt_A
