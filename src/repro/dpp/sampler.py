"""Exact samplers for discrete DPPs and k-DPPs.

These implement the spectral sampling algorithm of Hough et al. (2006) as
popularized by Kulesza & Taskar: first sample a set of eigenvectors, then
sample items one at a time from the induced projection DPP.  They are part of
the DPP substrate the paper builds on (Section 2.2 / 3.1) and are exercised
by tests demonstrating that the determinant prior indeed prefers diverse
subsets.
"""

from __future__ import annotations

import numpy as np

from repro.dpp.esp import elementary_symmetric_table
from repro.exceptions import ValidationError
from repro.utils.rng import SeedLike, as_generator


def _eigendecompose(kernel: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    L = np.asarray(kernel, dtype=np.float64)
    if L.ndim != 2 or L.shape[0] != L.shape[1]:
        raise ValidationError(f"kernel must be square, got shape {L.shape}")
    if not np.allclose(L, L.T, atol=1e-8):
        raise ValidationError("kernel must be symmetric")
    eigenvalues, eigenvectors = np.linalg.eigh(0.5 * (L + L.T))
    return np.clip(eigenvalues, 0.0, None), eigenvectors


def _sample_from_selected_eigenvectors(
    vectors: np.ndarray, rng: np.random.Generator
) -> list[int]:
    """Sample a projection DPP given the selected eigenvectors (columns)."""
    V = vectors.copy()
    n = V.shape[0]
    selected: list[int] = []
    while V.shape[1] > 0:
        squared = np.sum(V**2, axis=1)
        total = squared.sum()
        if total <= 0:
            break
        probabilities = squared / total
        item = int(rng.choice(n, p=probabilities))
        selected.append(item)

        # Condition on the chosen item: project V onto the orthogonal
        # complement of the row corresponding to `item`.
        row = V[item, :]
        pivot = int(np.argmax(np.abs(row)))
        if np.abs(row[pivot]) < 1e-12:
            break
        V = V - np.outer(V[:, pivot] / row[pivot], row)
        V = np.delete(V, pivot, axis=1)
        if V.shape[1] > 0:
            V, _ = np.linalg.qr(V)
    return selected


def sample_dpp(kernel: np.ndarray, seed: SeedLike = None) -> list[int]:
    """Draw an exact sample from the L-ensemble DPP defined by ``kernel``."""
    rng = as_generator(seed)
    eigenvalues, eigenvectors = _eigendecompose(kernel)
    keep = rng.random(eigenvalues.size) < eigenvalues / (eigenvalues + 1.0)
    if not np.any(keep):
        return []
    return sorted(_sample_from_selected_eigenvectors(eigenvectors[:, keep], rng))


def sample_kdpp(kernel: np.ndarray, k: int, seed: SeedLike = None) -> list[int]:
    """Draw an exact sample of fixed size ``k`` from the k-DPP of ``kernel``."""
    rng = as_generator(seed)
    eigenvalues, eigenvectors = _eigendecompose(kernel)
    n = eigenvalues.size
    if k < 0 or k > n:
        raise ValidationError(f"k must lie in [0, {n}], got {k}")
    if k == 0:
        return []

    table = elementary_symmetric_table(eigenvalues, k)
    remaining = k
    chosen_eigen: list[int] = []
    for i in range(n, 0, -1):
        if remaining == 0:
            break
        if i == remaining:
            chosen_eigen.extend(range(i))
            remaining = 0
            break
        denom = table[remaining, i]
        if denom <= 0:
            continue
        accept_prob = eigenvalues[i - 1] * table[remaining - 1, i - 1] / denom
        if rng.random() < accept_prob:
            chosen_eigen.append(i - 1)
            remaining -= 1
    if remaining != 0:
        # Numerically degenerate kernel: fall back to top-k eigenvalues.
        order = np.argsort(eigenvalues)[::-1]
        chosen_eigen = list(order[:k])

    vectors = eigenvectors[:, sorted(chosen_eigen)]
    sample = _sample_from_selected_eigenvectors(vectors, rng)
    return sorted(sample)
