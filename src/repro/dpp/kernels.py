"""Probability product kernels between discrete distributions.

The dHMM prior treats each row of the transition matrix as a point in the
probability simplex and measures pairwise similarity with the probability
product kernel of Jebara, Kondor & Howard (JMLR 2004):

    K(A_i, A_j; rho) = sum_x P(x|A_i)^rho P(x|A_j)^rho

normalized to the correlation form

    K~(A_i, A_j; rho) = K(A_i, A_j) / sqrt(K(A_i, A_i) K(A_j, A_j)).

With rho = 0.5 (the paper's setting) the kernel equals the Bhattacharyya
coefficient between the two rows and the diagonal of ``K~`` is exactly one.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def probability_product_kernel(p: np.ndarray, q: np.ndarray, rho: float = 0.5) -> float:
    """Probability product kernel between two discrete distributions.

    Parameters
    ----------
    p, q:
        Non-negative vectors of the same length (typically summing to one).
    rho:
        Kernel exponent; ``0.5`` gives the Bhattacharyya kernel, ``1.0`` the
        expected-likelihood kernel.
    """
    if rho <= 0:
        raise ValidationError(f"rho must be positive, got {rho}")
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape or p.ndim != 1:
        raise ValidationError(
            f"p and q must be 1-D vectors of equal length, got {p.shape} and {q.shape}"
        )
    if np.any(p < 0) or np.any(q < 0):
        raise ValidationError("distributions must be non-negative")
    return float(np.sum((p ** rho) * (q ** rho)))


def normalized_probability_kernel(p: np.ndarray, q: np.ndarray, rho: float = 0.5) -> float:
    """Normalized correlation form of the probability product kernel (Eq. 2/5)."""
    numerator = probability_product_kernel(p, q, rho)
    denom = np.sqrt(
        probability_product_kernel(p, p, rho) * probability_product_kernel(q, q, rho)
    )
    if denom == 0.0:
        raise ValidationError("cannot normalize kernel for an all-zero distribution")
    return float(numerator / denom)


def transition_kernel_matrix(
    transition_matrix: np.ndarray, rho: float = 0.5, jitter: float = 0.0
) -> np.ndarray:
    """Normalized-correlation kernel matrix over the rows of a transition matrix.

    This is ``K~_A`` in the paper (Eq. 5): entry ``(i, j)`` measures the
    similarity between transition distributions out of states ``i`` and
    ``j``.  An optional ``jitter`` is added to the diagonal to keep the
    matrix invertible when rows are (numerically) identical.

    Parameters
    ----------
    transition_matrix:
        A ``(k, m)`` matrix with non-negative rows; rows are typically
        probability distributions but only non-negativity is required.
    rho:
        Probability product kernel exponent (paper uses 0.5).
    jitter:
        Non-negative value added to the diagonal.
    """
    if rho <= 0:
        raise ValidationError(f"rho must be positive, got {rho}")
    if jitter < 0:
        raise ValidationError(f"jitter must be non-negative, got {jitter}")
    A = np.asarray(transition_matrix, dtype=np.float64)
    if A.ndim != 2:
        raise ValidationError(f"transition_matrix must be 2-D, got shape {A.shape}")
    if np.any(A < 0):
        raise ValidationError("transition_matrix must be non-negative")

    powered = A ** rho
    raw = powered @ powered.T
    norms = np.sqrt(np.clip(np.diag(raw), np.finfo(np.float64).tiny, None))
    kernel = raw / np.outer(norms, norms)
    # Numerical safety: the diagonal of the correlation kernel is one by
    # construction; enforce symmetry exactly.
    kernel = 0.5 * (kernel + kernel.T)
    np.fill_diagonal(kernel, 1.0)
    if jitter > 0:
        kernel = kernel + jitter * np.eye(A.shape[0])
    return kernel
