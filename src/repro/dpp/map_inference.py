"""Greedy MAP inference for DPPs.

Finding the exact MAP subset of a DPP is NP-hard; the standard greedy
algorithm (repeatedly add the item with the largest marginal log-det gain)
gives the usual (1 - 1/e)-style approximation for the submodular surrogate
and is what practitioners use.  Included as part of the DPP substrate
referenced by the paper's related-work discussion (Gillenwater et al. 2012).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def greedy_map_dpp(kernel: np.ndarray, max_size: int | None = None) -> list[int]:
    """Greedily build the subset maximizing ``log det(L_Y)``.

    Items are added while they increase the determinant (gain > 0) or until
    ``max_size`` items have been selected.

    Parameters
    ----------
    kernel:
        Symmetric positive semi-definite L-ensemble kernel.
    max_size:
        Optional cap on the subset size; defaults to the ground set size.
    """
    L = np.asarray(kernel, dtype=np.float64)
    if L.ndim != 2 or L.shape[0] != L.shape[1]:
        raise ValidationError(f"kernel must be square, got shape {L.shape}")
    n = L.shape[0]
    if max_size is None:
        max_size = n
    if max_size < 0:
        raise ValidationError(f"max_size must be non-negative, got {max_size}")

    selected: list[int] = []
    current_logdet = 0.0
    available = set(range(n))

    while available and len(selected) < max_size:
        best_item = None
        best_gain = 0.0
        best_logdet = current_logdet
        for item in available:
            trial = selected + [item]
            sub = L[np.ix_(trial, trial)]
            sign, logdet = np.linalg.slogdet(sub)
            if sign <= 0:
                continue
            gain = logdet - current_logdet
            if best_item is None or gain > best_gain:
                best_item = item
                best_gain = gain
                best_logdet = logdet
        if best_item is None or best_gain <= 0:
            break
        selected.append(best_item)
        available.remove(best_item)
        current_logdet = best_logdet

    return sorted(selected)
