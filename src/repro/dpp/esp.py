"""Elementary symmetric polynomials of kernel eigenvalues.

``e_k(lambda_1, ..., lambda_N)`` is the normalizer of the k-DPP (paper
Eq. 1).  The standard dynamic program from Kulesza & Taskar (2011) is used:

    e_k(lambda_1..n) = e_k(lambda_1..n-1) + lambda_n * e_{k-1}(lambda_1..n-1)
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def elementary_symmetric_polynomials(eigenvalues: np.ndarray, max_order: int) -> np.ndarray:
    """Compute ``e_0 .. e_max_order`` of the given eigenvalues.

    Parameters
    ----------
    eigenvalues:
        One-dimensional array of (non-negative) eigenvalues.
    max_order:
        Highest order polynomial to compute.

    Returns
    -------
    numpy.ndarray
        Array ``E`` of shape ``(max_order + 1,)`` with ``E[k] = e_k``.
    """
    lam = np.asarray(eigenvalues, dtype=np.float64)
    if lam.ndim != 1:
        raise ValidationError(f"eigenvalues must be 1-D, got shape {lam.shape}")
    if max_order < 0:
        raise ValidationError(f"max_order must be non-negative, got {max_order}")

    n = lam.size
    order = min(max_order, n)
    # e[k] after processing the first i eigenvalues.
    e = np.zeros(max_order + 1, dtype=np.float64)
    e[0] = 1.0
    for i in range(n):
        upper = min(i + 1, order)
        # iterate k downwards so e[k-1] is still the previous-column value
        for k in range(upper, 0, -1):
            e[k] = e[k] + lam[i] * e[k - 1]
    return e


def elementary_symmetric_table(eigenvalues: np.ndarray, max_order: int) -> np.ndarray:
    """Full DP table ``E[k, n] = e_k(lambda_1..n)`` used by the k-DPP sampler."""
    lam = np.asarray(eigenvalues, dtype=np.float64)
    if lam.ndim != 1:
        raise ValidationError(f"eigenvalues must be 1-D, got shape {lam.shape}")
    if max_order < 0:
        raise ValidationError(f"max_order must be non-negative, got {max_order}")

    n = lam.size
    table = np.zeros((max_order + 1, n + 1), dtype=np.float64)
    table[0, :] = 1.0
    for k in range(1, max_order + 1):
        for i in range(1, n + 1):
            table[k, i] = table[k, i - 1] + lam[i - 1] * table[k - 1, i - 1]
    return table
