"""Determinantal point process substrate.

Provides the probability product kernel between discrete distributions, the
normalized correlation kernel used by the dHMM transition prior, log-det
scores and gradients, elementary symmetric polynomials, and discrete
(k-)DPP samplers and MAP inference for completeness.
"""

from repro.dpp.kernels import (
    probability_product_kernel,
    normalized_probability_kernel,
    transition_kernel_matrix,
)
from repro.dpp.log_det import (
    log_det_psd,
    psd_log_det_and_inverse,
    dpp_log_prior,
    dpp_log_prior_and_gradient,
    dpp_log_prior_gradient,
)
from repro.dpp.esp import elementary_symmetric_polynomials
from repro.dpp.kdpp import KDPP
from repro.dpp.sampler import sample_dpp, sample_kdpp
from repro.dpp.map_inference import greedy_map_dpp

__all__ = [
    "probability_product_kernel",
    "normalized_probability_kernel",
    "transition_kernel_matrix",
    "log_det_psd",
    "psd_log_det_and_inverse",
    "dpp_log_prior",
    "dpp_log_prior_and_gradient",
    "dpp_log_prior_gradient",
    "elementary_symmetric_polynomials",
    "KDPP",
    "sample_dpp",
    "sample_kdpp",
    "greedy_map_dpp",
]
