"""k-DPP distribution over fixed-size subsets of a ground set.

The dHMM uses a *continuous* k-DPP over the k rows of the transition matrix;
the normalizer is dropped because it does not depend on ``A`` once the subset
size is fixed at ``k``.  This module provides the general discrete k-DPP with
its exact normalizer for completeness (it also backs the samplers and some of
the unit tests that check the prior really favours diverse subsets).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dpp.esp import elementary_symmetric_polynomials
from repro.exceptions import ValidationError


@dataclass
class KDPP:
    """A k-DPP defined by an L-ensemble kernel ``L`` and a cardinality ``k``.

    ``P(Y) = det(L_Y) / e_k(eigenvalues(L))`` for ``|Y| = k``.
    """

    kernel: np.ndarray
    k: int

    def __post_init__(self) -> None:
        L = np.asarray(self.kernel, dtype=np.float64)
        if L.ndim != 2 or L.shape[0] != L.shape[1]:
            raise ValidationError(f"kernel must be square, got shape {L.shape}")
        if not np.allclose(L, L.T, atol=1e-8):
            raise ValidationError("kernel must be symmetric")
        if self.k < 0 or self.k > L.shape[0]:
            raise ValidationError(
                f"k must lie in [0, {L.shape[0]}], got {self.k}"
            )
        self.kernel = 0.5 * (L + L.T)
        self._eigenvalues = np.clip(np.linalg.eigvalsh(self.kernel), 0.0, None)
        self._log_normalizer = float(
            np.log(
                max(
                    elementary_symmetric_polynomials(self._eigenvalues, self.k)[self.k],
                    np.finfo(np.float64).tiny,
                )
            )
        )

    @property
    def ground_set_size(self) -> int:
        """Number of items in the ground set."""
        return self.kernel.shape[0]

    @property
    def log_normalizer(self) -> float:
        """Log of the k-DPP normalizer ``e_k(lambda)``."""
        return self._log_normalizer

    def log_probability(self, subset) -> float:
        """Exact log-probability of a subset of size ``k``."""
        idx = self._validate_subset(subset)
        sub = self.kernel[np.ix_(idx, idx)]
        sign, logdet = np.linalg.slogdet(sub)
        if sign <= 0:
            return float("-inf")
        return float(logdet - self._log_normalizer)

    def unnormalized_log_probability(self, subset) -> float:
        """``log det(L_Y)`` without the normalizer (what the dHMM prior uses)."""
        idx = self._validate_subset(subset)
        sub = self.kernel[np.ix_(idx, idx)]
        sign, logdet = np.linalg.slogdet(sub)
        if sign <= 0:
            return float("-inf")
        return float(logdet)

    def _validate_subset(self, subset) -> np.ndarray:
        idx = np.asarray(list(subset), dtype=np.int64)
        if idx.size != self.k:
            raise ValidationError(f"subset must have size {self.k}, got {idx.size}")
        if idx.size != np.unique(idx).size:
            raise ValidationError("subset must not contain duplicates")
        if idx.size and (idx.min() < 0 or idx.max() >= self.ground_set_size):
            raise ValidationError("subset indices out of range")
        return idx
