"""Hot-path purity rules for the numpy inference kernels.

Functions whose ``def`` line carries ``# repro: hot-path`` (or any
function in a module with a standalone ``# repro: hot-path`` comment) are
inner-loop kernels: the bucket forward/backward/Viterbi recursions in
:mod:`repro.hmm.backends` and the gather/scatter paths of
:mod:`repro.hmm.corpus`.  Three rules keep them pure:

``hot-path-loop``
    Python ``for``/``while`` loops are forbidden unless annotated
    ``# repro: loop-ok[<reason>]`` — an HMM's time recursion is inherently
    sequential (one batched matmul per step), so those loops are expected
    and *declared*; an undeclared loop is usually an accidental per-token
    or per-sequence scalar path.

``hot-path-copy``
    Dtype-converting array constructors (``np.asarray(..., dtype=...)``,
    ``np.array``, ``.astype``, ``np.ascontiguousarray``) inside a loop
    body copy per iteration; hoist them out of the loop.

``hot-path-unguarded-log``
    ``np.log`` / ``np.divide`` whose argument is not visibly clamped
    (``np.maximum``/``np.clip``/``_TINY``/``safe_log``) underflows to
    ``-inf``/``nan`` on degenerate inputs; route through the module's
    ``_TINY`` guard idiom.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Finding, Rule, SourceModule, register

__all__ = ["HotPathLoopRule", "HotPathCopyRule", "HotPathLogRule"]


def _hot_functions(
    module: SourceModule,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    whole_module = module.has_module_pragma("hot-path")
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if whole_module or module.header_pragma(node, "hot-path") is not None:
                yield node


def _loops(func: ast.AST) -> Iterator[ast.For | ast.While]:
    for node in ast.walk(func):
        if isinstance(node, (ast.For, ast.While)):
            yield node


@register
class HotPathLoopRule(Rule):
    id = "hot-path-loop"
    summary = (
        "no Python for/while in `# repro: hot-path` kernels unless declared "
        "`# repro: loop-ok[reason]` (time recursions are; scalar paths aren't)"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for func in _hot_functions(module):
            for loop in _loops(func):
                if module.header_pragma(loop, "loop-ok") is not None:
                    continue
                kind = "for" if isinstance(loop, ast.For) else "while"
                yield self.finding(
                    module,
                    loop,
                    f"Python `{kind}` loop in hot-path kernel "
                    f"'{func.name}' — vectorize over the batch axis, or "
                    "declare an inherent recursion with "
                    "`# repro: loop-ok[reason]`",
                )


def _is_copying_call(call: ast.Call) -> str | None:
    """Describe the copy when ``call`` converts/copies an array, else None."""
    func = call.func
    if isinstance(func, ast.Attribute):
        if func.attr == "astype":
            return ".astype(...)"
        if isinstance(func.value, ast.Name) and func.value.id in ("np", "numpy"):
            if func.attr == "array":
                return "np.array(...)"
            if func.attr == "ascontiguousarray":
                return "np.ascontiguousarray(...)"
            if func.attr == "asarray" and any(
                kw.arg == "dtype" for kw in call.keywords
            ):
                return "np.asarray(..., dtype=...)"
    return None


@register
class HotPathCopyRule(Rule):
    id = "hot-path-copy"
    summary = (
        "no dtype-converting array copies (np.array/astype/asarray+dtype) "
        "inside loop bodies of hot-path kernels — hoist them out"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for func in _hot_functions(module):
            for loop in _loops(func):
                for stmt in loop.body:
                    for node in ast.walk(stmt):
                        if isinstance(node, ast.Call):
                            what = _is_copying_call(node)
                            if what is not None:
                                yield self.finding(
                                    module,
                                    node,
                                    f"{what} copies its input on every "
                                    f"iteration of the loop at line "
                                    f"{loop.lineno} — hoist the conversion "
                                    "out of the hot loop",
                                )


_GUARD_NAMES = {"_TINY", "safe_log"}
_GUARD_CALLS = {"maximum", "clip", "fmax"}


def _is_guarded(arg: ast.expr) -> bool:
    """True when the expression subtree visibly clamps away zeros."""
    for node in ast.walk(arg):
        if isinstance(node, ast.Name) and node.id in _GUARD_NAMES:
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _GUARD_CALLS:
                return True
            if isinstance(func, ast.Name) and func.id in _GUARD_NAMES:
                return True
    return False


@register
class HotPathLogRule(Rule):
    id = "hot-path-unguarded-log"
    summary = (
        "np.log/np.divide in hot-path kernels must clamp their input "
        "(np.maximum/np.clip/_TINY/safe_log) against underflow"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for func in _hot_functions(module):
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                f = node.func
                if not (
                    isinstance(f, ast.Attribute)
                    and isinstance(f.value, ast.Name)
                    and f.value.id in ("np", "numpy")
                    and f.attr in ("log", "divide", "true_divide")
                ):
                    continue
                if any(_is_guarded(arg) for arg in node.args):
                    continue
                yield self.finding(
                    module,
                    node,
                    f"np.{f.attr}() without a visible _TINY guard in "
                    f"hot-path kernel '{func.name}' — clamp the argument "
                    "(np.maximum(x, _TINY)) or justify with a suppression",
                )
