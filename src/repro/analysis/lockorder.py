"""Runtime lock-order tracker: ABBA deadlock detection for the serving tier.

The static ``guarded-by`` rule proves each shared attribute is accessed
under its lock; this module covers the orthogonal hazard — two locks taken
in opposite orders by two threads.  Serving locks are created through
:func:`make_lock`:

* **disarmed** (the default): :func:`make_lock` returns a plain
  ``threading.Lock`` — zero overhead, so the serving/streaming bench
  gates are untouched;
* **armed** (``REPRO_LOCK_TRACKER=1`` in the environment, or
  :func:`arm` from a test): it returns a :class:`TrackedLock` that
  maintains a per-thread stack of held locks and a global acquisition-
  order graph keyed by lock *name*.  Acquiring ``B`` while holding ``A``
  adds the edge ``A -> B``; if ``B -> … -> A`` is already reachable, the
  two orders can interleave into a deadlock and a :class:`Violation` is
  recorded (or raised, in ``strict`` mode).  Re-acquiring a held
  non-reentrant lock name is recorded as a self-deadlock.

Edges are keyed by the name passed to :func:`make_lock`, so all instances
of a class share one node — the graph checks the *locking discipline*,
not individual objects.  The serving and chaos suites run armed in CI;
``tests/conftest.py`` fails the session if any violation was recorded.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass

__all__ = [
    "LockOrderError",
    "LockOrderTracker",
    "TrackedLock",
    "Violation",
    "arm",
    "disarm",
    "get_tracker",
    "is_armed",
    "make_lock",
]


class LockOrderError(AssertionError):
    """Raised on a lock-order violation when the tracker runs in strict mode."""


@dataclass(frozen=True)
class Violation:
    """One observed deadlock risk."""

    #: ``"cycle"`` (ABBA order inversion) or ``"reentry"`` (self-deadlock).
    kind: str
    #: the closed chain of lock names, e.g. ``("A", "B", "A")``.
    cycle: tuple[str, ...]
    #: name of the thread whose acquisition closed the cycle.
    thread: str

    def describe(self) -> str:
        chain = " -> ".join(self.cycle)
        return f"{self.kind}: {chain} (thread {self.thread})"


class LockOrderTracker:
    """Acquisition-order graph over named locks; cycle ⇒ deadlock risk."""

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self._mutex = threading.Lock()
        self._edges: dict[str, set[str]] = {}
        self._local = threading.local()
        self.violations: list[Violation] = []

    # ------------------------------------------------------------------
    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _reaches(self, source: str, target: str) -> list[str] | None:
        """A path ``source -> … -> target`` in the edge graph, if any."""
        seen = {source}
        frontier: list[tuple[str, list[str]]] = [(source, [source])]
        while frontier:
            node, path = frontier.pop()
            for successor in self._edges.get(node, ()):
                if successor == target:
                    return path + [successor]
                if successor not in seen:
                    seen.add(successor)
                    frontier.append((successor, path + [successor]))
        return None

    def _record(self, violation: Violation) -> None:
        self.violations.append(violation)
        if self.strict:
            raise LockOrderError(violation.describe())

    # ------------------------------------------------------------------
    def note_acquire(self, name: str) -> None:
        """Called *before* a potentially blocking acquire of ``name``."""
        stack = self._stack()
        if not stack:
            return
        thread = threading.current_thread().name
        with self._mutex:
            if name in stack:
                self._record(Violation("reentry", (name, name), thread))
                return
            for held in stack:
                successors = self._edges.setdefault(held, set())
                if name in successors:
                    continue
                # adding held -> name: a pre-existing name ->* held path
                # means the opposite order was already observed
                path = self._reaches(name, held)
                successors.add(name)
                if path is not None:
                    self._record(Violation("cycle", (held, *path, name), thread))

    def note_acquired(self, name: str) -> None:
        self._stack().append(name)

    def note_release(self, name: str) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == name:
                del stack[index]
                return

    def assert_clean(self) -> None:
        """Raise :class:`LockOrderError` if any violation was recorded."""
        if self.violations:
            details = "\n".join(v.describe() for v in self.violations)
            raise LockOrderError(
                f"{len(self.violations)} lock-order violation(s):\n{details}"
            )


class TrackedLock:
    """A ``threading.Lock`` wrapper feeding the acquisition-order graph."""

    __slots__ = ("name", "_lock", "_tracker")

    def __init__(self, name: str, tracker: LockOrderTracker) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._tracker = tracker

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._tracker.note_acquire(self.name)
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._tracker.note_acquired(self.name)
        return acquired

    def release(self) -> None:
        self._lock.release()
        self._tracker.note_release(self.name)

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()


_tracker: LockOrderTracker | None = None


def arm(strict: bool = False) -> LockOrderTracker:
    """Switch :func:`make_lock` to tracked locks; returns the tracker."""
    global _tracker
    _tracker = LockOrderTracker(strict=strict)
    return _tracker


def disarm() -> None:
    """Back to plain ``threading.Lock`` factories (zero overhead)."""
    global _tracker
    _tracker = None


def is_armed() -> bool:
    return _tracker is not None


def get_tracker() -> LockOrderTracker | None:
    return _tracker


def make_lock(name: str):
    """A lock for serving-layer shared state.

    Plain ``threading.Lock`` while disarmed; a :class:`TrackedLock` wired
    into the acquisition-order graph while armed.  ``name`` should be
    stable per call site (``"scheduler.lifecycle"``, ``"stats"``, …) —
    instances created at the same site share a graph node.
    """
    tracker = _tracker
    if tracker is None:
        return threading.Lock()
    return TrackedLock(name, tracker)


if os.environ.get("REPRO_LOCK_TRACKER", "").strip().lower() in ("1", "true", "yes"):
    arm()
