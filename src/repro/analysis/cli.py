"""``repro-lint``: the project's static-analysis entry point.

Usage::

    repro-lint [PATH ...] [--format text|json] [--select RULES]
               [--ignore RULES] [--list-rules]

Paths default to ``src``.  Exit codes are stable: 0 clean, 1 findings,
2 usage/parse errors — CI treats anything non-zero as a failed gate.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.framework import (
    EXIT_CLEAN,
    EXIT_USAGE,
    all_rules,
    lint_paths,
    render_json,
    render_text,
)


def _split_rules(value: str | None) -> list[str] | None:
    if value is None:
        return None
    return [part.strip() for part in value.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Project-specific static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run exclusively",
    )
    parser.add_argument(
        "--ignore", metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id, rule in sorted(all_rules().items()):
            print(f"{rule_id:24s} {rule.summary}")
        print(f"{'suppression':24s} unjustified/unused/malformed repro pragmas")
        return EXIT_CLEAN
    result = lint_paths(
        args.paths,
        select=_split_rules(args.select),
        ignore=_split_rules(args.ignore),
    )
    if result.n_files == 0 and not result.errors:
        print("repro-lint: no Python files found", file=sys.stderr)
        return EXIT_USAGE
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return result.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
