"""Code-hygiene rules: unused imports and unreachable statements.

``unused-import``
    A module-level import whose bound name is never referenced (by a
    ``Name`` node anywhere in the module, or listed as a string in
    ``__all__``).  ``__init__.py`` files are exempt — their imports *are*
    the re-export surface.  Deletions are the expected fix; suppress only
    genuine import-for-side-effect cases.

``unreachable-code``
    Statements in the same block after an unconditional ``return``,
    ``raise``, ``break`` or ``continue``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Finding, Rule, SourceModule, register

__all__ = ["UnusedImportRule", "UnreachableCodeRule"]


@register
class UnusedImportRule(Rule):
    id = "unused-import"
    summary = (
        "imports bound to names the module never uses (delete them; "
        "__init__.py re-export surfaces are exempt)"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.path.endswith("__init__.py"):
            return
        bindings: list[tuple[str, ast.stmt]] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    bindings.append((name, node))
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bindings.append((alias.asname or alias.name, node))
        if not bindings:
            return
        used: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Name):
                used.add(node.id)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                # covers __all__ entries and string annotations alike
                used.add(node.value)
        seen: set[tuple[str, int]] = set()
        for name, node in bindings:
            if name in used:
                continue
            key = (name, node.lineno)
            if key in seen:
                continue
            seen.add(key)
            yield self.finding(
                module,
                node,
                f"import '{name}' is never used in this module — delete it "
                "(or suppress with a justification if imported for its "
                "side effects)",
            )


_TERMINAL = (ast.Return, ast.Raise, ast.Break, ast.Continue)


@register
class UnreachableCodeRule(Rule):
    id = "unreachable-code"
    summary = "statements after an unconditional return/raise/break/continue"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            for block_name in ("body", "orelse", "finalbody"):
                block = getattr(node, block_name, None)
                if not isinstance(block, list):
                    continue
                terminated = False
                for stmt in block:
                    if terminated and isinstance(stmt, ast.stmt):
                        yield self.finding(
                            module,
                            stmt,
                            "unreachable: the block already terminated with "
                            "return/raise/break/continue — delete this code",
                        )
                        break  # one finding per block is enough
                    if isinstance(stmt, _TERMINAL):
                        terminated = True
