"""Concurrency-discipline rules: ``guarded-by`` coverage and async purity.

These rules mechanize the invariants the serving layer's docstrings used
to carry as prose:

``guarded-by``
    Attributes initialized with a trailing ``# repro: guarded-by[<lock>]``
    pragma are *shared state*: every later ``self.<attr>`` read or write
    must happen inside ``with self.<lock>:`` (any enclosing ``with`` on
    that lock attribute), in ``__init__`` (construction precedes
    publication), or in a method whose ``def`` line carries
    ``# repro: confined[<owning thread>]``.  Nested functions and lambdas
    are analyzed with an *empty* lock context — a closure may run on any
    thread, so it cannot inherit the enclosing scope's critical section.

``async-blocking``
    Inside ``async def`` bodies, flags the blocking primitives that stall
    the event loop: ``time.sleep``, ``Future.result()``/``join()``,
    ``queue`` module calls, file I/O (``open``/``json.load``/``np.load``…),
    scheduler submission and stats-snapshot calls (they acquire
    cross-thread locks), and ``with`` on a ``self.*lock*`` attribute.
    Work deferred into a nested ``def``/``lambda`` (the
    ``run_in_executor`` pattern) is exempt — that is the fix.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Finding, Rule, SourceModule, register

__all__ = ["GuardedByRule", "AsyncBlockingRule"]


def _self_attr(node: ast.AST) -> str | None:
    """``attr`` when ``node`` is ``self.<attr>``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


@register
class GuardedByRule(Rule):
    id = "guarded-by"
    summary = (
        "reads/writes of a `# repro: guarded-by[lock]` attribute must hold "
        "the declared lock (or run in a `# repro: confined[...]` method)"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    # ------------------------------------------------------------------
    def _collect_guarded(
        self, module: SourceModule, cls: ast.ClassDef
    ) -> tuple[dict[str, str], set[int]]:
        """Map guarded attribute -> lock attribute; remember declaration lines."""
        guarded: dict[str, str] = {}
        declaration_lines: set[int] = set()
        for node in ast.walk(cls):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            pragma = module.pragma_in_range(
                "guarded-by", node.lineno, node.end_lineno or node.lineno
            )
            if pragma is None or not pragma.args:
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                attr = _self_attr(target)
                if attr is None and isinstance(target, ast.Name):
                    attr = target.id  # class-level declaration
                if attr is not None:
                    guarded[attr] = pragma.args[0]
                    declaration_lines.add(node.lineno)
        return guarded, declaration_lines

    def _check_class(
        self, module: SourceModule, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        self._guarded, self._declaration_lines = self._collect_guarded(module, cls)
        if not self._guarded:
            return
        self._module = module
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name == "__init__":
                continue  # construction precedes publication
            if module.header_pragma(item, "confined") is not None:
                continue
            yield from self._scan_block(item.body, frozenset())

    def _scan_block(
        self, stmts: list[ast.stmt], held: frozenset[str]
    ) -> Iterator[Finding]:
        for stmt in stmts:
            yield from self._scan_stmt(stmt, held)

    def _scan_stmt(
        self, stmt: ast.stmt, held: frozenset[str]
    ) -> Iterator[Finding]:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquired = set(held)
            for item in stmt.items:
                yield from self._scan_expr(item.context_expr, held)
                attr = _self_attr(item.context_expr)
                if attr is not None:
                    acquired.add(attr)
            yield from self._scan_block(stmt.body, frozenset(acquired))
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested function may run on another thread: empty context
            # (unless it is itself declared confined).
            if self._module.header_pragma(stmt, "confined") is None:
                yield from self._scan_block(stmt.body, frozenset())
            return
        if isinstance(stmt, ast.ClassDef):
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                yield from self._scan_stmt(child, held)
            elif isinstance(child, ast.ExceptHandler):
                yield from self._scan_block(child.body, held)
            elif isinstance(child, ast.expr):
                yield from self._scan_expr(child, held)

    def _scan_expr(
        self, node: ast.expr, held: frozenset[str]
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Lambda):
            yield from self._scan_expr(node.body, frozenset())
            return
        attr = _self_attr(node)
        if (
            attr is not None
            and attr in self._guarded
            and node.lineno not in self._declaration_lines
        ):
            lock = self._guarded[attr]
            if lock not in held:
                yield self.finding(
                    self._module,
                    node,
                    f"'{attr}' is guarded by '{lock}' but accessed without "
                    f"holding it — wrap in `with self.{lock}:` or mark the "
                    "method `# repro: confined[owning thread]`",
                )
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                yield from self._scan_expr(child, held)
            elif isinstance(child, ast.comprehension):
                for sub in (child.target, child.iter, *child.ifs):
                    yield from self._scan_expr(sub, held)


_BLOCKING_CALL_ATTRS = {
    "result": "blocks on a concurrent future",
    "snapshot": "acquires the stats lock",
    "submit_tag": "scheduler submission takes the lifecycle lock",
    "submit_score": "scheduler submission takes the lifecycle lock",
    "submit_push": "scheduler submission takes the lifecycle lock",
    "submit_finish": "scheduler submission takes the lifecycle lock",
    "_enqueue": "scheduler submission takes the lifecycle lock",
    "read_text": "file I/O",
    "write_text": "file I/O",
    "read_bytes": "file I/O",
    "write_bytes": "file I/O",
    "latest_version": "registry directory scan",
    "artifact_path": "registry directory scan",
    "list_models": "registry directory scan",
    "versions": "registry directory scan",
}

_BLOCKING_MODULE_CALLS = {
    ("time", "sleep"): "sleeps the event loop",
    ("json", "load"): "file I/O",
    ("json", "dump"): "file I/O",
    ("np", "load"): "file I/O",
    ("np", "save"): "file I/O",
    ("np", "savez"): "file I/O",
    ("numpy", "load"): "file I/O",
    ("numpy", "save"): "file I/O",
}


@register
class AsyncBlockingRule(Rule):
    id = "async-blocking"
    summary = (
        "no blocking calls (sleep/result/locks/file I/O/scheduler submission) "
        "directly inside `async def` bodies — defer them via run_in_executor"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                for stmt in node.body:
                    yield from self._scan_node(module, stmt)

    def _scan_node(self, module: SourceModule, node: ast.AST) -> Iterator[Finding]:
        # Nested sync functions / lambdas run in an executor (or at least
        # not necessarily on the loop); nested async defs are visited by
        # check() on their own.  Skip their bodies entirely.
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        if isinstance(node, ast.With):
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if attr is not None and "lock" in attr:
                    yield self.finding(
                        module,
                        item.context_expr,
                        f"`with self.{attr}:` holds a cross-thread lock on "
                        "the event loop — move the critical section into a "
                        "function run via run_in_executor",
                    )
        if isinstance(node, ast.Call):
            yield from self._check_call(module, node)
        for child in ast.iter_child_nodes(node):
            yield from self._scan_node(module, child)

    def _check_call(self, module: SourceModule, call: ast.Call) -> Iterator[Finding]:
        func = call.func
        if isinstance(func, ast.Name) and func.id == "open":
            yield self.finding(
                module, call,
                "open() performs file I/O on the event loop — use "
                "run_in_executor",
            )
            return
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name):
                why = _BLOCKING_MODULE_CALLS.get((func.value.id, func.attr))
                if why is not None:
                    yield self.finding(
                        module, call,
                        f"{func.value.id}.{func.attr}() {why} — use "
                        "run_in_executor",
                    )
                    return
                if func.value.id == "queue":
                    yield self.finding(
                        module, call,
                        f"queue.{func.attr}() is a blocking queue primitive — "
                        "bridge through run_in_executor / asyncio.wrap_future",
                    )
                    return
            why = _BLOCKING_CALL_ATTRS.get(func.attr)
            if why is not None:
                yield self.finding(
                    module, call,
                    f".{func.attr}() {why}; awaiting it on the event loop "
                    "stalls every connection — use run_in_executor (futures: "
                    "asyncio.wrap_future)",
                )
