"""Static analysis and runtime concurrency instrumentation for repro.

Two halves:

* :mod:`repro.analysis.framework` + the ``rules_*`` modules — the
  stdlib-``ast`` lint pass behind the ``repro-lint`` CLI
  (:mod:`repro.analysis.cli`): guarded-by lock coverage, async-blocking
  detection, hot-path purity, error-taxonomy enforcement and hygiene
  sweeps, with ``# repro:`` pragmas for declarations and justified
  suppressions.
* :mod:`repro.analysis.lockorder` — the runtime lock-order tracker the
  serving layer's locks are created through (:func:`make_lock`); armed
  via ``REPRO_LOCK_TRACKER=1`` it turns an ABBA acquisition-order cycle
  observed during the test suites into a failure.

This package intentionally imports nothing from the serving or hmm layers
so that instrumentation (``lockorder``) stays import-cycle-free.
"""

from repro.analysis.framework import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    Finding,
    LintResult,
    Rule,
    all_rules,
    lint_paths,
    lint_sources,
    render_json,
    render_text,
)
from repro.analysis.lockorder import (
    LockOrderError,
    LockOrderTracker,
    TrackedLock,
    arm,
    disarm,
    get_tracker,
    is_armed,
    make_lock,
)

__all__ = [
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_USAGE",
    "Finding",
    "LintResult",
    "LockOrderError",
    "LockOrderTracker",
    "Rule",
    "TrackedLock",
    "all_rules",
    "arm",
    "disarm",
    "get_tracker",
    "is_armed",
    "lint_paths",
    "lint_sources",
    "make_lock",
    "render_json",
    "render_text",
]
