"""Error-taxonomy rules: typed raises in serving, no swallowed BaseException.

``typed-raise``
    Modules under ``repro/serving/`` may only raise members of the typed
    hierarchy rooted in :mod:`repro.exceptions` (detected through their
    ``from repro.exceptions import ...`` bindings, plus classes defined in
    the module whose bases resolve to one), or the control-flow builtins
    (``NotImplementedError``, ``SystemExit``, ``KeyboardInterrupt``,
    ``StopIteration``, ``StopAsyncIteration``).  Best-effort by design:
    re-raises (``raise``) and dynamically constructed exceptions
    (``raise some_variable``/``raise factory()``) pass — the rule exists
    to stop *new literal* ``raise RuntimeError(...)``-style taxonomy leaks.

``broad-except``
    A bare ``except:`` is always a finding; ``except BaseException`` is a
    finding unless the handler re-raises — swallowing ``BaseException``
    in a dispatcher loop turns ``KeyboardInterrupt``/``SystemExit`` into
    a silently wedged service (the PR-3 bug class).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Finding, Rule, SourceModule, register

__all__ = ["TypedRaiseRule", "BroadExceptRule"]

_CONTROL_FLOW_BUILTINS = {
    "NotImplementedError",
    "SystemExit",
    "KeyboardInterrupt",
    "StopIteration",
    "StopAsyncIteration",
}


def _serving_module(module: SourceModule) -> bool:
    parts = module.path.replace("\\", "/").split("/")
    return "serving" in parts and "tests" not in parts


@register
class TypedRaiseRule(Rule):
    id = "typed-raise"
    summary = (
        "serving modules may only raise the typed repro.exceptions hierarchy "
        "(plus control-flow builtins); no ad-hoc RuntimeError/ValueError"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if not _serving_module(module):
            return
        allowed = set(_CONTROL_FLOW_BUILTINS)
        # names imported from the taxonomy module
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "repro.exceptions":
                for alias in node.names:
                    allowed.add(alias.asname or alias.name)
        # local classes whose bases resolve (transitively) to allowed names
        local_bases: dict[str, list[str]] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                local_bases[node.name] = [
                    base.id for base in node.bases if isinstance(base, ast.Name)
                ]
        changed = True
        while changed:
            changed = False
            for name, bases in local_bases.items():
                if name not in allowed and any(base in allowed for base in bases):
                    allowed.add(name)
                    changed = True
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                # `raise SomeClass` without arguments — only flag when the
                # name is statically a class; plain variables (re-raising a
                # captured exception object) pass.
                if exc.id in local_bases or exc.id[:1].isupper():
                    name = exc.id
            if name is None or name in allowed:
                continue
            if name in local_bases or name.endswith(("Error", "Exception", "Warning")):
                yield self.finding(
                    module,
                    node,
                    f"serving code raises {name}, which is outside the typed "
                    "hierarchy — raise a repro.exceptions subclass (derive "
                    "from ServingError) so transports can map it",
                )


@register
class BroadExceptRule(Rule):
    id = "broad-except"
    summary = (
        "no bare `except:`; `except BaseException` only with an unconditional "
        "re-raise (never swallow KeyboardInterrupt/SystemExit)"
    )

    @staticmethod
    def _catches_base_exception(handler: ast.ExceptHandler) -> bool:
        def is_base(expr: ast.expr) -> bool:
            return isinstance(expr, ast.Name) and expr.id == "BaseException"

        if handler.type is None:
            return True
        if is_base(handler.type):
            return True
        if isinstance(handler.type, ast.Tuple):
            return any(is_base(el) for el in handler.type.elts)
        return False

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise) and node.exc is None:
                return True
        return False

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare `except:` catches SystemExit/KeyboardInterrupt — "
                    "catch Exception (or a typed subclass) instead",
                )
                continue
            if self._catches_base_exception(node) and not self._reraises(node):
                yield self.finding(
                    module,
                    node,
                    "`except BaseException` without re-raise swallows "
                    "control-flow exceptions and can wedge the dispatcher — "
                    "catch Exception, or re-raise unconditionally",
                )
