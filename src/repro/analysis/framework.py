"""Core of the ``repro-lint`` static-analysis framework.

The framework is deliberately small and stdlib-only: a source file is
parsed once into a :class:`SourceModule` (AST + a tokenize-derived comment
map + structured ``# repro:`` pragmas), every registered :class:`Rule`
walks it and yields :class:`Finding` objects, and the runner applies the
suppression pragmas before reporting.

Pragma grammar (one per comment, trailing or standalone)::

    # repro: ignore[rule-id, ...] -- <justification>
    # repro: hot-path
    # repro: guarded-by[<lock attribute>]
    # repro: confined[<thread that owns this method>]
    # repro: loop-ok[<why this Python loop is acceptable>]

``ignore`` suppresses findings reported *on the same line*; a suppression
without a ``-- justification`` (or one that suppresses nothing) is itself
a finding of the always-on ``suppression`` meta rule, which is how the
"zero unjustified suppressions" gate is enforced.  The other pragmas are
declarations consumed by individual rules (see the rule modules).
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from importlib import import_module
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_USAGE",
    "Finding",
    "LintResult",
    "Pragma",
    "Rule",
    "SourceModule",
    "all_rules",
    "lint_paths",
    "lint_sources",
    "register",
    "render_json",
    "render_text",
]

#: stable exit codes of the ``repro-lint`` CLI.
EXIT_CLEAN = 0  # no findings
EXIT_FINDINGS = 1  # at least one finding survived suppression
EXIT_USAGE = 2  # bad invocation or unanalyzable input (syntax error)

_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*(?P<kind>[a-z-]+)"
    r"(?:\[(?P<args>[^\]]*)\])?"
    r"(?:\s*--\s*(?P<reason>\S.*?))?\s*$"
)

_PRAGMA_KINDS = {"ignore", "hot-path", "guarded-by", "confined", "loop-ok"}


@dataclass(frozen=True)
class Pragma:
    """One parsed ``# repro: ...`` comment."""

    kind: str
    args: tuple[str, ...]
    reason: str | None
    line: int


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)


class SourceModule:
    """A parsed source file: AST, raw lines, comments and pragmas."""

    def __init__(self, path: str, text: str) -> None:
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)
        #: comment text (including ``#``) keyed by 1-based line number.
        self.comments: dict[int, str] = {}
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT:
                self.comments[token.start[0]] = token.string
        self.pragmas: dict[int, Pragma] = {}
        self.bad_pragmas: list[tuple[int, str]] = []
        for line, comment in self.comments.items():
            if "repro:" not in comment:
                continue
            match = _PRAGMA_RE.search(comment)
            if match is None:
                self.bad_pragmas.append((line, comment.strip()))
                continue
            kind = match.group("kind")
            if kind not in _PRAGMA_KINDS:
                self.bad_pragmas.append((line, comment.strip()))
                continue
            args = tuple(
                part.strip()
                for part in (match.group("args") or "").split(",")
                if part.strip()
            )
            self.pragmas[line] = Pragma(
                kind=kind, args=args, reason=match.group("reason"), line=line
            )

    # ------------------------------------------------------------------
    def pragma_in_range(self, kind: str, start: int, end: int) -> Pragma | None:
        """The first ``kind`` pragma on any line in ``[start, end]``."""
        for line in range(start, end + 1):
            pragma = self.pragmas.get(line)
            if pragma is not None and pragma.kind == kind:
                return pragma
        return None

    def header_pragma(self, node: ast.AST, kind: str) -> Pragma | None:
        """A ``kind`` pragma attached to a statement's header lines.

        The header spans from the statement's first line to the line before
        its body starts (or its own end for body-less statements), so
        black-wrapped ``def`` signatures still pick up a trailing pragma.
        """
        start = getattr(node, "lineno", None)
        if start is None:
            return None
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and hasattr(body[0], "lineno"):
            end = body[0].lineno - 1
        else:
            end = getattr(node, "end_lineno", start)
        return self.pragma_in_range(kind, start, max(start, end))

    def has_module_pragma(self, kind: str) -> bool:
        """True when a ``kind`` pragma marks the whole file.

        Module pragmas live in the file header: on a line above the first
        top-level statement after the module docstring.  Pragmas further
        down attach to their own statement, never to the module.
        """
        stmts = self.tree.body
        if (
            stmts
            and isinstance(stmts[0], ast.Expr)
            and isinstance(stmts[0].value, ast.Constant)
            and isinstance(stmts[0].value.value, str)
        ):
            stmts = stmts[1:]
        cutoff = stmts[0].lineno if stmts else len(self.lines) + 1
        return any(
            p.kind == kind and line < cutoff
            for line, p in self.pragmas.items()
        )


class Rule:
    """Base class for lint rules.  Subclasses register via :func:`register`."""

    #: stable kebab-case identifier used in reports and suppressions.
    id: str
    #: one-line description shown by ``repro-lint --list-rules``.
    summary: str

    def check(self, module: SourceModule) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: SourceModule, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


_RULES: dict[str, Rule] = {}

#: meta rule id for suppression hygiene (always active, never suppressible).
SUPPRESSION_RULE = "suppression"


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule instance to the global registry."""
    rule = rule_cls()
    if rule.id in _RULES:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _RULES[rule.id] = rule
    return rule_cls


def all_rules() -> dict[str, Rule]:
    """The registered rules (id -> instance), loading the built-ins."""
    # Imported here (not at module top) to avoid a registration cycle:
    # the rule modules import this framework.
    for name in ("concurrency", "errors", "hotpath", "hygiene"):
        import_module(f"repro.analysis.rules_{name}")
    return dict(_RULES)


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    n_files: int = 0
    rule_ids: list[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        if self.errors:
            return EXIT_USAGE
        return EXIT_FINDINGS if self.findings else EXIT_CLEAN


def _iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if "__pycache__" in candidate.parts:
                    continue
                yield candidate
        else:
            yield path


def _apply_suppressions(
    module: SourceModule, findings: list[Finding], check_unused: bool
) -> list[Finding]:
    """Drop suppressed findings; report suppression-hygiene violations."""
    kept: list[Finding] = []
    used: set[int] = set()
    for finding in findings:
        pragma = module.pragmas.get(finding.line)
        if (
            pragma is not None
            and pragma.kind == "ignore"
            and finding.rule in pragma.args
            and finding.rule != SUPPRESSION_RULE
        ):
            used.add(pragma.line)
            continue
        kept.append(finding)
    known = set(_RULES)
    for pragma in module.pragmas.values():
        if pragma.kind != "ignore":
            continue
        if not pragma.args:
            kept.append(
                Finding(
                    SUPPRESSION_RULE, module.path, pragma.line, 1,
                    "ignore pragma names no rule: use "
                    "`# repro: ignore[rule-id] -- reason`",
                )
            )
            continue
        unknown = [rule for rule in pragma.args if rule not in known]
        if unknown:
            kept.append(
                Finding(
                    SUPPRESSION_RULE, module.path, pragma.line, 1,
                    f"suppression names unknown rule(s): {', '.join(unknown)}",
                )
            )
        if not pragma.reason:
            kept.append(
                Finding(
                    SUPPRESSION_RULE, module.path, pragma.line, 1,
                    "suppression without justification: append "
                    "`-- <why this finding is acceptable>`",
                )
            )
        elif check_unused and pragma.line not in used and not unknown:
            kept.append(
                Finding(
                    SUPPRESSION_RULE, module.path, pragma.line, 1,
                    "unused suppression: no finding of "
                    f"[{', '.join(pragma.args)}] on this line — delete it",
                )
            )
    for line, comment in module.bad_pragmas:
        kept.append(
            Finding(
                SUPPRESSION_RULE, module.path, line, 1,
                f"malformed repro pragma: {comment!r}",
            )
        )
    return kept


def lint_sources(
    sources: Iterable[tuple[str, str]],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> LintResult:
    """Lint in-memory ``(path, text)`` pairs (the test-friendly entry)."""
    rules = all_rules()
    result = LintResult()
    selected = dict(rules)
    if select is not None:
        wanted = set(select)
        unknown = wanted - set(rules)
        if unknown:
            result.errors.append(
                f"unknown rule id(s) in --select: {', '.join(sorted(unknown))}"
            )
            return result
        selected = {rule_id: rules[rule_id] for rule_id in wanted}
    if ignore is not None:
        dropped = set(ignore)
        unknown = dropped - set(rules)
        if unknown:
            result.errors.append(
                f"unknown rule id(s) in --ignore: {', '.join(sorted(unknown))}"
            )
            return result
        selected = {
            rule_id: rule
            for rule_id, rule in selected.items()
            if rule_id not in dropped
        }
    # Unused-suppression detection is only sound when every rule ran.
    check_unused = len(selected) == len(rules)
    # The suppression meta rule is always active (and never suppressible).
    result.rule_ids = sorted(set(selected) | {SUPPRESSION_RULE})
    for path, text in sources:
        result.n_files += 1
        try:
            module = SourceModule(path, text)
        except SyntaxError as exc:
            result.errors.append(f"{path}:{exc.lineno}: syntax error: {exc.msg}")
            continue
        raw: list[Finding] = []
        for rule in selected.values():
            raw.extend(rule.check(module))
        result.findings.extend(_apply_suppressions(module, raw, check_unused))
    result.findings.sort(key=Finding.sort_key)
    return result


def lint_paths(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> LintResult:
    """Lint files and directory trees from disk."""
    sources: list[tuple[str, str]] = []
    missing: list[str] = []
    for path in _iter_python_files(paths):
        try:
            sources.append((str(path), path.read_text(encoding="utf-8")))
        except OSError as exc:
            missing.append(f"{path}: {exc}")
    result = lint_sources(sources, select=select, ignore=ignore)
    result.errors.extend(missing)
    return result


# ---------------------------------------------------------------------- #
# Reporters
# ---------------------------------------------------------------------- #
def render_text(result: LintResult) -> str:
    """Human-oriented report: one ``path:line:col: [rule] message`` per line."""
    lines = [
        f"{f.path}:{f.line}:{f.col}: [{f.rule}] {f.message}"
        for f in result.findings
    ]
    lines.extend(f"error: {message}" for message in result.errors)
    noun = "finding" if len(result.findings) == 1 else "findings"
    lines.append(
        f"{len(result.findings)} {noun} in {result.n_files} file(s), "
        f"{len(result.rule_ids)} rule(s) active"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-oriented report with a stable schema (``schema_version`` 1)."""
    payload = {
        "schema_version": 1,
        "rules": result.rule_ids,
        "n_files": result.n_files,
        "errors": list(result.errors),
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
            }
            for f in result.findings
        ],
        "exit_code": result.exit_code,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
