"""Supervised diversified HMM (paper Section 3.4.2 / 3.5.2).

Training data is fully labeled, so the baseline parameters
``lambda_0 = (pi_0, A_0, B_0)`` come from counting.  The dHMM then refines
the transition matrix by projected gradient ascent on

    sum_ij N_ij log A_ij  +  alpha log det(K~_A)  -  alpha_A ||A - A_0||^2

(Eq. 8/18), where ``N_ij`` are the observed transition counts.  Decoding of
unlabeled test sequences uses Viterbi with the refined ``A``.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Sequence

import numpy as np

from repro.core.config import DHMMConfig
from repro.core.transition_prior import DPPTransitionPrior
from repro.exceptions import NotFittedError, ValidationError
from repro.hmm.emissions.bernoulli import BernoulliEmission
from repro.hmm.emissions.base import EmissionModel
from repro.hmm.model import HMM
from repro.hmm.supervised import count_transitions, estimate_supervised_parameters
from repro.optim.projected_gradient import ProjectedGradientResult, maximize_rowwise_simplex
from repro.utils.maths import safe_log


class SupervisedDiversifiedHMM:
    """Count-trained HMM whose transition matrix is diversity-refined.

    Parameters
    ----------
    n_states:
        Size of the hidden state space (26 letters for OCR).
    n_features:
        Dimensionality of the binary observations (used when ``emissions``
        is not supplied and the default Bernoulli family is built).
    config:
        Hyper-parameters; ``alpha`` weights the DPP prior and
        ``alpha_anchor`` the proximal pull towards the count estimate
        ``A0``.  ``alpha = 0`` makes the model identical to the plain
        supervised HMM baseline.
    emissions:
        Optional pre-built emission model; defaults to
        :class:`~repro.hmm.emissions.bernoulli.BernoulliEmission`.
    transition_pseudocount, emission_pseudocount:
        Laplace smoothing of the counting estimates.
    """

    def __init__(
        self,
        n_states: int,
        n_features: int | None = None,
        config: DHMMConfig | None = None,
        emissions: EmissionModel | None = None,
        transition_pseudocount: float = 0.1,
        emission_pseudocount: float = 1.0,
    ) -> None:
        if n_states < 2:
            raise ValidationError(f"n_states must be at least 2, got {n_states}")
        if emissions is None and n_features is None:
            raise ValidationError("either emissions or n_features must be provided")
        self.n_states = n_states
        self.n_features = n_features
        self.config = config or DHMMConfig(alpha=10.0)
        self.emissions = emissions
        self.transition_pseudocount = transition_pseudocount
        self.emission_pseudocount = emission_pseudocount

        self.model_: HMM | None = None
        self.base_transmat_: np.ndarray | None = None
        self.refinement_result_: ProjectedGradientResult | None = None

    # ------------------------------------------------------------------ #
    def _build_emissions(
        self, sequences: Sequence[np.ndarray], labels: Sequence[np.ndarray]
    ) -> EmissionModel:
        if self.emissions is not None:
            emissions = self.emissions.copy()
        else:
            assert self.n_features is not None
            emissions = BernoulliEmission.random_init(self.n_states, self.n_features, seed=0)
        if isinstance(emissions, BernoulliEmission):
            emissions.fit_supervised(sequences, labels, pseudocount=self.emission_pseudocount)
        else:
            posteriors = []
            for lab in labels:
                lab_arr = np.asarray(lab, dtype=np.int64)
                one_hot = np.zeros((lab_arr.size, self.n_states))
                one_hot[np.arange(lab_arr.size), lab_arr] = 1.0
                posteriors.append(one_hot)
            emissions.m_step(list(sequences), posteriors)
        return emissions

    def refine_transitions(
        self, transition_counts: np.ndarray, base_transmat: np.ndarray
    ) -> ProjectedGradientResult:
        """Gradient-ascend the supervised objective of Eq. (8) from ``A0``."""
        cfg = self.config
        counts = np.asarray(transition_counts, dtype=np.float64)
        A0 = np.asarray(base_transmat, dtype=np.float64)
        prior = DPPTransitionPrior(alpha=cfg.alpha, rho=cfg.rho, jitter=cfg.kernel_jitter)
        floor = cfg.transition_floor

        def objective(A: np.ndarray) -> float:
            likelihood = float(np.sum(counts * safe_log(A)))
            proximal = cfg.alpha_anchor * float(np.sum((A - A0) ** 2))
            return likelihood + prior.log_prior(A) - proximal

        def gradient(A: np.ndarray) -> np.ndarray:
            safe_A = np.clip(A, floor, None)
            return (
                counts / safe_A
                + prior.gradient(safe_A)
                - 2.0 * cfg.alpha_anchor * (A - A0)
            )

        return maximize_rowwise_simplex(
            objective,
            gradient,
            A0,
            max_iter=cfg.max_inner_iter,
            tol=cfg.inner_tol,
            initial_step=cfg.initial_step,
            min_value=floor,
        )

    # ------------------------------------------------------------------ #
    def fit(
        self, sequences: Sequence[np.ndarray], labels: Sequence[np.ndarray]
    ) -> "SupervisedDiversifiedHMM":
        """Count-estimate all parameters, then diversity-refine the transitions."""
        if len(sequences) != len(labels):
            raise ValidationError("sequences and labels must have the same length")
        startprob, base_transmat = estimate_supervised_parameters(
            labels, self.n_states, pseudocount=self.transition_pseudocount
        )
        # Use the same (smoothed) counts that produced A0, so the likelihood
        # term of Eq. (8) is maximized exactly at A0 and the refinement is
        # driven purely by the diversity prior balanced against the anchor.
        counts = (
            count_transitions(labels, self.n_states).transition_counts
            + self.transition_pseudocount
        )
        emissions = self._build_emissions(sequences, labels)

        if self.config.alpha > 0:
            refinement = self.refine_transitions(counts, base_transmat)
            transmat = refinement.solution
        else:
            refinement = ProjectedGradientResult(
                solution=base_transmat, objective=float(np.sum(counts * safe_log(base_transmat)))
            )
            transmat = base_transmat

        self.base_transmat_ = base_transmat
        self.refinement_result_ = refinement
        self.model_ = HMM(startprob, transmat, emissions)
        return self

    def _check_fitted(self) -> HMM:
        if self.model_ is None:
            raise NotFittedError("SupervisedDiversifiedHMM must be fit before inference")
        return self.model_

    @property
    def transmat_(self) -> np.ndarray:
        """The refined transition matrix ``A``."""
        return self._check_fitted().transmat

    def predict(self, sequences: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Viterbi-decode labels for unlabeled test sequences (batched)."""
        model = self._check_fitted()
        return model.predict([np.asarray(seq) for seq in sequences])

    def score(self, sequences: Sequence[np.ndarray]) -> float:
        """Total marginal log-likelihood of test sequences."""
        return self._check_fitted().score(sequences)

    # ------------------------------------------------------------------ #
    def to_state_dict(self) -> dict:
        """Serializable snapshot: hyper-parameters, fitted model, ``A0``.

        The projected-gradient trace (``refinement_result_``) is transient
        and not persisted.
        """
        return {
            "n_states": self.n_states,
            "n_features": self.n_features,
            "config": asdict(self.config),
            "transition_pseudocount": self.transition_pseudocount,
            "emission_pseudocount": self.emission_pseudocount,
            "emissions_template": (
                self.emissions.to_state_dict() if self.emissions is not None else None
            ),
            "model": self.model_.to_state_dict() if self.model_ is not None else None,
            "base_transmat": (
                self.base_transmat_.copy() if self.base_transmat_ is not None else None
            ),
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "SupervisedDiversifiedHMM":
        """Rebuild a (possibly fitted) classifier from :meth:`to_state_dict`."""
        n_features = state["n_features"]
        template = state.get("emissions_template")
        classifier = cls(
            int(state["n_states"]),
            n_features=None if n_features is None else int(n_features),
            config=DHMMConfig(**state["config"]),
            emissions=(
                EmissionModel.from_state_dict(template) if template is not None else None
            ),
            transition_pseudocount=float(state["transition_pseudocount"]),
            emission_pseudocount=float(state["emission_pseudocount"]),
        )
        if state.get("model") is not None:
            classifier.model_ = HMM.from_state_dict(state["model"])
        if state.get("base_transmat") is not None:
            classifier.base_transmat_ = np.asarray(
                state["base_transmat"], dtype=np.float64
            )
        return classifier
