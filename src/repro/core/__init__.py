"""The paper's primary contribution: diversity-regularized HMMs."""

from repro.core.config import (
    DHMMConfig,
    InferenceConfig,
    get_inference_config,
    inference_backend,
    set_inference_config,
)
from repro.core.transition_prior import DPPTransitionPrior, DiversityTransitionUpdater
from repro.core.diversified_hmm import DiversifiedHMM
from repro.core.supervised import SupervisedDiversifiedHMM

__all__ = [
    "DHMMConfig",
    "InferenceConfig",
    "get_inference_config",
    "set_inference_config",
    "inference_backend",
    "DPPTransitionPrior",
    "DiversityTransitionUpdater",
    "DiversifiedHMM",
    "SupervisedDiversifiedHMM",
]
