"""The paper's primary contribution: diversity-regularized HMMs."""

from repro.core.config import (
    DHMMConfig,
    InferenceConfig,
    ServingConfig,
    get_inference_config,
    get_serving_config,
    inference_backend,
    set_inference_config,
    set_serving_config,
)
from repro.core.transition_prior import DPPTransitionPrior, DiversityTransitionUpdater
from repro.core.diversified_hmm import DiversifiedHMM
from repro.core.supervised import SupervisedDiversifiedHMM

__all__ = [
    "DHMMConfig",
    "InferenceConfig",
    "ServingConfig",
    "get_inference_config",
    "set_inference_config",
    "get_serving_config",
    "set_serving_config",
    "inference_backend",
    "DPPTransitionPrior",
    "DiversityTransitionUpdater",
    "DiversifiedHMM",
    "SupervisedDiversifiedHMM",
]
