"""The paper's primary contribution: diversity-regularized HMMs."""

from repro.core.config import DHMMConfig
from repro.core.transition_prior import DPPTransitionPrior, DiversityTransitionUpdater
from repro.core.diversified_hmm import DiversifiedHMM
from repro.core.supervised import SupervisedDiversifiedHMM

__all__ = [
    "DHMMConfig",
    "DPPTransitionPrior",
    "DiversityTransitionUpdater",
    "DiversifiedHMM",
    "SupervisedDiversifiedHMM",
]
