"""Unsupervised diversified HMM (the paper's main model, Section 3.4.1).

``DiversifiedHMM`` exposes a scikit-learn-flavoured estimator API
(``fit`` / ``predict`` / ``score``) over the HMM substrate: the E-step is
classical forward-backward, and the transition M-step is the projected
gradient ascent on the expected transition counts plus the weighted DPP
log-determinant prior.  Setting ``alpha = 0`` recovers the classical
Baum-Welch HMM exactly, which is how the paper's "HMM" baseline is run.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Sequence

import numpy as np

from repro.core.config import DHMMConfig
from repro.core.transition_prior import DiversityTransitionUpdater, DPPTransitionPrior
from repro.exceptions import NotFittedError, ValidationError
from repro.hmm.baum_welch import BaumWelchTrainer, FitResult
from repro.hmm.corpus import CompiledCorpus
from repro.hmm.emissions.base import EmissionModel
from repro.hmm.model import HMM
from repro.utils.rng import SeedLike, as_generator


class DiversifiedHMM:
    """Diversity-regularized HMM trained with MAP-EM.

    Parameters
    ----------
    emissions:
        Emission model (Gaussian, Categorical or Bernoulli) covering the
        ``K`` hidden states; its parameters are re-initialized at ``fit``
        time unless ``reinitialize_emissions`` is False.
    config:
        :class:`~repro.core.config.DHMMConfig` with ``alpha`` and the other
        hyper-parameters.  ``alpha = 0`` gives the plain HMM baseline.
    seed:
        Seed or generator for the random initialization of ``pi`` and ``A``
        (Dirichlet with concentration 3, as in the paper's experiments).
    reinitialize_emissions:
        Whether ``fit`` should randomly re-initialize the emission
        parameters before running EM.

    Examples
    --------
    >>> from repro.datasets import generate_toy_dataset
    >>> from repro.hmm import GaussianEmission
    >>> data = generate_toy_dataset(seed=0)
    >>> model = DiversifiedHMM(
    ...     GaussianEmission.random_init(5, data.observations, seed=1),
    ...     config=DHMMConfig(alpha=1.0, max_em_iter=5),
    ...     seed=1,
    ... )
    >>> result = model.fit(data.observations)
    >>> labels = model.predict(data.observations)
    """

    def __init__(
        self,
        emissions: EmissionModel,
        config: DHMMConfig | None = None,
        seed: SeedLike = None,
        reinitialize_emissions: bool = True,
    ) -> None:
        self.config = config or DHMMConfig()
        self.emissions = emissions
        self.seed = seed
        self.reinitialize_emissions = reinitialize_emissions
        self.model_: HMM | None = None
        self.fit_result_: FitResult | None = None

    # ------------------------------------------------------------------ #
    @property
    def n_states(self) -> int:
        """Number of hidden states ``K``."""
        return self.emissions.n_states

    @property
    def alpha(self) -> float:
        """Diversity prior weight."""
        return self.config.alpha

    def _check_fitted(self) -> HMM:
        if self.model_ is None:
            raise NotFittedError("DiversifiedHMM must be fit before inference")
        return self.model_

    @property
    def startprob_(self) -> np.ndarray:
        """Learned initial distribution ``pi``."""
        return self._check_fitted().startprob

    @property
    def transmat_(self) -> np.ndarray:
        """Learned transition matrix ``A``."""
        return self._check_fitted().transmat

    @property
    def emissions_(self) -> EmissionModel:
        """Learned emission model ``B``."""
        return self._check_fitted().emissions

    # ------------------------------------------------------------------ #
    def build_trainer(self) -> BaumWelchTrainer:
        """The Baum-Welch trainer with the diversity-regularized M-step."""
        prior = DPPTransitionPrior(
            alpha=self.config.alpha, rho=self.config.rho, jitter=self.config.kernel_jitter
        )
        updater = DiversityTransitionUpdater(prior, self.config)
        return BaumWelchTrainer(
            transition_updater=updater,
            max_iter=self.config.max_em_iter,
            tol=self.config.em_tol,
        )

    def fit(self, sequences: "Sequence[np.ndarray] | CompiledCorpus") -> FitResult:
        """Run MAP-EM on the observation sequences.

        ``sequences`` may be a :class:`~repro.hmm.corpus.CompiledCorpus`
        (e.g. shared across an ablation grid), in which case the one-time
        encoding is reused by every EM iteration instead of re-deriving it.

        Returns the :class:`~repro.hmm.baum_welch.FitResult` with the
        log-likelihood trace (likelihood only, excluding the prior term, so
        HMM and dHMM traces are directly comparable).
        """
        raw_sequences = (
            sequences.sequences if isinstance(sequences, CompiledCorpus) else sequences
        )
        if not raw_sequences:
            raise ValidationError("sequences must be non-empty")
        rng = as_generator(self.seed)
        emissions = self.emissions.copy()
        if self.reinitialize_emissions:
            emissions.initialize_random(raw_sequences, rng)
        model = HMM.random_init(emissions, seed=rng)
        trainer = self.build_trainer()
        result = trainer.fit(model, sequences)
        self.model_ = model
        self.fit_result_ = result
        return result

    # ------------------------------------------------------------------ #
    def predict(self, sequences: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Viterbi-decode the most likely hidden state path of every sequence."""
        model = self._check_fitted()
        return model.predict(sequences)

    def predict_corpus(self, corpus: CompiledCorpus) -> list[np.ndarray]:
        """Viterbi paths for a compiled corpus (shared across models/sweeps)."""
        return self._check_fitted().predict_corpus(corpus)

    def predict_single(self, sequence: np.ndarray) -> np.ndarray:
        """Viterbi path of one sequence."""
        return self._check_fitted().decode(sequence)

    def score(self, sequences: Sequence[np.ndarray]) -> float:
        """Total data log-likelihood under the learned parameters."""
        return self._check_fitted().score(sequences)

    # ------------------------------------------------------------------ #
    def to_state_dict(self) -> dict:
        """Serializable snapshot: training config, emissions, fitted params.

        The EM trace (``fit_result_``) is transient and not persisted; the
        learned ``(pi, A, B)`` round-trip exactly, so a loaded estimator
        predicts and scores identically to the fitted one.  Integer seeds
        round-trip too (so a refit is reproducible); generator objects
        cannot be serialized and degrade to ``None``.
        """
        return {
            "config": asdict(self.config),
            "reinitialize_emissions": self.reinitialize_emissions,
            "seed": int(self.seed) if isinstance(self.seed, (int, np.integer)) else None,
            "emissions": self.emissions.to_state_dict(),
            "model": self.model_.to_state_dict() if self.model_ is not None else None,
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "DiversifiedHMM":
        """Rebuild a (possibly fitted) estimator from :meth:`to_state_dict`."""
        from repro.hmm.emissions.base import EmissionModel

        estimator = cls(
            EmissionModel.from_state_dict(state["emissions"]),
            config=DHMMConfig(**state["config"]),
            seed=state.get("seed"),
            reinitialize_emissions=bool(state["reinitialize_emissions"]),
        )
        if state.get("model") is not None:
            estimator.model_ = HMM.from_state_dict(state["model"])
        return estimator

    def log_posterior_objective(self, sequences: Sequence[np.ndarray]) -> float:
        """Likelihood plus the weighted DPP prior (the MAP objective, Eq. 7)."""
        model = self._check_fitted()
        prior = DPPTransitionPrior(
            alpha=self.config.alpha, rho=self.config.rho, jitter=self.config.kernel_jitter
        )
        return model.score(sequences) + prior.log_prior(model.transmat)
