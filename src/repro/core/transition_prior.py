"""The DPP diversity prior over transition-matrix rows and its M-step updater.

This module contains the two objects that turn a plain HMM into a dHMM:

* :class:`DPPTransitionPrior` — evaluates ``alpha * log det(K~_A)`` and its
  gradient for a transition matrix ``A`` (paper Eq. 6 and Eq. 15).
* :class:`DiversityTransitionUpdater` — the M-step strategy plugged into
  :class:`~repro.hmm.baum_welch.BaumWelchTrainer`; it maximizes

      sum_ij xi_ij log A_ij + alpha log det(K~_A)

  by projected gradient ascent over row-stochastic matrices (Algorithm 1).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DHMMConfig
from repro.dpp.log_det import dpp_log_prior, dpp_log_prior_gradient
from repro.exceptions import ValidationError
from repro.hmm.transition_updaters import TransitionUpdater
from repro.optim.projected_gradient import maximize_rowwise_simplex
from repro.utils.maths import normalize_rows, safe_log


class DPPTransitionPrior:
    """Diversity-encouraging k-DPP prior over the rows of a transition matrix.

    Parameters
    ----------
    alpha:
        Prior weight; ``alpha = 0`` disables the prior entirely.
    rho:
        Probability product kernel exponent (paper: 0.5).
    jitter:
        Diagonal jitter added to the kernel before log-det / inversion.
    """

    def __init__(self, alpha: float = 1.0, rho: float = 0.5, jitter: float = 1e-10) -> None:
        if alpha < 0:
            raise ValidationError(f"alpha must be non-negative, got {alpha}")
        if rho <= 0:
            raise ValidationError(f"rho must be positive, got {rho}")
        if jitter < 0:
            raise ValidationError(f"jitter must be non-negative, got {jitter}")
        self.alpha = alpha
        self.rho = rho
        self.jitter = jitter

    def log_prior(self, transmat: np.ndarray) -> float:
        """``alpha * log det(K~_A)`` (0 when ``alpha`` is 0)."""
        if self.alpha == 0:
            return 0.0
        return self.alpha * dpp_log_prior(transmat, rho=self.rho, jitter=self.jitter)

    def gradient(self, transmat: np.ndarray) -> np.ndarray:
        """Gradient of the weighted log prior with respect to ``A``."""
        if self.alpha == 0:
            return np.zeros_like(np.asarray(transmat, dtype=np.float64))
        return self.alpha * dpp_log_prior_gradient(
            transmat, rho=self.rho, jitter=self.jitter
        )


class DiversityTransitionUpdater(TransitionUpdater):
    """Projected-gradient M-step for the transition matrix under the DPP prior.

    When ``alpha = 0`` the update falls back to the closed-form normalized
    counts, matching the classical Baum-Welch update exactly.
    """

    def __init__(self, prior: DPPTransitionPrior, config: DHMMConfig | None = None) -> None:
        self.prior = prior
        self.config = config or DHMMConfig(alpha=prior.alpha, rho=prior.rho)

    def objective(self, expected_counts: np.ndarray, transmat: np.ndarray) -> float:
        """Expected transition log-likelihood plus the weighted DPP log prior."""
        counts = np.asarray(expected_counts, dtype=np.float64)
        likelihood = float(np.sum(counts * safe_log(transmat)))
        return likelihood + self.prior.log_prior(transmat)

    def update(self, expected_counts: np.ndarray, current: np.ndarray) -> np.ndarray:
        counts = np.asarray(expected_counts, dtype=np.float64)
        if self.prior.alpha == 0:
            return normalize_rows(counts)

        cfg = self.config
        floor = cfg.transition_floor

        def objective(A: np.ndarray) -> float:
            return self.objective(counts, A)

        def gradient(A: np.ndarray) -> np.ndarray:
            safe_A = np.clip(A, floor, None)
            return counts / safe_A + self.prior.gradient(safe_A)

        # Warm-start from the closed-form maximum-likelihood update (the
        # alpha = 0 solution).  Gradient ascent then only moves away from it
        # when doing so increases the MAP objective, so the returned matrix
        # is never worse than the classical Baum-Welch update.
        warm_start = normalize_rows(counts, pseudocount=floor)
        result = maximize_rowwise_simplex(
            objective,
            gradient,
            warm_start,
            max_iter=cfg.max_inner_iter,
            tol=cfg.inner_tol,
            initial_step=cfg.initial_step,
            min_value=floor,
        )
        return result.solution
