"""Configuration objects for the diversified HMM models."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ValidationError


@dataclass(frozen=True)
class DHMMConfig:
    """Hyper-parameters of the dHMM (both unsupervised and supervised).

    Attributes
    ----------
    alpha:
        Weight of the diversity-encouraging DPP prior (``alpha = 0`` reduces
        the model to the classical HMM).  Paper values: 1 for the toy
        experiment, 100 for PoS tagging, 10 for OCR.
    rho:
        Probability product kernel exponent; the paper fixes ``rho = 0.5``.
    alpha_anchor:
        Supervised-only weight ``alpha_A`` of the proximal term
        ``-alpha_A * ||A - A0||^2`` keeping the refined transition matrix
        near the count estimate (paper: 1e5).
    max_em_iter, em_tol:
        EM stopping criteria (unsupervised setting).
    max_inner_iter, inner_tol:
        Stopping criteria of the projected-gradient transition M-step
        (Algorithm 1's iteration cap and ``delta`` threshold).
    initial_step:
        Initial step size of the adaptive gradient-ascent step controller.
    transition_floor:
        Smallest admissible transition probability, keeping the DPP kernel
        and the log-likelihood finite.
    kernel_jitter:
        Diagonal jitter added to the DPP kernel before inversion.
    """

    alpha: float = 1.0
    rho: float = 0.5
    alpha_anchor: float = 1e5
    max_em_iter: int = 50
    em_tol: float = 1e-4
    max_inner_iter: int = 50
    inner_tol: float = 1e-6
    initial_step: float = 0.05
    transition_floor: float = 1e-8
    kernel_jitter: float = 1e-10

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ValidationError(f"alpha must be non-negative, got {self.alpha}")
        if self.rho <= 0:
            raise ValidationError(f"rho must be positive, got {self.rho}")
        if self.alpha_anchor < 0:
            raise ValidationError(f"alpha_anchor must be non-negative, got {self.alpha_anchor}")
        if self.max_em_iter < 1 or self.max_inner_iter < 1:
            raise ValidationError("iteration caps must be at least 1")
        if self.em_tol < 0 or self.inner_tol < 0:
            raise ValidationError("tolerances must be non-negative")
        if self.initial_step <= 0:
            raise ValidationError("initial_step must be positive")
        if not 0 < self.transition_floor < 1:
            raise ValidationError("transition_floor must lie in (0, 1)")
        if self.kernel_jitter < 0:
            raise ValidationError("kernel_jitter must be non-negative")
