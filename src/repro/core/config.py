"""Configuration objects for the diversified HMM models and inference engine."""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterator, Mapping

from repro.exceptions import ValidationError


@dataclass(frozen=True)
class InferenceConfig:
    """Process-wide defaults for the HMM inference engine.

    Attributes
    ----------
    backend:
        Which numerical backend newly built engines use: ``"scaled"`` (the
        batched Rabiner-scaled probability-domain engine, the default) or
        ``"log"`` (the per-sequence log-domain reference recursions).
    bucket_size:
        Maximum number of sequences grouped into one padded length-bucket
        by the scaled backend.
    n_workers:
        Number of threads the scaled backend maps bucket kernels over
        within one batched/corpus call.  The default of 1 stays on the
        calling thread; values above 1 opt in to a thread pool (numpy
        releases the GIL inside the kernels' matmuls, so large multi-bucket
        corpora can overlap buckets).
    decode_window:
        Window length ``W`` of the chunked long-sequence decode mode: a
        sequence longer than ``long_threshold`` is split into windows of
        this many tokens (overlapping by ``decode_overlap``), decoded as
        one batched bucket, and stitched back together.  Together with
        ``decode_overlap`` this bounds the peak working memory of decoding
        independent of the sequence length.
    decode_overlap:
        Overlap ``V`` between adjacent decode windows.  Stitching picks an
        agreement point inside the overlap; once the overlap exceeds the
        model's mixing lag the stitched path matches full-sequence Viterbi
        exactly (the same fixed-lag stabilization property the streaming
        sessions rely on).  Must satisfy ``2 * decode_overlap <=
        decode_window`` so adjacent windows keep disjoint "own" regions.
    long_threshold:
        Sequence length above which inference automatically routes through
        the chunked long-sequence engine instead of a single padded
        bucket.  Must be at least ``decode_window``.
    """

    backend: str = "scaled"
    bucket_size: int = 64
    n_workers: int = 1
    decode_window: int = 4096
    decode_overlap: int = 256
    long_threshold: int = 32768

    def __post_init__(self) -> None:
        # Imported lazily: the backend registry lives in the hmm layer, and
        # importing it at module scope would couple core.config's import to
        # the whole hmm package.
        from repro.hmm.backends import available_backends

        if self.backend not in available_backends():
            raise ValidationError(
                f"backend must be one of {available_backends()}, got {self.backend!r}"
            )
        if self.bucket_size < 1:
            raise ValidationError(
                f"bucket_size must be at least 1, got {self.bucket_size}"
            )
        if self.n_workers < 1:
            raise ValidationError(
                f"n_workers must be at least 1, got {self.n_workers}"
            )
        if self.decode_overlap < 1:
            raise ValidationError(
                f"decode_overlap must be at least 1, got {self.decode_overlap}"
            )
        if self.decode_window < 2 * self.decode_overlap:
            raise ValidationError(
                f"decode_window must be at least 2 * decode_overlap "
                f"({2 * self.decode_overlap}), got {self.decode_window}"
            )
        if self.long_threshold < self.decode_window:
            raise ValidationError(
                f"long_threshold must be at least decode_window "
                f"({self.decode_window}), got {self.long_threshold}"
            )


# Created on first use so that importing this module does not pull in the
# hmm package (InferenceConfig validation consults its backend registry).
_inference_config: InferenceConfig | None = None


def get_inference_config() -> InferenceConfig:
    """The current process-wide inference configuration."""
    global _inference_config
    if _inference_config is None:
        _inference_config = InferenceConfig()
    return _inference_config


def set_inference_config(config: InferenceConfig) -> InferenceConfig:
    """Replace the process-wide inference configuration.

    Returns the previous configuration so callers can restore it.
    """
    global _inference_config
    if not isinstance(config, InferenceConfig):
        raise ValidationError(
            f"config must be an InferenceConfig, got {type(config).__name__}"
        )
    previous = get_inference_config()
    _inference_config = config
    return previous


@contextmanager
def inference_backend(
    backend: str, bucket_size: int | None = None
) -> Iterator[InferenceConfig]:
    """Temporarily switch the default inference backend.

    >>> from repro.core.config import inference_backend
    >>> with inference_backend("log"):
    ...     pass  # models built/used here run the log-domain reference
    """
    overrides: dict[str, object] = {"backend": backend}
    if bucket_size is not None:
        overrides["bucket_size"] = bucket_size
    previous = set_inference_config(replace(get_inference_config(), **overrides))
    try:
        yield get_inference_config()
    finally:
        set_inference_config(previous)


#: Scheduling policies the serving scheduler understands (the canonical
#: list lives here so config validation does not import the serving layer;
#: :mod:`repro.serving.scheduler` asserts its registry matches).
SCHEDULING_POLICIES = ("fifo", "weighted_fair", "edf")


@dataclass(frozen=True)
class ServingConfig:
    """Process-wide defaults for the serving subsystem (:mod:`repro.serving`).

    Attributes
    ----------
    max_batch_size:
        Largest number of queued requests the :class:`~repro.serving.TaggingService`
        coalesces into one engine call.  Aligning it with the engine's
        ``bucket_size`` keeps every micro-batch a single padded bucket.
    max_wait_ms:
        How long the service batcher waits for more requests after the
        first one arrives before dispatching a partial batch.  ``0`` means
        "drain whatever is queued right now" (lowest latency, smallest
        batches).
    queue_capacity:
        Largest number of requests the service queue holds before further
        submissions fast-fail with
        :class:`~repro.exceptions.QueueFullError` (backpressure).  ``None``
        disables the bound (the pre-backpressure behaviour).
    max_loaded_models:
        How many registry models the routed service keeps resident at
        once; the least recently used entry is evicted beyond this.
    streaming_lag:
        Default fixed lag (in tokens) of the sliding-window Viterbi used by
        :class:`~repro.serving.StreamingDecoder`; ``None`` defers all labels
        to the end of the stream (exact full-sequence Viterbi).
    scheduling_policy:
        How the scheduler orders pending requests into micro-batches:
        ``"fifo"`` (arrival order, the default), ``"weighted_fair"``
        (deficit round-robin across models, weighted by ``model_weights``)
        or ``"edf"`` (earliest deadline first; deadline-free requests sort
        last, ties break by arrival).
    model_weights:
        Per-model-name weights for the ``weighted_fair`` policy; missing
        names default to 1.0.  Ignored by the other policies.
    request_timeout_s:
        How long transport front ends (the HTTP server, client helpers)
        wait on a scheduler future before answering 503 with a
        ``Retry-After`` hint; ``None`` waits forever.
    max_dispatcher_restarts:
        How many times the scheduler's supervisor restarts a dispatcher
        thread that died on an unexpected exception before declaring the
        service ``failed`` (counted over the service lifetime; control-flow
        exceptions such as ``KeyboardInterrupt`` are never restarted).
    restart_backoff_ms / restart_backoff_max_ms:
        Initial and maximum delay of the capped exponential backoff between
        supervised dispatcher restarts.
    breaker_threshold:
        Consecutive model load/execute failures that open a per-model
        circuit breaker in the router (requests then fast-fail with
        :class:`~repro.exceptions.ModelUnavailableError` instead of re-paying
        the doomed load).
    breaker_cooldown_s:
        How long an open breaker fast-fails before letting one half-open
        probe batch through; a successful probe closes it again.
    drain_timeout_s:
        Graceful-drain budget of ``close(drain=...)`` shutdowns: already
        accepted work is still served for this long, the remainder is shed
        with :class:`~repro.exceptions.ServiceShuttingDownError`.  ``None``
        (the default) flushes everything, however long it takes.
    mmap_artifacts:
        When true, registry loads map schema-v3 artifact arrays read-only
        (``numpy.load(..., mmap_mode="r")``) instead of copying them onto
        the private heap, so N worker processes serving the same model
        share one set of page-cache pages.  Artifacts written before
        schema v3 fall back to a regular private-copy load.
    """

    max_batch_size: int = 64
    max_wait_ms: float = 2.0
    queue_capacity: int | None = 1024
    max_loaded_models: int = 4
    streaming_lag: int | None = 32
    scheduling_policy: str = "fifo"
    model_weights: Mapping[str, float] | None = None
    request_timeout_s: float | None = 30.0
    max_dispatcher_restarts: int = 3
    restart_backoff_ms: float = 20.0
    restart_backoff_max_ms: float = 2000.0
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 5.0
    drain_timeout_s: float | None = None
    mmap_artifacts: bool = False

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValidationError(
                f"max_batch_size must be at least 1, got {self.max_batch_size}"
            )
        if self.max_wait_ms < 0:
            raise ValidationError(
                f"max_wait_ms must be non-negative, got {self.max_wait_ms}"
            )
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValidationError(
                f"queue_capacity must be at least 1 or None, got {self.queue_capacity}"
            )
        if self.max_loaded_models < 1:
            raise ValidationError(
                f"max_loaded_models must be at least 1, got {self.max_loaded_models}"
            )
        if self.streaming_lag is not None and self.streaming_lag < 1:
            raise ValidationError(
                f"streaming_lag must be at least 1 or None, got {self.streaming_lag}"
            )
        if self.scheduling_policy not in SCHEDULING_POLICIES:
            raise ValidationError(
                f"scheduling_policy must be one of {SCHEDULING_POLICIES}, "
                f"got {self.scheduling_policy!r}"
            )
        if self.model_weights is not None:
            for name, weight in self.model_weights.items():
                if not isinstance(name, str):
                    raise ValidationError(
                        f"model_weights keys must be model names, got {name!r}"
                    )
                if not weight > 0:
                    raise ValidationError(
                        f"model weight for {name!r} must be positive, got {weight}"
                    )
        if self.request_timeout_s is not None and self.request_timeout_s <= 0:
            raise ValidationError(
                f"request_timeout_s must be positive or None, got {self.request_timeout_s}"
            )
        if self.max_dispatcher_restarts < 0:
            raise ValidationError(
                "max_dispatcher_restarts must be non-negative, got "
                f"{self.max_dispatcher_restarts}"
            )
        if self.restart_backoff_ms < 0 or self.restart_backoff_max_ms < 0:
            raise ValidationError("restart backoff delays must be non-negative")
        if self.breaker_threshold < 1:
            raise ValidationError(
                f"breaker_threshold must be at least 1, got {self.breaker_threshold}"
            )
        if self.breaker_cooldown_s < 0:
            raise ValidationError(
                f"breaker_cooldown_s must be non-negative, got {self.breaker_cooldown_s}"
            )
        if self.drain_timeout_s is not None and self.drain_timeout_s < 0:
            raise ValidationError(
                f"drain_timeout_s must be non-negative or None, got {self.drain_timeout_s}"
            )
        if not isinstance(self.mmap_artifacts, bool):
            raise ValidationError(
                f"mmap_artifacts must be a bool, got {self.mmap_artifacts!r}"
            )


_serving_config = ServingConfig()


def get_serving_config() -> ServingConfig:
    """The current process-wide serving configuration."""
    return _serving_config


def set_serving_config(config: ServingConfig) -> ServingConfig:
    """Replace the process-wide serving configuration; returns the previous one."""
    global _serving_config
    if not isinstance(config, ServingConfig):
        raise ValidationError(
            f"config must be a ServingConfig, got {type(config).__name__}"
        )
    previous = _serving_config
    _serving_config = config
    return previous


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side retry budget: exponential backoff, jitter, deadlines.

    Used by the serving client helpers (``repro-serve route`` and the HTTP
    :class:`~repro.serving.client.ServingClient`) to retry *transient*
    serving failures — queue-full backpressure
    (:class:`~repro.exceptions.QueueFullError`) and open circuit breakers
    (:class:`~repro.exceptions.ModelUnavailableError` / a 503 with
    ``Retry-After``).  Permanent failures are **never** retried:
    :meth:`call` re-raises :class:`~repro.exceptions.ValidationError` and
    :class:`~repro.exceptions.DeadlineExceededError` immediately even if a
    caller lists them as retryable — a malformed request does not become
    well-formed by waiting, and a missed deadline is already final.

    Attributes
    ----------
    max_attempts:
        Total attempts including the first (1 = no retries).
    initial_backoff_ms / backoff_multiplier / max_backoff_ms:
        Exponential backoff schedule: attempt ``k`` (0-based retry index)
        waits ``initial * multiplier**k`` ms, capped at ``max_backoff_ms``.
    jitter:
        Fraction of each backoff randomized uniformly in ``±jitter`` (from
        the seeded RNG passed to :meth:`call`, so tests replay exactly).
    deadline_s:
        Overall wall-clock budget across all attempts; ``None`` = attempts
        bound only.  No retry is started past the deadline.
    """

    max_attempts: int = 4
    initial_backoff_ms: float = 25.0
    backoff_multiplier: float = 2.0
    max_backoff_ms: float = 2000.0
    jitter: float = 0.1
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be at least 1, got {self.max_attempts}"
            )
        if self.initial_backoff_ms < 0 or self.max_backoff_ms < 0:
            raise ValidationError("backoff delays must be non-negative")
        if self.backoff_multiplier < 1:
            raise ValidationError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if not 0 <= self.jitter <= 1:
            raise ValidationError(f"jitter must lie in [0, 1], got {self.jitter}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValidationError(
                f"deadline_s must be positive or None, got {self.deadline_s}"
            )

    def backoff_s(
        self, retry_index: int, rng: random.Random | None = None
    ) -> float:
        """Backoff before the ``retry_index``-th retry (0-based), in seconds."""
        backoff_ms = min(
            self.initial_backoff_ms * self.backoff_multiplier**retry_index,
            self.max_backoff_ms,
        )
        if rng is not None and self.jitter > 0:
            backoff_ms *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return backoff_ms / 1000.0

    def call(
        self,
        fn: Callable[[], Any],
        *,
        retryable: tuple[type[BaseException], ...] | None = None,
        sleep: Callable[[float], object] | None = None,
        rng: random.Random | None = None,
        min_backoff_s: Callable[[BaseException], float | None] | None = None,
    ) -> Any:
        """Run ``fn()`` under this retry budget; returns its result.

        Parameters
        ----------
        retryable:
            Exception types worth retrying; defaults to
            (:class:`~repro.exceptions.QueueFullError`,
            :class:`~repro.exceptions.ModelUnavailableError`).
        sleep / rng:
            Injectable for tests (``sleep`` defaults to :func:`time.sleep`;
            ``rng`` is an optional seeded :class:`random.Random` for
            jitter — no rng means no jitter).
        min_backoff_s:
            Callback mapping the caught exception to a server-suggested
            minimum wait (e.g. a ``Retry-After`` header); the actual wait
            is the max of it and the schedule's backoff.
        """
        import time as _time

        from repro.exceptions import (
            DeadlineExceededError as _Deadline,
            ModelUnavailableError as _Unavailable,
            QueueFullError as _QueueFull,
            ValidationError as _Invalid,
        )

        if retryable is None:
            retryable = (_QueueFull, _Unavailable)
        if sleep is None:
            sleep = _time.sleep
        deadline = (
            None if self.deadline_s is None else _time.perf_counter() + self.deadline_s
        )
        for attempt in range(self.max_attempts):
            try:
                return fn()
            except (_Invalid, _Deadline):
                raise  # permanent: retrying cannot help
            except retryable as exc:
                if attempt + 1 >= self.max_attempts:
                    raise
                backoff = self.backoff_s(attempt, rng=rng)
                if min_backoff_s is not None:
                    suggested = min_backoff_s(exc)
                    if suggested is not None:
                        backoff = max(backoff, float(suggested))
                if deadline is not None and _time.perf_counter() + backoff > deadline:
                    raise
                sleep(backoff)
        raise AssertionError("unreachable")  # pragma: no cover


@dataclass(frozen=True)
class DHMMConfig:
    """Hyper-parameters of the dHMM (both unsupervised and supervised).

    Attributes
    ----------
    alpha:
        Weight of the diversity-encouraging DPP prior (``alpha = 0`` reduces
        the model to the classical HMM).  Paper values: 1 for the toy
        experiment, 100 for PoS tagging, 10 for OCR.
    rho:
        Probability product kernel exponent; the paper fixes ``rho = 0.5``.
    alpha_anchor:
        Supervised-only weight ``alpha_A`` of the proximal term
        ``-alpha_A * ||A - A0||^2`` keeping the refined transition matrix
        near the count estimate (paper: 1e5).
    max_em_iter, em_tol:
        EM stopping criteria (unsupervised setting).
    max_inner_iter, inner_tol:
        Stopping criteria of the projected-gradient transition M-step
        (Algorithm 1's iteration cap and ``delta`` threshold).
    initial_step:
        Initial step size of the adaptive gradient-ascent step controller.
    transition_floor:
        Smallest admissible transition probability, keeping the DPP kernel
        and the log-likelihood finite.
    kernel_jitter:
        Diagonal jitter added to the DPP kernel before inversion.
    """

    alpha: float = 1.0
    rho: float = 0.5
    alpha_anchor: float = 1e5
    max_em_iter: int = 50
    em_tol: float = 1e-4
    max_inner_iter: int = 50
    inner_tol: float = 1e-6
    initial_step: float = 0.05
    transition_floor: float = 1e-8
    kernel_jitter: float = 1e-10

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ValidationError(f"alpha must be non-negative, got {self.alpha}")
        if self.rho <= 0:
            raise ValidationError(f"rho must be positive, got {self.rho}")
        if self.alpha_anchor < 0:
            raise ValidationError(f"alpha_anchor must be non-negative, got {self.alpha_anchor}")
        if self.max_em_iter < 1 or self.max_inner_iter < 1:
            raise ValidationError("iteration caps must be at least 1")
        if self.em_tol < 0 or self.inner_tol < 0:
            raise ValidationError("tolerances must be non-negative")
        if self.initial_step <= 0:
            raise ValidationError("initial_step must be positive")
        if not 0 < self.transition_floor < 1:
            raise ValidationError("transition_floor must lie in (0, 1)")
        if self.kernel_jitter < 0:
            raise ValidationError("kernel_jitter must be non-negative")
