"""Unsupervised part-of-speech tagging with the diversified HMM (Fig. 7).

Builds a WSJ-like synthetic tagged corpus (15 merged tag groups, Zipfian
vocabulary), trains unsupervised taggers for a range of diversity-prior
weights alpha, and reports the 1-to-1 accuracy curve together with the
transition-diversity profile of the NOUN tag (Fig. 8) and the per-tag token
histograms (Fig. 9).

Run with:  python examples/pos_tagging.py [--full]

The default settings finish in a couple of minutes; ``--full`` uses the
paper-scale corpus (3828 sentences, 10K vocabulary) and takes much longer.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.datasets import generate_wsj_like_corpus
from repro.experiments.pos import (
    corpus_statistics,
    run_pos_alpha_sweep,
    tag_frequency_histograms,
    transition_diversity_profile,
)
from repro.experiments.reporting import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="use the paper-scale corpus")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    if args.full:
        corpus = generate_wsj_like_corpus(seed=args.seed)
        max_em_iter = 30
    else:
        corpus = generate_wsj_like_corpus(
            n_sentences=500, vocabulary_size=1000, mean_length=12, max_length=60, seed=args.seed
        )
        max_em_iter = 12

    print(f"corpus: {corpus.n_sentences} sentences, {corpus.n_tokens} tokens, "
          f"{corpus.vocabulary_size} word types, {corpus.n_tags} tag groups")
    print()
    print("Table 2 analogue - tag group statistics:")
    print(format_table(["tag", "tokens", "fraction"], corpus_statistics(corpus)))
    print()

    # Fig. 7: accuracy as a function of the diversity-prior weight.
    sweep = run_pos_alpha_sweep(
        corpus=corpus,
        alphas=(0.0, 0.1, 1.0, 10.0, 100.0),
        max_em_iter=max_em_iter,
        seed=args.seed,
    )
    print("Fig. 7 analogue - 1-to-1 accuracy vs alpha:")
    print(format_table(["alpha", "accuracy"], list(zip(sweep.alphas, sweep.accuracies))))
    print(f"plain HMM baseline: {sweep.baseline_accuracy:.4f}   "
          f"best dHMM: {sweep.best_accuracy:.4f} at alpha={sweep.best_alpha}")
    print()

    # Fig. 8: how different is the NOUN tag's transition row from the others?
    hmm_model = sweep.models[0]
    dhmm_model = sweep.models[int(np.argmax(sweep.alphas))]
    hmm_profile = transition_diversity_profile(hmm_model, reference_tag=0)
    dhmm_profile = transition_diversity_profile(dhmm_model, reference_tag=0)
    other_tags = [name for i, name in enumerate(corpus.tag_names) if i != 0]
    print("Fig. 8 analogue - transition diversity of NOUN vs the other tags:")
    print(format_table(["tag", "HMM", "dHMM"], list(zip(other_tags, hmm_profile, dhmm_profile))))
    print()

    # Fig. 9: per-tag token histograms after 1-to-1 alignment.
    histograms = tag_frequency_histograms(corpus, hmm_model, dhmm_model)
    rows = [
        (corpus.tag_names[i],
         int(histograms["ground_truth"][i]),
         int(histograms["hmm"][i]),
         int(histograms["dhmm"][i]))
        for i in range(corpus.n_tags)
    ]
    print("Fig. 9 analogue - per-tag token histograms:")
    print(format_table(["tag", "ground truth", "HMM", "dHMM"], rows))


if __name__ == "__main__":
    main()
