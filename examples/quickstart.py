"""Quickstart: train a diversified HMM on the paper's toy data.

Generates the simulated dataset of Section 4.1 (a 5-state Gaussian-emission
HMM), trains both the classical HMM (alpha = 0) and the diversified HMM
(alpha = 1), and compares labeling accuracy, state usage and transition-row
diversity.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import DHMMConfig, DiversifiedHMM
from repro.datasets import generate_toy_dataset
from repro.experiments.reporting import format_table
from repro.hmm import GaussianEmission
from repro.metrics import (
    average_pairwise_bhattacharyya,
    one_to_one_accuracy,
    state_histogram,
)


def main() -> None:
    # 1. Simulate the paper's toy dataset: 300 sequences of length 6 from a
    #    5-state HMM with unit-spaced Gaussian emissions.
    data = generate_toy_dataset(n_sequences=300, sequence_length=6, sigma=1.0, seed=0)
    print(f"generated {data.n_sequences} sequences from a {data.n_states}-state HMM")

    # 2. Train the classical HMM and the diversified HMM from the same
    #    random initialization.
    results = {}
    for name, alpha in (("HMM", 0.0), ("dHMM", 1.0)):
        emissions = GaussianEmission.random_init(5, data.observations, seed=1)
        model = DiversifiedHMM(
            emissions, DHMMConfig(alpha=alpha, max_em_iter=30), seed=1
        )
        fit = model.fit(data.observations)

        # 3. Decode every sequence with Viterbi and score against the truth.
        predictions = model.predict(data.observations)
        results[name] = {
            "log-likelihood": fit.log_likelihood,
            "iterations": fit.n_iter,
            "1-to-1 accuracy": one_to_one_accuracy(data.states, predictions, n_states=5),
            "row diversity": average_pairwise_bhattacharyya(model.transmat_),
            "state histogram": state_histogram(predictions, 5).astype(int).tolist(),
        }

    # 4. Report.
    print()
    print(format_table(
        ["model", "log-likelihood", "1-to-1 accuracy", "row diversity", "EM iters"],
        [
            (name, r["log-likelihood"], r["1-to-1 accuracy"], r["row diversity"], r["iterations"])
            for name, r in results.items()
        ],
    ))
    print()
    print("true state histogram :", state_histogram(data.states, 5).astype(int).tolist())
    for name, r in results.items():
        print(f"{name:>4} state histogram :", r["state histogram"])
    print()
    print(
        "ground-truth transition diversity:",
        f"{average_pairwise_bhattacharyya(data.model.transmat):.3f}",
    )


if __name__ == "__main__":
    main()
