"""Supervised OCR sequence labeling with the diversified HMM (Fig. 10-12).

Builds a synthetic handwriting dataset (16x8 binary glyphs of the 26
lowercase letters, words drawn from an English-like bigram chain), then:

* sweeps the diversity-prior weight alpha under cross-validation (Fig. 10);
* compares Naive Bayes, plain HMM, Optimized HMM and dHMM (Fig. 11);
* reports the transition-diversity profiles of the letters 'x' and 'y'
  (Fig. 12).

Run with:  python examples/ocr_labeling.py [--full]
"""

from __future__ import annotations

import argparse

from repro.datasets import generate_ocr_dataset
from repro.datasets.ocr import LETTERS
from repro.experiments.ocr import (
    letter_diversity_profiles,
    run_ocr_alpha_sweep,
    run_ocr_classifier_comparison,
)
from repro.experiments.reporting import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="use the paper-scale dataset")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    n_words = 6877 if args.full else 1200
    n_folds = 10 if args.full else 5
    dataset = generate_ocr_dataset(n_words=n_words, pixel_noise=0.10, seed=args.seed)
    print(f"dataset: {dataset.n_words} words, {dataset.n_letters_total} letter images")
    print("example words:", ", ".join(dataset.words[:8]))
    print()

    # Fig. 10: accuracy as a function of alpha with the anchor fixed at 1e5.
    sweep = run_ocr_alpha_sweep(
        dataset=dataset,
        alphas=(0.0, 0.1, 1.0, 10.0, 100.0),
        alpha_anchor=1e5,
        n_folds=n_folds,
        seed=args.seed,
    )
    print("Fig. 10 analogue - OCR accuracy vs alpha (alpha_A = 1e5):")
    print(format_table(["alpha", "accuracy"], list(zip(sweep.alphas, sweep.accuracies))))
    print(f"plain HMM baseline: {sweep.baseline_accuracy:.4f}   "
          f"best dHMM: {sweep.best_accuracy:.4f} at alpha={sweep.best_alpha}")
    print()

    # Fig. 11: classifier comparison under cross-validation.
    comparison = run_ocr_classifier_comparison(
        dataset=dataset, alpha=10.0, alpha_anchor=1e5, n_folds=n_folds, seed=args.seed
    )
    print("Fig. 11 analogue - test accuracy by classifier:")
    print(format_table(["classifier", "mean accuracy", "std"], comparison.as_rows()))
    print()

    # Fig. 12: transition diversity of 'x' and 'y' against the other letters.
    profiles = letter_diversity_profiles(
        dataset=dataset, letters=("x", "y"), alpha=10.0, alpha_anchor=1e5, seed=args.seed
    )
    for letter in ("x", "y"):
        others = [c for c in LETTERS if c != letter]
        rows = list(zip(others, profiles[letter]["hmm"], profiles[letter]["dhmm"]))
        print(f"Fig. 12 analogue - transition diversity of '{letter}' vs the other letters:")
        print(format_table(["letter", "HMM", "dHMM"], rows))
        print()


if __name__ == "__main__":
    main()
