"""Serving subsystem tour: persist, register, stream, and micro-batch serve.

Trains a small supervised PoS tagger, stores it in an on-disk registry,
then serves it two ways:

* **online** — a :class:`~repro.serving.StreamingDecoder` tags tokens as
  they "arrive", printing the filtering posterior's top state per token and
  the fixed-lag finalized labels;
* **offline/concurrent** — a :class:`~repro.serving.TaggingService`
  micro-batches a burst of requests through the batched engine and reports
  throughput and batch-occupancy statistics;
* **routed** — a :class:`~repro.serving.Router` serves two registry
  models (warmed up ahead of traffic, with per-request deadlines) behind
  one bounded queue under a weighted-fair scheduling policy;
* **high-fanout online** — a :class:`~repro.serving.StreamPool` steps many
  concurrent streams per tick through one batched session, and a
  :class:`~repro.serving.StreamingService` does the same for pushes
  arriving from independent client threads;
* **over HTTP** — an :class:`~repro.serving.HTTPServingServer` exposes the
  whole stack (tag/score/stream/stats/health) to ``urllib``;
* **housekeeping** — registry retention (:meth:`ModelRegistry.gc`) sweeps
  old versions while "latest" and router-resident versions survive.

Run with ``PYTHONPATH=src python examples/serving_demo.py``.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.config import DHMMConfig, ServingConfig
from repro.core.supervised import SupervisedDiversifiedHMM
from repro.datasets.pos import generate_wsj_like_corpus
from repro.hmm.emissions.categorical import CategoricalEmission
from repro.serving import (
    HTTPServingServer,
    ModelRegistry,
    Router,
    StreamingDecoder,
    StreamingService,
    StreamPool,
    TaggingService,
    resolve_hmm,
)


def main() -> None:
    print("=== 1. Train a supervised PoS dHMM on the synthetic WSJ-like corpus")
    corpus = generate_wsj_like_corpus(
        n_sentences=300, vocabulary_size=500, mean_length=10, max_length=40, seed=0
    )
    model = SupervisedDiversifiedHMM(
        n_states=corpus.n_tags,
        config=DHMMConfig(alpha=100.0, max_inner_iter=25),
        emissions=CategoricalEmission.random_init(
            corpus.n_tags, corpus.vocabulary_size, seed=0
        ),
    )
    model.fit(corpus.words, corpus.tags)
    print(f"    trained on {corpus.n_sentences} sentences / {corpus.n_tokens} tokens")

    with tempfile.TemporaryDirectory() as tmp:
        print("\n=== 2. Save it to a versioned registry and load it back")
        registry = ModelRegistry(Path(tmp) / "registry")
        version = registry.save(
            "pos-tagger", model, metadata={"dataset": "wsj-like", "alpha": 100.0}
        )
        print(f"    saved as pos-tagger v{version}: {registry.describe('pos-tagger')}")
        served_model = registry.load("pos-tagger")

        print("\n=== 3. Stream one sentence token-by-token (fixed lag 4)")
        sentence, gold = corpus.words[0], corpus.tags[0]
        decoder = StreamingDecoder(served_model, lag=4)
        for t, token in enumerate(sentence):
            step = decoder.push(token)
            top = int(np.argmax(step.filtering))
            finalized = ", ".join(
                f"token {pos} -> {corpus.tag_names[state]}" for pos, state in step.finalized
            )
            print(
                f"    t={t:2d} token={token:4d}  filter->{corpus.tag_names[top]:<12}"
                f"  {('finalized: ' + finalized) if finalized else ''}"
            )
        result = decoder.finish()
        accuracy = float(np.mean(result.path == gold))
        print(f"    full path accuracy vs gold tags: {accuracy:.2f}")

        print("\n=== 4. Serve a burst of concurrent requests through the micro-batcher")
        config = ServingConfig(max_batch_size=256, max_wait_ms=2.0)
        start = time.perf_counter()
        with TaggingService(served_model, config=config) as service:
            paths = service.tag_many(corpus.words)
            stats = service.stats.snapshot()
        elapsed = time.perf_counter() - start
        correct = sum(
            int(np.sum(path == gold)) for path, gold in zip(paths, corpus.tags)
        )
        print(f"    tagged {stats['n_requests']} requests / {stats['n_tokens']} tokens "
              f"in {elapsed * 1e3:.1f} ms")
        print(f"    mean batch occupancy {stats['mean_batch_size']:.1f} "
              f"(max {stats['max_batch_size']}), "
              f"{stats['n_tokens'] / elapsed:,.0f} tokens/s")
        print(f"    tagging accuracy: {correct / stats['n_tokens']:.2f}")

        print("\n=== 5. Compare with sequential per-request decoding")
        hmm = resolve_hmm(served_model)
        start = time.perf_counter()
        for sentence in corpus.words:
            hmm.decode(sentence)
        sequential = time.perf_counter() - start
        print(f"    sequential: {sequential * 1e3:.1f} ms "
              f"-> micro-batching speedup {sequential / elapsed:.1f}x")

        print("\n=== 6. Route traffic for two models through one queue")
        baseline = SupervisedDiversifiedHMM(
            n_states=corpus.n_tags,
            config=DHMMConfig(alpha=0.0),
            emissions=CategoricalEmission.random_init(
                corpus.n_tags, corpus.vocabulary_size, seed=1
            ),
        )
        baseline.fit(corpus.words, corpus.tags)
        registry.save("pos-baseline", baseline, metadata={"alpha": 0.0})
        routed_config = ServingConfig(
            max_batch_size=256, max_wait_ms=2.0, queue_capacity=4096,
            max_loaded_models=2, scheduling_policy="weighted_fair",
            model_weights={"pos-tagger": 2.0, "pos-baseline": 1.0},
        )
        with Router(registry, config=routed_config) as router:
            warmed = router.warm_up(["pos-tagger", "pos-baseline"])
            print(f"    warmed up before traffic: {warmed}")
            futures = [
                router.submit_tag(
                    "pos-tagger" if i % 2 == 0 else "pos-baseline",
                    sentence,
                    deadline_ms=5000.0,
                )
                for i, sentence in enumerate(corpus.words[:200])
            ]
            for future in futures:
                future.result()
            stats = router.stats.snapshot()
        print(f"    routed {stats['n_requests']} requests: {stats['per_model']}")
        print(f"    resident models: {stats['n_model_loads']} loads, "
              f"{stats['n_expired']} expired, {stats['n_rejected']} shed")

        print("\n=== 7. Step 16 concurrent online streams as batched ticks")
        pool = StreamPool(served_model, lag=4)
        streams = [pool.open() for _ in range(16)]
        sentences = [corpus.words[i] for i in range(16)]
        length = min(len(s) for s in sentences)
        start = time.perf_counter()
        for t in range(length):
            pool.push_tick([(s, sent[t]) for s, sent in zip(streams, sentences)])
        results = [stream.finish() for stream in streams]
        pooled = time.perf_counter() - start
        match = np.mean([
            np.mean(r.path == np.asarray(g[: len(r.path)]))
            for r, g in zip(results, [corpus.tags[i] for i in range(16)])
        ])
        print(f"    {16 * length} tokens over 16 streams in {pooled * 1e3:.1f} ms "
              f"({16 * length / pooled:,.0f} tokens/s), accuracy {match:.2f}")

        print("\n=== 8. StreamingService: the same fanout from independent clients")
        with StreamingService(served_model, lag=4) as stream_service:
            handles = [stream_service.open() for _ in range(8)]
            futures = [
                handle.submit_push(sent[t])
                for t in range(length)
                for handle, sent in zip(handles, sentences)
            ]
            for future in futures:
                future.result()
            results = [handle.finish() for handle in handles]
            sstats = stream_service.stats.snapshot()
        print(f"    {sstats['n_requests']} queued pushes coalesced into "
              f"{sstats['n_batches']} ticks "
              f"(mean occupancy {sstats['mean_batch_size']:.1f})")

        print("\n=== 9. The same stack over HTTP (tag/score/stream/stats/health)")
        import json as _json
        import urllib.request

        with HTTPServingServer(registry, port=0) as server:
            base = f"http://{server.host}:{server.port}"
            request = urllib.request.Request(
                f"{base}/v1/models/pos-tagger/tag",
                data=_json.dumps({"sequence": [int(t) for t in sentence]}).encode(),
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                tags = _json.loads(response.read())["tags"]
            with urllib.request.urlopen(f"{base}/stats", timeout=10) as response:
                http_stats = _json.loads(response.read())
            print(f"    POST /v1/models/pos-tagger/tag -> {tags[:8]}...")
            print(f"    GET /stats -> router served "
                  f"{http_stats['router']['n_requests']} request(s)")

        print("\n=== 10. Registry retention: GC old versions, keep what serves")
        registry.save("pos-tagger", model, metadata={"note": "retrained"})
        removed = registry.gc(keep_last_n=1)
        print(f"    collected {removed}; surviving versions: "
              f"{ {name: registry.versions(name) for name in registry.list_models()} }")


if __name__ == "__main__":
    main()
