"""Serving subsystem tour: persist, register, stream, and micro-batch serve.

Trains a small supervised PoS tagger, stores it in an on-disk registry,
then serves it two ways:

* **online** — a :class:`~repro.serving.StreamingDecoder` tags tokens as
  they "arrive", printing the filtering posterior's top state per token and
  the fixed-lag finalized labels;
* **offline/concurrent** — a :class:`~repro.serving.TaggingService`
  micro-batches a burst of requests through the batched engine and reports
  throughput and batch-occupancy statistics.

Run with ``PYTHONPATH=src python examples/serving_demo.py``.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.config import DHMMConfig, ServingConfig
from repro.core.supervised import SupervisedDiversifiedHMM
from repro.datasets.pos import generate_wsj_like_corpus
from repro.hmm.emissions.categorical import CategoricalEmission
from repro.serving import ModelRegistry, StreamingDecoder, TaggingService, resolve_hmm


def main() -> None:
    print("=== 1. Train a supervised PoS dHMM on the synthetic WSJ-like corpus")
    corpus = generate_wsj_like_corpus(
        n_sentences=300, vocabulary_size=500, mean_length=10, max_length=40, seed=0
    )
    model = SupervisedDiversifiedHMM(
        n_states=corpus.n_tags,
        config=DHMMConfig(alpha=100.0, max_inner_iter=25),
        emissions=CategoricalEmission.random_init(
            corpus.n_tags, corpus.vocabulary_size, seed=0
        ),
    )
    model.fit(corpus.words, corpus.tags)
    print(f"    trained on {corpus.n_sentences} sentences / {corpus.n_tokens} tokens")

    with tempfile.TemporaryDirectory() as tmp:
        print("\n=== 2. Save it to a versioned registry and load it back")
        registry = ModelRegistry(Path(tmp) / "registry")
        version = registry.save(
            "pos-tagger", model, metadata={"dataset": "wsj-like", "alpha": 100.0}
        )
        print(f"    saved as pos-tagger v{version}: {registry.describe('pos-tagger')}")
        served_model = registry.load("pos-tagger")

        print("\n=== 3. Stream one sentence token-by-token (fixed lag 4)")
        sentence, gold = corpus.words[0], corpus.tags[0]
        decoder = StreamingDecoder(served_model, lag=4)
        for t, token in enumerate(sentence):
            step = decoder.push(token)
            top = int(np.argmax(step.filtering))
            finalized = ", ".join(
                f"token {pos} -> {corpus.tag_names[state]}" for pos, state in step.finalized
            )
            print(
                f"    t={t:2d} token={token:4d}  filter->{corpus.tag_names[top]:<12}"
                f"  {('finalized: ' + finalized) if finalized else ''}"
            )
        result = decoder.finish()
        accuracy = float(np.mean(result.path == gold))
        print(f"    full path accuracy vs gold tags: {accuracy:.2f}")

        print("\n=== 4. Serve a burst of concurrent requests through the micro-batcher")
        config = ServingConfig(max_batch_size=256, max_wait_ms=2.0)
        start = time.perf_counter()
        with TaggingService(served_model, config=config) as service:
            paths = service.tag_many(corpus.words)
            stats = service.stats.snapshot()
        elapsed = time.perf_counter() - start
        correct = sum(
            int(np.sum(path == gold)) for path, gold in zip(paths, corpus.tags)
        )
        print(f"    tagged {stats['n_requests']} requests / {stats['n_tokens']} tokens "
              f"in {elapsed * 1e3:.1f} ms")
        print(f"    mean batch occupancy {stats['mean_batch_size']:.1f} "
              f"(max {stats['max_batch_size']}), "
              f"{stats['n_tokens'] / elapsed:,.0f} tokens/s")
        print(f"    tagging accuracy: {correct / stats['n_tokens']:.2f}")

        print("\n=== 5. Compare with sequential per-request decoding")
        hmm = resolve_hmm(served_model)
        start = time.perf_counter()
        for sentence in corpus.words:
            hmm.decode(sentence)
        sequential = time.perf_counter() - start
        print(f"    sequential: {sequential * 1e3:.1f} ms "
              f"-> micro-batching speedup {sequential / elapsed:.1f}x")


if __name__ == "__main__":
    main()
