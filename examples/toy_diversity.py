"""The flat-emission sweep of Fig. 3-5: when does the diversity prior matter?

Regenerates the paper's Section 4.1.2 study: the emission standard deviation
of the toy HMM is gradually enlarged so the per-state Gaussians overlap and
the hidden states become ambiguous.  For every sigma the classical HMM and
the diversified HMM are trained on freshly sampled data and we record

* the average pairwise Bhattacharyya distance between the learned
  transition rows (Fig. 3),
* the number of states used more than 50 times by the Viterbi labeling
  (Fig. 5), and
* the 1-to-1 labeling accuracy.

Run with:  python examples/toy_diversity.py [--points N] [--runs R]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.datasets.toy import sigma_sweep_values
from repro.experiments.reporting import format_table
from repro.experiments.toy import run_sigma_sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=8, help="number of sigma values")
    parser.add_argument("--runs", type=int, default=3, help="independent runs per sigma")
    parser.add_argument("--alpha", type=float, default=1.0, help="diversity prior weight")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    # The paper sweeps sigma = 0.025 + 0.1 * (t - 1) for t = 1..50; we
    # subsample the same grid to the requested number of points.
    full_grid = sigma_sweep_values(50)
    sigmas = full_grid[np.linspace(0, 49, args.points).astype(int)]

    sweep = run_sigma_sweep(
        sigmas=sigmas,
        alpha=args.alpha,
        n_runs=args.runs,
        max_em_iter=20,
        seed=args.seed,
    )

    print("Fig. 3 / Fig. 5 analogue - transition diversity and #states vs sigma")
    print(f"(alpha = {args.alpha}, {args.runs} runs per point, "
          f"ground-truth diversity = {sweep.true_diversity:.3f})")
    print()
    rows = [
        (
            float(sigma),
            float(sweep.hmm_diversity[i]),
            float(sweep.dhmm_diversity[i]),
            float(sweep.hmm_n_states[i]),
            float(sweep.dhmm_n_states[i]),
            float(sweep.hmm_accuracy[i]),
            float(sweep.dhmm_accuracy[i]),
        )
        for i, sigma in enumerate(sweep.sigmas)
    ]
    print(format_table(
        ["sigma", "HMM div", "dHMM div", "HMM #states", "dHMM #states", "HMM acc", "dHMM acc"],
        rows,
    ))
    print()
    gap = sweep.dhmm_diversity - sweep.hmm_diversity
    print(f"average diversity gap (dHMM - HMM): {gap.mean():+.3f}")
    print("the gap widens as the emissions flatten, which is the paper's Fig. 3 message")


if __name__ == "__main__":
    main()
