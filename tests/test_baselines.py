"""Unit tests for the supervised OCR baseline classifiers."""

import numpy as np
import pytest

from repro.baselines import (
    BernoulliNaiveBayes,
    OptimizedHMMClassifier,
    SupervisedHMMClassifier,
)
from repro.datasets.ocr import N_LETTERS, N_PIXELS
from repro.exceptions import NotFittedError, ValidationError
from repro.metrics.accuracy import sequence_accuracy


@pytest.fixture(scope="module")
def ocr_split(tiny_ocr_dataset):
    data = tiny_ocr_dataset
    n_train = 60
    train = (data.images[:n_train], data.labels[:n_train])
    test = (data.images[n_train:], data.labels[n_train:])
    return train, test


class TestBernoulliNaiveBayes:
    def test_fit_predict_accuracy_above_chance(self, ocr_split):
        (train_x, train_y), (test_x, test_y) = ocr_split
        clf = BernoulliNaiveBayes(N_LETTERS, N_PIXELS).fit(train_x, train_y)
        acc = sequence_accuracy(test_y, clf.predict(test_x))
        assert acc > 0.3  # chance is ~0.04

    def test_prediction_shapes_match_inputs(self, ocr_split):
        (train_x, train_y), (test_x, _) = ocr_split
        clf = BernoulliNaiveBayes(N_LETTERS, N_PIXELS).fit(train_x, train_y)
        preds = clf.predict(test_x)
        assert len(preds) == len(test_x)
        assert all(p.shape[0] == x.shape[0] for p, x in zip(preds, test_x))

    def test_log_joint_shape(self, ocr_split):
        (train_x, train_y), _ = ocr_split
        clf = BernoulliNaiveBayes(N_LETTERS, N_PIXELS).fit(train_x, train_y)
        scores = clf.log_joint(train_x[0])
        assert scores.shape == (train_x[0].shape[0], N_LETTERS)

    def test_predict_before_fit_raises(self):
        clf = BernoulliNaiveBayes(N_LETTERS, N_PIXELS)
        with pytest.raises(NotFittedError):
            clf.predict([np.zeros((2, N_PIXELS))])

    def test_invalid_construction(self):
        with pytest.raises(ValidationError):
            BernoulliNaiveBayes(1, 10)
        with pytest.raises(ValidationError):
            BernoulliNaiveBayes(5, 0)
        with pytest.raises(ValidationError):
            BernoulliNaiveBayes(5, 10, pseudocount=-1.0)

    def test_feature_dimension_mismatch_raises(self, ocr_split):
        (train_x, train_y), _ = ocr_split
        clf = BernoulliNaiveBayes(N_LETTERS, 10)
        with pytest.raises(ValidationError):
            clf.fit(train_x, train_y)


class TestSupervisedHMMClassifier:
    def test_beats_naive_bayes_on_average(self, ocr_split):
        (train_x, train_y), (test_x, test_y) = ocr_split
        nb = BernoulliNaiveBayes(N_LETTERS, N_PIXELS).fit(train_x, train_y)
        hmm = SupervisedHMMClassifier(N_LETTERS, N_PIXELS).fit(train_x, train_y)
        nb_acc = sequence_accuracy(test_y, nb.predict(test_x))
        hmm_acc = sequence_accuracy(test_y, hmm.predict(test_x))
        assert hmm_acc >= nb_acc - 0.02

    def test_transmat_is_row_stochastic(self, ocr_split):
        (train_x, train_y), _ = ocr_split
        hmm = SupervisedHMMClassifier(N_LETTERS, N_PIXELS).fit(train_x, train_y)
        assert np.allclose(hmm.transmat_.sum(axis=1), 1.0)
        assert np.all(hmm.transmat_ >= 0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            SupervisedHMMClassifier(N_LETTERS, N_PIXELS).predict([np.zeros((1, N_PIXELS))])

    def test_invalid_construction(self):
        with pytest.raises(ValidationError):
            SupervisedHMMClassifier(1, N_PIXELS)
        with pytest.raises(ValidationError):
            SupervisedHMMClassifier(N_LETTERS, 0)


class TestOptimizedHMMClassifier:
    def test_accuracy_comparable_to_plain_hmm(self, ocr_split):
        # On the tiny 80-word fixture the emission re-weighting trick is
        # noisy, so only a coarse "same ballpark" comparison is meaningful
        # (the Fig. 11 benchmark checks the ordering on a realistic size).
        (train_x, train_y), (test_x, test_y) = ocr_split
        hmm = SupervisedHMMClassifier(N_LETTERS, N_PIXELS).fit(train_x, train_y)
        opt = OptimizedHMMClassifier(N_LETTERS, N_PIXELS).fit(train_x, train_y)
        hmm_acc = sequence_accuracy(test_y, hmm.predict(test_x))
        opt_acc = sequence_accuracy(test_y, opt.predict(test_x))
        assert opt_acc >= hmm_acc - 0.15
        assert opt_acc > 0.3

    def test_pixel_weights_are_built(self, ocr_split):
        (train_x, train_y), _ = ocr_split
        opt = OptimizedHMMClassifier(N_LETTERS, N_PIXELS).fit(train_x, train_y)
        assert opt.pixel_weights_ is not None
        assert opt.pixel_weights_.shape == (N_PIXELS,)
        assert set(np.unique(opt.pixel_weights_)) <= {0.5, 1.0}

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            OptimizedHMMClassifier(N_LETTERS, N_PIXELS).predict([np.zeros((1, N_PIXELS))])

    def test_invalid_emission_weight(self):
        with pytest.raises(ValidationError):
            OptimizedHMMClassifier(N_LETTERS, N_PIXELS, emission_weight=0.0)
