"""Unit tests for Viterbi decoding, checked against brute force."""

import itertools

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError
from repro.hmm.viterbi import viterbi_decode
from repro.utils.maths import safe_log


def brute_force_best_path(startprob, transmat, obs_probs):
    T, K = obs_probs.shape
    best_path, best_logp = None, -np.inf
    for path in itertools.product(range(K), repeat=T):
        logp = np.log(startprob[path[0]]) + np.log(obs_probs[0, path[0]])
        for t in range(1, T):
            logp += np.log(transmat[path[t - 1], path[t]]) + np.log(obs_probs[t, path[t]])
        if logp > best_logp:
            best_logp, best_path = logp, np.array(path)
    return best_path, best_logp


class TestViterbi:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(0)
        for _ in range(5):
            K, T = 3, 5
            startprob = rng.dirichlet(np.ones(K))
            transmat = rng.dirichlet(np.ones(K), size=K)
            obs_probs = rng.dirichlet(np.ones(K), size=T)
            path, logp = viterbi_decode(startprob, transmat, safe_log(obs_probs))
            expected_path, expected_logp = brute_force_best_path(startprob, transmat, obs_probs)
            assert np.isclose(logp, expected_logp)
            assert np.array_equal(path, expected_path)

    def test_deterministic_chain_follows_transitions(self):
        # A chain that deterministically cycles 0 -> 1 -> 0 with perfect
        # observations must be decoded exactly.
        startprob = np.array([1.0, 0.0])
        transmat = np.array([[0.0, 1.0], [1.0, 0.0]])
        obs_probs = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0], [0.0, 1.0]])
        path, _ = viterbi_decode(startprob, transmat, safe_log(obs_probs))
        assert np.array_equal(path, [0, 1, 0, 1])

    def test_transitions_can_override_weak_observations(self):
        # Observations weakly prefer state 1 at t=1, but transitions from state 0
        # strongly prefer staying, so the decoded path stays in state 0.
        startprob = np.array([1.0, 0.0])
        transmat = np.array([[0.99, 0.01], [0.5, 0.5]])
        obs_probs = np.array([[1.0, 1e-12], [0.45, 0.55]])
        path, _ = viterbi_decode(startprob, transmat, safe_log(obs_probs))
        assert np.array_equal(path, [0, 0])

    def test_single_observation(self):
        startprob = np.array([0.2, 0.8])
        transmat = np.full((2, 2), 0.5)
        obs_probs = np.array([[0.9, 0.1]])
        path, logp = viterbi_decode(startprob, transmat, safe_log(obs_probs))
        assert path.tolist() == [0]
        assert np.isclose(logp, np.log(0.2 * 0.9))

    def test_path_log_probability_not_greater_than_data_likelihood(self):
        from repro.hmm.forward_backward import sequence_log_likelihood

        rng = np.random.default_rng(1)
        startprob = rng.dirichlet(np.ones(4))
        transmat = rng.dirichlet(np.ones(4), size=4)
        log_obs = safe_log(rng.dirichlet(np.ones(4), size=8))
        _, logp = viterbi_decode(startprob, transmat, log_obs)
        assert logp <= sequence_log_likelihood(startprob, transmat, log_obs) + 1e-9

    def test_dimension_mismatch_raises(self):
        with pytest.raises(DimensionMismatchError):
            viterbi_decode(np.ones(3) / 3, np.full((2, 2), 0.5), np.zeros((4, 2)))
        with pytest.raises(DimensionMismatchError):
            viterbi_decode(np.ones(2) / 2, np.full((2, 2), 0.5), np.zeros(4))
