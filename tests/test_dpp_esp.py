"""Unit tests for elementary symmetric polynomials."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.dpp.esp import elementary_symmetric_polynomials, elementary_symmetric_table
from repro.exceptions import ValidationError


def brute_force_esp(values, k):
    if k == 0:
        return 1.0
    return float(sum(np.prod(c) for c in itertools.combinations(values, k)))


class TestElementarySymmetricPolynomials:
    def test_small_example(self):
        lam = np.array([1.0, 2.0, 3.0])
        e = elementary_symmetric_polynomials(lam, 3)
        assert np.isclose(e[0], 1.0)
        assert np.isclose(e[1], 6.0)
        assert np.isclose(e[2], 11.0)
        assert np.isclose(e[3], 6.0)

    def test_matches_brute_force(self):
        rng = np.random.default_rng(0)
        lam = rng.uniform(0.1, 2.0, size=6)
        e = elementary_symmetric_polynomials(lam, 4)
        for k in range(5):
            assert np.isclose(e[k], brute_force_esp(lam, k), rtol=1e-10)

    def test_order_beyond_length_is_zero(self):
        e = elementary_symmetric_polynomials(np.array([1.0, 2.0]), 4)
        assert e[3] == 0.0
        assert e[4] == 0.0

    def test_rejects_negative_order(self):
        with pytest.raises(ValidationError):
            elementary_symmetric_polynomials(np.ones(3), -1)

    def test_rejects_matrix_input(self):
        with pytest.raises(ValidationError):
            elementary_symmetric_polynomials(np.ones((2, 2)), 1)

    @given(arrays(np.float64, (5,), elements=st.floats(0.0, 3.0)))
    @settings(max_examples=50, deadline=None)
    def test_property_matches_polynomial_expansion(self, lam):
        # prod(1 + lam_i) = sum_k e_k(lam)
        e = elementary_symmetric_polynomials(lam, lam.size)
        assert np.isclose(e.sum(), np.prod(1.0 + lam), rtol=1e-8)


class TestElementarySymmetricTable:
    def test_last_column_matches_vector_version(self):
        lam = np.array([0.5, 1.5, 2.5, 3.5])
        table = elementary_symmetric_table(lam, 3)
        e = elementary_symmetric_polynomials(lam, 3)
        assert np.allclose(table[:, -1], e)

    def test_first_row_is_ones(self):
        table = elementary_symmetric_table(np.array([1.0, 2.0]), 2)
        assert np.allclose(table[0], 1.0)
