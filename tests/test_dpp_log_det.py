"""Unit tests for the DPP log-det prior and its gradient."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.dpp.log_det import (
    dpp_log_prior,
    dpp_log_prior_and_gradient,
    dpp_log_prior_gradient,
    log_det_psd,
    paper_closed_form_gradient,
    psd_log_det_and_inverse,
)
from repro.exceptions import ValidationError
from repro.optim.simplex import project_rows_to_simplex


def finite_difference_gradient(A, rho, eps=1e-6):
    fd = np.zeros_like(A)
    for i in range(A.shape[0]):
        for j in range(A.shape[1]):
            Ap = A.copy()
            Am = A.copy()
            Ap[i, j] += eps
            Am[i, j] -= eps
            fd[i, j] = (dpp_log_prior(Ap, rho=rho) - dpp_log_prior(Am, rho=rho)) / (2 * eps)
    return fd


class TestLogDetPsd:
    def test_identity_has_zero_logdet(self):
        assert np.isclose(log_det_psd(np.eye(4)), 0.0)

    def test_matches_slogdet_for_spd(self):
        rng = np.random.default_rng(0)
        M = rng.normal(size=(5, 5))
        K = M @ M.T + np.eye(5)
        assert np.isclose(log_det_psd(K), np.linalg.slogdet(K)[1])

    def test_semidefinite_falls_back_gracefully(self):
        K = np.ones((3, 3))  # rank one
        value = log_det_psd(K)
        assert np.isfinite(value)
        assert value < -100  # essentially log(0)

    def test_jitter_regularizes(self):
        K = np.ones((2, 2))
        assert log_det_psd(K, jitter=0.5) > log_det_psd(K)

    def test_rejects_non_square(self):
        with pytest.raises(ValidationError):
            log_det_psd(np.ones((2, 3)))


class TestPsdLogDetAndInverse:
    def test_single_factorization_matches_separate_computations(self):
        rng = np.random.default_rng(1)
        M = rng.normal(size=(6, 6))
        K = M @ M.T + np.eye(6)
        log_det, inverse = psd_log_det_and_inverse(K)
        assert np.isclose(log_det, np.linalg.slogdet(K)[1])
        assert np.allclose(inverse, np.linalg.inv(K), atol=1e-10)
        # Cholesky-derived inverse of an SPD matrix is symmetric.
        assert np.allclose(inverse, inverse.T)

    def test_semidefinite_fallback_is_finite(self):
        log_det, inverse = psd_log_det_and_inverse(np.ones((3, 3)))
        assert np.isfinite(log_det)
        assert np.all(np.isfinite(inverse))

    def test_rejects_non_square(self):
        with pytest.raises(ValidationError):
            psd_log_det_and_inverse(np.ones((2, 3)))

    def test_combined_prior_matches_separate_prior_and_gradient(self):
        rng = np.random.default_rng(2)
        A = rng.dirichlet(np.ones(5) * 2.0, size=5)
        value, grad = dpp_log_prior_and_gradient(A, rho=0.5)
        assert np.isclose(value, dpp_log_prior(A, rho=0.5))
        assert np.allclose(grad, dpp_log_prior_gradient(A, rho=0.5))

    def test_combined_prior_consistent_with_exact_zero_entries(self):
        # Both entry points floor A identically, so a matrix containing
        # exact zeros yields the same prior value either way.
        A = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.2, 0.3, 0.5]])
        value, _ = dpp_log_prior_and_gradient(A, rho=0.5)
        assert np.isclose(value, dpp_log_prior(A, rho=0.5))


class TestDppLogPrior:
    def test_identical_rows_have_very_low_prior(self):
        diverse = np.eye(4) * 0.7 + 0.1
        diverse = diverse / diverse.sum(axis=1, keepdims=True)
        collapsed = np.tile(np.full(4, 0.25), (4, 1))
        assert dpp_log_prior(diverse) > dpp_log_prior(collapsed)

    def test_prior_is_non_positive(self, random_transition_matrix):
        # The normalized kernel has unit diagonal, so det <= 1.
        assert dpp_log_prior(random_transition_matrix) <= 1e-9

    def test_identity_transitions_have_maximal_prior(self):
        A = np.eye(5) * (1 - 1e-9) + 1e-9 / 4
        A = A / A.sum(axis=1, keepdims=True)
        assert dpp_log_prior(A) > -1e-3

    def test_more_diverse_matrix_scores_higher(self):
        peaked = np.array([[0.9, 0.05, 0.05], [0.05, 0.9, 0.05], [0.05, 0.05, 0.9]])
        flat = np.array([[0.4, 0.3, 0.3], [0.3, 0.4, 0.3], [0.3, 0.3, 0.4]])
        assert dpp_log_prior(peaked) > dpp_log_prior(flat)


class TestDppLogPriorGradient:
    @pytest.mark.parametrize("rho", [0.25, 0.5, 1.0])
    def test_matches_finite_differences(self, rho):
        rng = np.random.default_rng(3)
        A = rng.dirichlet(np.ones(4) * 2.0, size=4)
        grad = dpp_log_prior_gradient(A, rho=rho)
        fd = finite_difference_gradient(A, rho)
        assert np.allclose(grad, fd, rtol=1e-4, atol=1e-6)

    def test_matches_finite_differences_off_simplex(self):
        rng = np.random.default_rng(4)
        A = rng.uniform(0.05, 1.0, size=(3, 5))
        grad = dpp_log_prior_gradient(A, rho=0.5)
        fd = finite_difference_gradient(A, 0.5)
        assert np.allclose(grad, fd, rtol=1e-4, atol=1e-6)

    def test_gradient_shape(self, random_transition_matrix):
        grad = dpp_log_prior_gradient(random_transition_matrix)
        assert grad.shape == random_transition_matrix.shape

    def test_ascending_the_gradient_increases_diversity(self, random_transition_matrix):
        A = random_transition_matrix.copy()
        before = dpp_log_prior(A)
        grad = dpp_log_prior_gradient(A)
        stepped = project_rows_to_simplex(A + 1e-3 * grad / np.max(np.abs(grad)))
        stepped = np.clip(stepped, 1e-10, None)
        stepped = stepped / stepped.sum(axis=1, keepdims=True)
        assert dpp_log_prior(stepped) >= before - 1e-9

    def test_paper_closed_form_agrees_up_to_row_constants_on_simplex(self):
        # On the simplex, the paper's unnormalized-kernel gradient and the
        # exact normalized-kernel gradient differ by a constant per row
        # (which the simplex projection of an ascent step removes).
        rng = np.random.default_rng(5)
        A = rng.dirichlet(np.ones(5) * 3.0, size=5)
        exact = dpp_log_prior_gradient(A, rho=0.5, jitter=0.0)
        paper = 2.0 * paper_closed_form_gradient(A)  # overall scale is irrelevant
        difference = exact - paper
        row_std = np.std(difference, axis=1)
        scale = np.max(np.abs(exact))
        assert np.all(row_std < 1e-8 * max(scale, 1.0))

    def test_rejects_invalid_rho(self):
        with pytest.raises(ValidationError):
            dpp_log_prior_gradient(np.eye(3), rho=0.0)

    @given(arrays(np.float64, (3, 4), elements=st.floats(0.05, 1.0)))
    @settings(max_examples=25, deadline=None)
    def test_property_gradient_is_finite(self, A):
        grad = dpp_log_prior_gradient(A)
        assert np.all(np.isfinite(grad))
