"""Runtime lock-order tracker: ABBA cycles, reentry, arming, the factory."""

from __future__ import annotations

import threading

import pytest

from repro.analysis import lockorder
from repro.analysis.lockorder import (
    LockOrderError,
    LockOrderTracker,
    TrackedLock,
    make_lock,
)


@pytest.fixture
def tracker():
    return LockOrderTracker()


def locks(tracker, *names):
    return tuple(TrackedLock(name, tracker) for name in names)


class TestCycleDetection:
    def test_consistent_order_is_clean(self, tracker):
        a, b = locks(tracker, "A", "B")
        for _ in range(3):
            with a:
                with b:
                    pass
        tracker.assert_clean()
        assert tracker.violations == []

    def test_abba_cycle_is_recorded(self, tracker):
        a, b = locks(tracker, "A", "B")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        assert len(tracker.violations) == 1
        violation = tracker.violations[0]
        assert violation.kind == "cycle"
        assert {"A", "B"} <= set(violation.cycle)
        with pytest.raises(LockOrderError):
            tracker.assert_clean()

    def test_transitive_cycle_is_recorded(self, tracker):
        a, b, c = locks(tracker, "A", "B", "C")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with a:
                pass
        assert any(v.kind == "cycle" for v in tracker.violations)

    def test_cycle_across_threads(self, tracker):
        a, b = locks(tracker, "A", "B")

        def forward():
            with a:
                with b:
                    pass

        thread = threading.Thread(target=forward)
        thread.start()
        thread.join()
        with b:
            with a:
                pass
        assert any(v.kind == "cycle" for v in tracker.violations)

    def test_instances_share_a_node_by_name(self, tracker):
        # Two scheduler instances: lock *names* define the discipline.
        a1, b1 = locks(tracker, "stats", "lifecycle")
        a2, b2 = locks(tracker, "stats", "lifecycle")
        with a1:
            with b1:
                pass
        with b2:
            with a2:
                pass
        assert any(v.kind == "cycle" for v in tracker.violations)


class TestReentry:
    def test_reacquiring_a_held_name_is_recorded(self):
        tracker = LockOrderTracker(strict=True)
        (a,) = locks(tracker, "A")
        a.acquire()
        try:
            # strict mode raises *before* the real (deadlocking) acquire
            with pytest.raises(LockOrderError):
                a.acquire()
        finally:
            a.release()
        assert tracker.violations[0].kind == "reentry"


class TestStrictMode:
    def test_strict_raises_at_the_closing_edge(self):
        tracker = LockOrderTracker(strict=True)
        a, b = locks(tracker, "A", "B")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderError):
                a.acquire()


class TestTrackedLock:
    def test_context_manager_and_locked(self, tracker):
        (a,) = locks(tracker, "A")
        assert not a.locked()
        with a:
            assert a.locked()
        assert not a.locked()

    def test_release_clears_the_held_stack(self, tracker):
        a, b = locks(tracker, "A", "B")
        with a:
            pass
        with b:  # A was released: no A -> B edge, no cycle potential
            pass
        with b:
            with a:
                pass
        tracker.assert_clean()


class TestFactory:
    def test_disarmed_returns_plain_lock(self):
        assert not lockorder.is_armed()
        lock = make_lock("anything")
        assert not isinstance(lock, TrackedLock)
        assert type(lock) is type(threading.Lock())

    def test_armed_returns_tracked_lock(self):
        previous = lockorder.get_tracker()
        tracker = lockorder.arm()
        try:
            lock = make_lock("scheduler.lifecycle")
            assert isinstance(lock, TrackedLock)
            assert lock.name == "scheduler.lifecycle"
            assert lockorder.get_tracker() is tracker
        finally:
            lockorder._tracker = previous

    def test_disarm_restores_plain_locks(self):
        previous = lockorder.get_tracker()
        lockorder.arm()
        lockorder.disarm()
        try:
            assert not lockorder.is_armed()
            assert not isinstance(make_lock("x"), TrackedLock)
        finally:
            lockorder._tracker = previous
