"""Unit tests for transition-row diversity measures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ValidationError
from repro.metrics.diversity import (
    average_pairwise_bhattacharyya,
    average_pairwise_cosine_distance,
    pairwise_bhattacharyya_distances,
    row_diversity_profile,
)


class TestPairwiseBhattacharyya:
    def test_identical_rows_have_zero_distance(self):
        A = np.tile(np.array([0.25, 0.25, 0.5]), (3, 1))
        D = pairwise_bhattacharyya_distances(A)
        assert np.allclose(D, 0.0, atol=1e-12)

    def test_matrix_is_symmetric_with_zero_diagonal(self, random_transition_matrix):
        D = pairwise_bhattacharyya_distances(random_transition_matrix)
        assert np.allclose(D, D.T)
        assert np.allclose(np.diag(D), 0.0)

    def test_orthogonal_rows_have_large_distance(self):
        A = np.eye(3)
        D = pairwise_bhattacharyya_distances(A)
        assert np.all(D[np.triu_indices(3, 1)] > 100.0)


class TestAveragePairwiseDiversity:
    def test_identity_is_more_diverse_than_uniform(self):
        identity_like = np.eye(4) * 0.97 + 0.01
        uniform = np.full((4, 4), 0.25)
        assert average_pairwise_bhattacharyya(identity_like) > average_pairwise_bhattacharyya(
            uniform
        )

    def test_uniform_matrix_has_zero_diversity(self):
        assert np.isclose(average_pairwise_bhattacharyya(np.full((3, 3), 1 / 3)), 0.0, atol=1e-12)
        assert np.isclose(average_pairwise_cosine_distance(np.full((3, 3), 1 / 3)), 0.0, atol=1e-12)

    def test_cosine_distance_in_unit_interval(self, random_transition_matrix):
        value = average_pairwise_cosine_distance(random_transition_matrix)
        assert 0.0 <= value <= 1.0

    def test_single_row_raises(self):
        with pytest.raises(ValidationError):
            average_pairwise_bhattacharyya(np.array([[0.5, 0.5]]))

    def test_negative_entries_raise(self):
        with pytest.raises(ValidationError):
            average_pairwise_bhattacharyya(np.array([[1.5, -0.5], [0.5, 0.5]]))

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_property_diversity_non_negative(self, seed):
        A = np.random.default_rng(seed).dirichlet(np.ones(4), size=4)
        assert average_pairwise_bhattacharyya(A) >= 0.0
        assert average_pairwise_cosine_distance(A) >= -1e-12

    def test_sharpening_rows_increases_diversity(self):
        base = np.random.default_rng(3).dirichlet(np.ones(5), size=5)
        sharpened = base**3
        sharpened /= sharpened.sum(axis=1, keepdims=True)
        assert average_pairwise_bhattacharyya(sharpened) >= average_pairwise_bhattacharyya(base)


class TestRowDiversityProfile:
    def test_profile_length_excludes_reference_row(self, random_transition_matrix):
        profile = row_diversity_profile(random_transition_matrix, 2)
        assert profile.shape == (4,)

    def test_profile_matches_pairwise_matrix(self, random_transition_matrix):
        D = pairwise_bhattacharyya_distances(random_transition_matrix)
        profile = row_diversity_profile(random_transition_matrix, 0)
        assert np.allclose(profile, D[0, 1:])

    def test_out_of_range_row_raises(self, random_transition_matrix):
        with pytest.raises(ValidationError):
            row_diversity_profile(random_transition_matrix, 9)
