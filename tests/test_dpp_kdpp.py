"""Unit tests for the k-DPP distribution object."""

import itertools

import numpy as np
import pytest

from repro.dpp.kdpp import KDPP
from repro.exceptions import ValidationError


def make_kernel(seed=0, n=5):
    rng = np.random.default_rng(seed)
    M = rng.normal(size=(n, n))
    return M @ M.T + 0.5 * np.eye(n)


class TestKDPP:
    def test_probabilities_sum_to_one_over_all_subsets(self):
        L = make_kernel(n=5)
        k = 2
        kdpp = KDPP(L, k)
        total = sum(
            np.exp(kdpp.log_probability(subset))
            for subset in itertools.combinations(range(5), k)
        )
        assert np.isclose(total, 1.0, atol=1e-8)

    def test_diverse_subsets_are_more_probable(self):
        # Two nearly identical items and one orthogonal item.
        base = np.array([[1.0, 0.99, 0.0], [0.99, 1.0, 0.0], [0.0, 0.0, 1.0]])
        kdpp = KDPP(base, 2)
        similar_pair = kdpp.log_probability([0, 1])
        diverse_pair = kdpp.log_probability([0, 2])
        assert diverse_pair > similar_pair

    def test_unnormalized_matches_logdet(self):
        L = make_kernel(n=4)
        kdpp = KDPP(L, 2)
        subset = [1, 3]
        sub = L[np.ix_(subset, subset)]
        assert np.isclose(
            kdpp.unnormalized_log_probability(subset), np.linalg.slogdet(sub)[1]
        )

    def test_log_normalizer_consistency(self):
        L = make_kernel(n=4)
        kdpp = KDPP(L, 2)
        subset = [0, 1]
        assert np.isclose(
            kdpp.log_probability(subset),
            kdpp.unnormalized_log_probability(subset) - kdpp.log_normalizer,
        )

    def test_rejects_wrong_subset_size(self):
        kdpp = KDPP(make_kernel(), 2)
        with pytest.raises(ValidationError):
            kdpp.log_probability([0, 1, 2])

    def test_rejects_duplicate_items(self):
        kdpp = KDPP(make_kernel(), 2)
        with pytest.raises(ValidationError):
            kdpp.log_probability([1, 1])

    def test_rejects_out_of_range_items(self):
        kdpp = KDPP(make_kernel(n=3), 2)
        with pytest.raises(ValidationError):
            kdpp.log_probability([0, 7])

    def test_rejects_asymmetric_kernel(self):
        with pytest.raises(ValidationError):
            KDPP(np.array([[1.0, 0.5], [0.0, 1.0]]), 1)

    def test_rejects_invalid_k(self):
        with pytest.raises(ValidationError):
            KDPP(make_kernel(n=3), 4)

    def test_ground_set_size(self):
        assert KDPP(make_kernel(n=6), 3).ground_set_size == 6
