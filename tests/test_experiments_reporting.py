"""Tests for the plain-text reporting helpers and the ablation harnesses."""

import numpy as np

from repro.experiments.ablations import run_projection_ablation, run_rho_ablation
from repro.experiments.reporting import format_series, format_table


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        text = format_table(["name", "value"], [["hmm", 0.5], ["dhmm", 0.75]])
        assert "name" in text
        assert "hmm" in text
        assert "0.7500" in text

    def test_column_alignment(self):
        text = format_table(["a", "b"], [["x", 1.0]])
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[1].startswith("-")

    def test_custom_float_format(self):
        text = format_table(["v"], [[0.123456]], float_format="{:.2f}")
        assert "0.12" in text

    def test_format_series(self):
        text = format_series("accuracy vs alpha", [0, 1], [0.4, 0.5])
        assert text.startswith("accuracy vs alpha")
        assert "0.5000" in text


class TestAblations:
    def test_rho_ablation_rows(self):
        rows = run_rho_ablation(
            rhos=(0.5, 1.0), alpha=1.0, sigma=1.0, n_sequences=40, max_em_iter=4, seed=0
        )
        assert [row.name for row in rows] == ["rho=0.5", "rho=1.0"]
        for row in rows:
            assert 0.0 <= row.accuracy <= 1.0
            assert row.diversity >= 0.0

    def test_projection_ablation_rows(self):
        rows = run_projection_ablation(
            alpha=1.0, sigma=1.0, n_sequences=40, max_em_iter=4, seed=0
        )
        names = [row.name for row in rows]
        assert names == ["simplex-projection", "renormalize"]
        for row in rows:
            assert np.isfinite(row.accuracy)
            assert np.isfinite(row.diversity)
