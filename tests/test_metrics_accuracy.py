"""Unit tests for the sequential-labeling accuracy measures."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics.accuracy import (
    align_labels_one_to_one,
    many_to_one_accuracy,
    one_to_one_accuracy,
    remap_predictions,
    sequence_accuracy,
)


class TestOneToOneAccuracy:
    def test_perfect_permuted_labels_score_one(self):
        true = [np.array([0, 1, 2, 0])]
        pred = [np.array([2, 0, 1, 2])]  # a relabeling of the truth
        assert one_to_one_accuracy(true, pred) == 1.0

    def test_identity_labels_score_one(self):
        true = [np.array([0, 1, 1])]
        assert one_to_one_accuracy(true, true) == 1.0

    def test_partial_agreement(self):
        true = [np.array([0, 0, 1, 1])]
        pred = [np.array([0, 0, 0, 1])]
        assert np.isclose(one_to_one_accuracy(true, pred), 0.75)

    def test_accepts_flat_arrays(self):
        true = np.array([0, 1, 0, 1])
        pred = np.array([1, 0, 1, 0])
        assert one_to_one_accuracy(true, pred) == 1.0

    def test_mapping_is_bijective(self):
        # With a 1-to-1 constraint, two predicted states cannot both map to
        # the same true state, so accuracy is capped accordingly.
        true = [np.array([0, 0, 0, 0])]
        pred = [np.array([0, 1, 0, 1])]
        assert np.isclose(one_to_one_accuracy(true, pred, n_states=2), 0.5)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValidationError):
            one_to_one_accuracy([np.array([0, 1])], [np.array([0])])


class TestManyToOneAccuracy:
    def test_many_to_one_can_exceed_one_to_one(self):
        true = [np.array([0, 0, 0, 0])]
        pred = [np.array([0, 1, 0, 1])]
        assert many_to_one_accuracy(true, pred, n_states=2) == 1.0
        assert one_to_one_accuracy(true, pred, n_states=2) == 0.5

    def test_never_below_one_to_one(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            true = [rng.integers(0, 4, size=30)]
            pred = [rng.integers(0, 4, size=30)]
            assert many_to_one_accuracy(true, pred, 4) >= one_to_one_accuracy(true, pred, 4) - 1e-12


class TestSequenceAccuracy:
    def test_plain_fraction_of_matches(self):
        true = [np.array([0, 1]), np.array([2])]
        pred = [np.array([0, 0]), np.array([2])]
        assert np.isclose(sequence_accuracy(true, pred), 2.0 / 3.0)

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            sequence_accuracy([np.array([], dtype=int)], [np.array([], dtype=int)])

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValidationError):
            sequence_accuracy([np.array([0, 1])], [np.array([0])])


class TestAlignAndRemap:
    def test_alignment_maps_to_majority_partner(self):
        true = [np.array([0, 0, 1, 1, 2, 2])]
        pred = [np.array([2, 2, 0, 0, 1, 1])]
        mapping = align_labels_one_to_one(true, pred)
        assert mapping == {2: 0, 0: 1, 1: 2}

    def test_remap_predictions_applies_mapping(self):
        pred = [np.array([0, 1, 2])]
        mapping = {0: 2, 1: 0, 2: 1}
        out = remap_predictions(pred, mapping)
        assert out[0].tolist() == [2, 0, 1]

    def test_remap_keeps_unmapped_labels(self):
        out = remap_predictions([np.array([5])], {0: 1})
        assert out[0].tolist() == [5]

    def test_alignment_then_remap_equals_one_to_one_accuracy(self):
        rng = np.random.default_rng(1)
        true = [rng.integers(0, 3, size=50)]
        pred = [rng.integers(0, 3, size=50)]
        mapping = align_labels_one_to_one(true, pred, n_states=3)
        remapped = remap_predictions(pred, mapping)
        direct = one_to_one_accuracy(true, pred, n_states=3)
        assert np.isclose(sequence_accuracy(true, remapped), direct)
