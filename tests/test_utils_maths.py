"""Unit tests for repro.utils.maths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.utils.maths import (
    bhattacharyya_coefficient,
    bhattacharyya_distance,
    logsumexp,
    normalize_log_probabilities,
    normalize_rows,
    safe_log,
)


class TestSafeLog:
    def test_matches_log_for_positive_values(self):
        x = np.array([0.1, 1.0, 10.0])
        assert np.allclose(safe_log(x), np.log(x))

    def test_zero_maps_to_finite_value(self):
        assert np.isfinite(safe_log(0.0))

    def test_scalar_input(self):
        assert np.isclose(safe_log(np.e), 1.0)


class TestLogSumExp:
    def test_matches_naive_computation(self):
        x = np.array([-1.0, 0.0, 2.0])
        assert np.isclose(logsumexp(x), np.log(np.sum(np.exp(x))))

    def test_matches_scipy(self):
        from scipy.special import logsumexp as scipy_lse

        x = np.random.default_rng(0).normal(size=(4, 6))
        assert np.allclose(logsumexp(x, axis=1), scipy_lse(x, axis=1))
        assert np.allclose(logsumexp(x, axis=0), scipy_lse(x, axis=0))
        assert np.isclose(float(logsumexp(x)), float(scipy_lse(x)))

    def test_handles_large_values_without_overflow(self):
        x = np.array([1000.0, 1000.0])
        assert np.isclose(logsumexp(x), 1000.0 + np.log(2.0))

    def test_handles_all_minus_inf(self):
        x = np.array([-np.inf, -np.inf])
        assert logsumexp(x) == -np.inf

    @given(arrays(np.float64, (5,), elements=st.floats(-50, 50)))
    @settings(max_examples=50, deadline=None)
    def test_always_at_least_max(self, x):
        assert logsumexp(x) >= np.max(x) - 1e-12


class TestNormalizeRows:
    def test_rows_sum_to_one(self):
        m = np.array([[1.0, 3.0], [2.0, 2.0]])
        out = normalize_rows(m)
        assert np.allclose(out.sum(axis=1), 1.0)
        assert np.allclose(out[0], [0.25, 0.75])

    def test_zero_row_becomes_uniform(self):
        m = np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 2.0]])
        out = normalize_rows(m)
        assert np.allclose(out[0], 1.0 / 3.0)

    def test_pseudocount_smooths(self):
        m = np.array([[0.0, 4.0]])
        out = normalize_rows(m, pseudocount=1.0)
        assert np.allclose(out, [[1.0 / 6.0, 5.0 / 6.0]])

    def test_does_not_modify_input(self):
        m = np.array([[1.0, 1.0]])
        normalize_rows(m)
        assert np.allclose(m, [[1.0, 1.0]])

    def test_all_zero_matrix_becomes_uniform(self):
        out = normalize_rows(np.zeros((3, 4)))
        assert np.allclose(out, 0.25)
        assert np.all(np.isfinite(out))

    def test_non_finite_rows_fall_back_to_uniform(self):
        m = np.array([[np.inf, 1.0], [np.nan, 1.0], [1.0, 3.0]])
        out = normalize_rows(m)
        assert np.allclose(out[0], 0.5)
        assert np.allclose(out[1], 0.5)
        assert np.allclose(out[2], [0.25, 0.75])
        assert np.all(np.isfinite(out))


class TestNormalizeLogProbabilities:
    def test_matches_direct_normalization(self):
        logp = np.log(np.array([[0.2, 0.8], [0.5, 0.5]]))
        out = normalize_log_probabilities(logp, axis=1)
        assert np.allclose(out.sum(axis=1), 1.0)
        assert np.allclose(out[0], [0.2, 0.8])


class TestBhattacharyya:
    def test_identical_distributions_have_zero_distance(self):
        p = np.array([0.2, 0.3, 0.5])
        assert np.isclose(bhattacharyya_coefficient(p, p), 1.0)
        assert np.isclose(bhattacharyya_distance(p, p), 0.0, atol=1e-12)

    def test_disjoint_distributions_have_large_distance(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert bhattacharyya_coefficient(p, q) == 0.0
        assert bhattacharyya_distance(p, q) > 100.0

    def test_symmetry(self):
        p = np.array([0.1, 0.9])
        q = np.array([0.6, 0.4])
        assert np.isclose(bhattacharyya_distance(p, q), bhattacharyya_distance(q, p))

    @given(
        arrays(np.float64, (4,), elements=st.floats(0.01, 10.0)),
        arrays(np.float64, (4,), elements=st.floats(0.01, 10.0)),
    )
    @settings(max_examples=50, deadline=None)
    def test_distance_non_negative_for_distributions(self, a, b):
        p = a / a.sum()
        q = b / b.sum()
        assert bhattacharyya_distance(p, q) >= -1e-12
