"""Unit tests for the Table-2 tag inventory."""

import numpy as np

from repro.datasets.tags import (
    N_REDUCED_TAGS,
    TAG_INVENTORY,
    reduced_tag_names,
    tag_frequency_table,
    tag_frequency_vector,
)


class TestTagInventory:
    def test_46_original_tags(self):
        assert len(TAG_INVENTORY) == 46

    def test_reduced_indices_cover_all_15_groups(self):
        groups = {info.reduced_index for info in TAG_INVENTORY}
        assert groups == set(range(N_REDUCED_TAGS))

    def test_known_frequencies_from_table2(self):
        by_tag = {info.ptb_tag: info.frequency for info in TAG_INVENTORY}
        assert by_tag["NN"] == 13166
        assert by_tag["IN"] == 9959
        assert by_tag["UH"] == 3
        assert by_tag["FW"] == 4

    def test_reduced_names_length(self):
        assert len(reduced_tag_names()) == N_REDUCED_TAGS

    def test_noun_group_is_most_frequent(self):
        freq = tag_frequency_vector()
        assert int(np.argmax(freq)) == 0  # NOUN group

    def test_frequency_vector_totals(self):
        freq = tag_frequency_vector()
        assert freq.sum() == sum(info.frequency for info in TAG_INVENTORY)

    def test_skewed_long_tail(self):
        # The paper notes that ~25% of tags account for ~85% of tokens.
        freq = np.sort(tag_frequency_vector())[::-1]
        top4_share = freq[:4].sum() / freq.sum()
        assert top4_share > 0.7

    def test_frequency_table_is_sorted(self):
        table = tag_frequency_table()
        counts = [count for _, count in table]
        assert counts == sorted(counts, reverse=True)
