"""Unit tests for the unsupervised DiversifiedHMM estimator."""

import numpy as np
import pytest

from repro.core import DHMMConfig, DiversifiedHMM
from repro.exceptions import NotFittedError, ValidationError
from repro.hmm.emissions import CategoricalEmission, GaussianEmission
from repro.metrics.accuracy import one_to_one_accuracy
from repro.metrics.diversity import average_pairwise_bhattacharyya


def make_model(toy_data, alpha, seed=1, max_em_iter=10):
    emissions = GaussianEmission.random_init(5, toy_data.observations, seed=seed)
    return DiversifiedHMM(emissions, DHMMConfig(alpha=alpha, max_em_iter=max_em_iter), seed=seed)


class TestDiversifiedHMMFit:
    def test_fit_returns_history_and_sets_parameters(self, toy_data):
        model = make_model(toy_data, alpha=1.0)
        result = model.fit(toy_data.observations)
        assert len(result.history) == result.n_iter
        assert model.transmat_.shape == (5, 5)
        assert np.allclose(model.transmat_.sum(axis=1), 1.0)
        assert np.isclose(model.startprob_.sum(), 1.0)

    def test_alpha_zero_log_likelihood_is_monotone(self, toy_data):
        model = make_model(toy_data, alpha=0.0)
        result = model.fit(toy_data.observations)
        assert np.all(np.diff(result.history) >= -1e-6)

    def test_fit_improves_score_over_iterations(self, toy_data):
        model = make_model(toy_data, alpha=1.0)
        result = model.fit(toy_data.observations)
        assert result.history[-1] > result.history[0]

    def test_alpha_zero_equals_plain_hmm_trainer(self, toy_data):
        # With alpha = 0 the dHMM must be *exactly* the classical Baum-Welch
        # HMM (same updates, same result for the same initialization).
        from repro.hmm.baum_welch import BaumWelchTrainer
        from repro.hmm.model import HMM

        seed = 3
        emissions = GaussianEmission.random_init(5, toy_data.observations, seed=seed)
        dhmm = DiversifiedHMM(
            emissions.copy(), DHMMConfig(alpha=0.0, max_em_iter=5), seed=seed
        )
        dhmm.fit(toy_data.observations)

        rng = np.random.default_rng(seed)
        ref_emissions = emissions.copy()
        ref_emissions.initialize_random(toy_data.observations, rng)
        reference = HMM.random_init(ref_emissions, seed=rng)
        BaumWelchTrainer(max_iter=5, tol=1e-4).fit(reference, toy_data.observations)

        assert np.allclose(dhmm.transmat_, reference.transmat)
        assert np.allclose(dhmm.startprob_, reference.startprob)

    def test_diversity_prior_increases_transition_diversity(self, flat_toy_data):
        hmm = make_model(flat_toy_data, alpha=0.0, seed=2, max_em_iter=15)
        dhmm = make_model(flat_toy_data, alpha=2.0, seed=2, max_em_iter=15)
        hmm.fit(flat_toy_data.observations)
        dhmm.fit(flat_toy_data.observations)
        assert average_pairwise_bhattacharyya(dhmm.transmat_) >= average_pairwise_bhattacharyya(
            hmm.transmat_
        ) - 1e-6

    def test_accuracy_above_chance_on_toy_data(self, toy_data):
        model = make_model(toy_data, alpha=1.0, max_em_iter=15)
        model.fit(toy_data.observations)
        predictions = model.predict(toy_data.observations)
        acc = one_to_one_accuracy(toy_data.states, predictions, n_states=5)
        assert acc > 0.4  # chance is 0.2

    def test_works_with_categorical_emissions(self, tiny_pos_corpus):
        emissions = CategoricalEmission.random_init(
            tiny_pos_corpus.n_tags, tiny_pos_corpus.vocabulary_size, seed=0
        )
        model = DiversifiedHMM(emissions, DHMMConfig(alpha=1.0, max_em_iter=3), seed=0)
        result = model.fit(tiny_pos_corpus.words)
        assert np.isfinite(result.log_likelihood)
        predictions = model.predict(tiny_pos_corpus.words)
        assert len(predictions) == tiny_pos_corpus.n_sentences

    def test_empty_sequences_raise(self, toy_data):
        model = make_model(toy_data, alpha=1.0)
        with pytest.raises(ValidationError):
            model.fit([])


class TestDiversifiedHMMInference:
    def test_predict_before_fit_raises(self, toy_data):
        model = make_model(toy_data, alpha=1.0)
        with pytest.raises(NotFittedError):
            model.predict(toy_data.observations)
        with pytest.raises(NotFittedError):
            _ = model.transmat_

    def test_predict_single_matches_predict(self, toy_data):
        model = make_model(toy_data, alpha=1.0)
        model.fit(toy_data.observations)
        seq = toy_data.observations[0]
        assert np.array_equal(model.predict_single(seq), model.predict([seq])[0])

    def test_score_is_finite(self, toy_data):
        model = make_model(toy_data, alpha=1.0)
        model.fit(toy_data.observations)
        assert np.isfinite(model.score(toy_data.observations))

    def test_log_posterior_objective_adds_prior(self, toy_data):
        model = make_model(toy_data, alpha=1.0)
        model.fit(toy_data.observations)
        likelihood = model.score(toy_data.observations)
        objective = model.log_posterior_objective(toy_data.observations)
        # The DPP log prior is non-positive, so MAP objective <= likelihood.
        assert objective <= likelihood + 1e-9

    def test_reproducible_given_seed(self, toy_data):
        a = make_model(toy_data, alpha=1.0, seed=11, max_em_iter=5)
        b = make_model(toy_data, alpha=1.0, seed=11, max_em_iter=5)
        a.fit(toy_data.observations)
        b.fit(toy_data.observations)
        assert np.allclose(a.transmat_, b.transmat_)
        assert np.allclose(a.startprob_, b.startprob_)

    def test_alpha_property(self, toy_data):
        assert make_model(toy_data, alpha=7.0).alpha == 7.0
        assert make_model(toy_data, alpha=7.0).n_states == 5
