"""Unit tests for step-size selection."""

import numpy as np
import pytest

from repro.optim.line_search import AdaptiveStepController, backtracking_step
from repro.optim.simplex import project_to_simplex


class TestBacktrackingStep:
    def test_finds_improving_step_on_quadratic(self):
        objective = lambda x: -float(np.sum((x - 0.5) ** 2))
        project = lambda x: x
        x0 = np.array([0.0, 0.0])
        grad = -2 * (x0 - 0.5)
        new, step, improved = backtracking_step(objective, project, x0, grad)
        assert improved
        assert step > 0
        assert objective(new) > objective(x0)

    def test_returns_current_point_when_no_improvement_possible(self):
        objective = lambda x: -float(np.sum(x**2))
        project = lambda x: x
        x0 = np.array([0.0, 0.0])  # already optimal
        grad = np.array([0.0, 0.0])
        new, step, improved = backtracking_step(objective, project, x0, grad)
        assert not improved
        assert step == 0.0
        assert np.allclose(new, x0)

    def test_respects_projection(self):
        objective = lambda x: float(x[0])
        x0 = project_to_simplex(np.array([0.5, 0.5]))
        grad = np.array([100.0, 0.0])
        new, _, improved = backtracking_step(objective, project_to_simplex, x0, grad)
        assert improved
        assert np.isclose(new.sum(), 1.0)

    def test_invalid_parameters_raise(self):
        f = lambda x: 0.0
        p = lambda x: x
        with pytest.raises(ValueError):
            backtracking_step(f, p, np.zeros(2), np.zeros(2), initial_step=-1.0)
        with pytest.raises(ValueError):
            backtracking_step(f, p, np.zeros(2), np.zeros(2), shrink=1.5)


class TestAdaptiveStepController:
    def test_success_grows_step(self):
        c = AdaptiveStepController(initial_step=1.0, growth=2.0)
        c.report_success()
        assert c.step == 2.0

    def test_failure_shrinks_step(self):
        c = AdaptiveStepController(initial_step=1.0, shrink=0.25)
        c.report_failure()
        assert c.step == 0.25

    def test_step_is_clamped(self):
        c = AdaptiveStepController(initial_step=1.0, max_step=1.5, growth=2.0, min_step=0.5)
        c.report_success()
        assert c.step == 1.5
        for _ in range(10):
            c.report_failure()
        assert c.step == 0.5

    def test_reset(self):
        c = AdaptiveStepController(initial_step=0.3)
        c.report_success()
        c.reset()
        assert c.step == 0.3

    def test_invalid_configuration_raises(self):
        with pytest.raises(ValueError):
            AdaptiveStepController(initial_step=0.0)
        with pytest.raises(ValueError):
            AdaptiveStepController(growth=0.9)
        with pytest.raises(ValueError):
            AdaptiveStepController(shrink=1.0)
