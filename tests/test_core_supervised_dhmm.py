"""Unit tests for the supervised diversified HMM."""

import numpy as np
import pytest

from repro.core import DHMMConfig, SupervisedDiversifiedHMM
from repro.datasets.ocr import N_LETTERS, N_PIXELS
from repro.dpp.log_det import dpp_log_prior
from repro.exceptions import NotFittedError, ValidationError
from repro.metrics.accuracy import sequence_accuracy
from repro.metrics.diversity import average_pairwise_bhattacharyya


@pytest.fixture(scope="module")
def fitted_dhmm(tiny_ocr_dataset):
    model = SupervisedDiversifiedHMM(
        N_LETTERS, N_PIXELS, config=DHMMConfig(alpha=10.0, alpha_anchor=1e4)
    )
    model.fit(tiny_ocr_dataset.images, tiny_ocr_dataset.labels)
    return model


class TestSupervisedDiversifiedHMM:
    def test_fit_produces_valid_transition_matrix(self, fitted_dhmm):
        assert fitted_dhmm.transmat_.shape == (N_LETTERS, N_LETTERS)
        assert np.allclose(fitted_dhmm.transmat_.sum(axis=1), 1.0)
        assert np.all(fitted_dhmm.transmat_ >= 0)

    def test_refined_matrix_is_at_least_as_diverse_as_counts(self, fitted_dhmm):
        # The likelihood and anchor terms of Eq. (8) are both maximized
        # exactly at A0, so any ascent of the MAP objective must increase
        # the DPP log-det prior — the paper's own diversity measure.
        assert dpp_log_prior(fitted_dhmm.transmat_) >= dpp_log_prior(
            fitted_dhmm.base_transmat_
        ) - 1e-9
        # The average pairwise Bhattacharyya distance is only a proxy (the
        # log-det can grow while the mean pairwise distance dips slightly),
        # so it gets a looser bound.
        base_div = average_pairwise_bhattacharyya(fitted_dhmm.base_transmat_)
        refined_div = average_pairwise_bhattacharyya(fitted_dhmm.transmat_)
        assert refined_div >= base_div - 0.01

    def test_anchor_keeps_refinement_close_to_counts(self, tiny_ocr_dataset):
        model = SupervisedDiversifiedHMM(
            N_LETTERS, N_PIXELS, config=DHMMConfig(alpha=10.0, alpha_anchor=1e6)
        )
        model.fit(tiny_ocr_dataset.images, tiny_ocr_dataset.labels)
        assert np.max(np.abs(model.transmat_ - model.base_transmat_)) < 0.05

    def test_alpha_zero_keeps_count_estimate_exactly(self, tiny_ocr_dataset):
        model = SupervisedDiversifiedHMM(N_LETTERS, N_PIXELS, config=DHMMConfig(alpha=0.0))
        model.fit(tiny_ocr_dataset.images, tiny_ocr_dataset.labels)
        assert np.allclose(model.transmat_, model.base_transmat_)

    def test_training_accuracy_above_chance(self, fitted_dhmm, tiny_ocr_dataset):
        predictions = fitted_dhmm.predict(tiny_ocr_dataset.images)
        acc = sequence_accuracy(tiny_ocr_dataset.labels, predictions)
        assert acc > 0.3

    def test_predictions_match_sequence_lengths(self, fitted_dhmm, tiny_ocr_dataset):
        predictions = fitted_dhmm.predict(tiny_ocr_dataset.images[:5])
        for pred, img in zip(predictions, tiny_ocr_dataset.images[:5]):
            assert pred.shape[0] == img.shape[0]

    def test_score_is_finite(self, fitted_dhmm, tiny_ocr_dataset):
        assert np.isfinite(fitted_dhmm.score(tiny_ocr_dataset.images[:5]))

    def test_predict_before_fit_raises(self):
        model = SupervisedDiversifiedHMM(N_LETTERS, N_PIXELS)
        with pytest.raises(NotFittedError):
            model.predict([np.zeros((2, N_PIXELS))])

    def test_mismatched_sequences_and_labels_raise(self, tiny_ocr_dataset):
        model = SupervisedDiversifiedHMM(N_LETTERS, N_PIXELS)
        with pytest.raises(ValidationError):
            model.fit(tiny_ocr_dataset.images[:3], tiny_ocr_dataset.labels[:2])

    def test_requires_emissions_or_feature_count(self):
        with pytest.raises(ValidationError):
            SupervisedDiversifiedHMM(N_LETTERS)
        with pytest.raises(ValidationError):
            SupervisedDiversifiedHMM(1, N_PIXELS)

    def test_refinement_result_is_exposed(self, fitted_dhmm):
        assert fitted_dhmm.refinement_result_ is not None
        assert np.isfinite(fitted_dhmm.refinement_result_.objective)
