"""Unit tests for the synthetic WSJ-like PoS corpus generator."""

import numpy as np
import pytest

from repro.datasets.pos import generate_wsj_like_corpus
from repro.datasets.tags import N_REDUCED_TAGS, tag_frequency_vector
from repro.exceptions import ValidationError
from repro.metrics.diversity import average_pairwise_bhattacharyya


class TestGenerateWsjLikeCorpus:
    def test_dimensions(self, tiny_pos_corpus):
        corpus = tiny_pos_corpus
        assert corpus.n_sentences == 60
        assert corpus.n_tags == N_REDUCED_TAGS
        assert corpus.vocabulary_size == 300
        assert len(corpus.words) == len(corpus.tags)

    def test_words_and_tags_are_parallel(self, tiny_pos_corpus):
        for words, tags in zip(tiny_pos_corpus.words, tiny_pos_corpus.tags):
            assert len(words) == len(tags)

    def test_symbols_in_range(self, tiny_pos_corpus):
        corpus = tiny_pos_corpus
        for words, tags in zip(corpus.words, corpus.tags):
            assert words.min() >= 0 and words.max() < corpus.vocabulary_size
            assert tags.min() >= 0 and tags.max() < corpus.n_tags

    def test_sentence_lengths_respect_bounds(self, tiny_pos_corpus):
        lengths = [len(s) for s in tiny_pos_corpus.words]
        assert min(lengths) >= 2
        assert max(lengths) <= 30

    def test_generating_parameters_are_stored_and_stochastic(self, tiny_pos_corpus):
        corpus = tiny_pos_corpus
        assert np.isclose(corpus.startprob.sum(), 1.0)
        assert np.allclose(corpus.transmat.sum(axis=1), 1.0)
        assert np.allclose(corpus.emission_probs.sum(axis=1), 1.0)

    def test_tag_marginals_are_skewed_like_table2(self):
        corpus = generate_wsj_like_corpus(
            n_sentences=400, vocabulary_size=800, mean_length=12, seed=0
        )
        hist = corpus.tag_histogram()
        target = tag_frequency_vector()
        # The four most frequent groups of Table 2 should also be among the
        # most frequent groups of the synthetic corpus.
        top_synthetic = set(np.argsort(hist)[::-1][:6].tolist())
        top_table = set(np.argsort(target)[::-1][:4].tolist())
        assert top_table <= top_synthetic

    def test_transition_rows_are_diverse(self, tiny_pos_corpus):
        assert average_pairwise_bhattacharyya(tiny_pos_corpus.transmat) > 0.2

    def test_word_histogram_has_long_tail(self):
        corpus = generate_wsj_like_corpus(
            n_sentences=300, vocabulary_size=500, mean_length=12, seed=1
        )
        hist = np.sort(corpus.word_histogram())[::-1]
        top_decile_share = hist[:50].sum() / hist.sum()
        assert top_decile_share > 0.4

    def test_reproducible_with_seed(self):
        a = generate_wsj_like_corpus(n_sentences=20, vocabulary_size=200, seed=3)
        b = generate_wsj_like_corpus(n_sentences=20, vocabulary_size=200, seed=3)
        assert all(np.array_equal(x, y) for x, y in zip(a.words, b.words))

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValidationError):
            generate_wsj_like_corpus(n_sentences=0)
        with pytest.raises(ValidationError):
            generate_wsj_like_corpus(vocabulary_size=10)
        with pytest.raises(ValidationError):
            generate_wsj_like_corpus(min_length=10, max_length=5)
        with pytest.raises(ValidationError):
            generate_wsj_like_corpus(ambiguity=1.5)

    def test_token_count_property(self, tiny_pos_corpus):
        assert tiny_pos_corpus.n_tokens == sum(len(s) for s in tiny_pos_corpus.words)
