"""Tests for the toy experiment harnesses (Fig. 2-5, Table 1)."""

import numpy as np
import pytest

from repro.experiments.toy import run_sigma_sweep, run_toy_comparison


@pytest.fixture(scope="module")
def small_comparison():
    return run_toy_comparison(
        alpha=1.0, n_sequences=60, sequence_length=6, sigma=1.5, max_em_iter=8, seed=0
    )


class TestRunToyComparison:
    def test_result_contains_both_models(self, small_comparison):
        assert small_comparison.hmm.alpha == 0.0
        assert small_comparison.dhmm.alpha == 1.0

    def test_accuracies_in_unit_interval(self, small_comparison):
        assert 0.0 <= small_comparison.hmm_accuracy <= 1.0
        assert 0.0 <= small_comparison.dhmm_accuracy <= 1.0

    def test_histograms_cover_all_observations(self, small_comparison):
        total = small_comparison.dataset.n_sequences * 6
        assert small_comparison.true_histogram.sum() == total
        assert small_comparison.hmm_histogram.sum() == total
        assert small_comparison.dhmm_histogram.sum() == total

    def test_dhmm_diversity_not_below_hmm(self, small_comparison):
        assert small_comparison.dhmm_diversity >= small_comparison.hmm_diversity - 0.05

    def test_summary_rows_structure(self, small_comparison):
        rows = small_comparison.summary_rows()
        assert [row[0] for row in rows] == ["ground-truth", "HMM", "dHMM"]
        assert rows[0][1] == 1.0

    def test_easy_regime_reaches_high_accuracy(self):
        result = run_toy_comparison(
            alpha=1.0, n_sequences=60, sequence_length=6, sigma=0.025, max_em_iter=10, seed=0
        )
        assert result.hmm_accuracy > 0.6
        assert result.dhmm_accuracy > 0.6


class TestRunSigmaSweep:
    def test_sweep_shapes_and_ranges(self):
        sigmas = np.array([0.5, 2.0])
        sweep = run_sigma_sweep(
            sigmas=sigmas, alpha=1.0, n_runs=1, n_sequences=40, max_em_iter=5, seed=0
        )
        assert sweep.sigmas.shape == (2,)
        assert sweep.hmm_diversity.shape == (2,)
        assert sweep.dhmm_diversity.shape == (2,)
        assert np.all(sweep.hmm_n_states >= 1)
        assert np.all(sweep.dhmm_n_states <= 5)
        assert np.all((sweep.hmm_accuracy >= 0) & (sweep.hmm_accuracy <= 1))

    def test_dhmm_diversity_dominates_on_average(self):
        sigmas = np.array([2.0])
        sweep = run_sigma_sweep(
            sigmas=sigmas, alpha=2.0, n_runs=2, n_sequences=50, max_em_iter=8, seed=1
        )
        assert sweep.dhmm_diversity[0] >= sweep.hmm_diversity[0] - 0.02

    def test_true_diversity_is_positive_constant(self):
        sweep = run_sigma_sweep(
            sigmas=np.array([1.0]), alpha=1.0, n_runs=1, n_sequences=30, max_em_iter=3, seed=2
        )
        assert sweep.true_diversity > 0.0
