"""Scheduling core: policy ordering, starvation-freedom, EDF, warm-up."""

import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.core.config import ServingConfig
from repro.exceptions import ValidationError
from repro.hmm import HMM, CategoricalEmission
from repro.serving import ModelRegistry, Router, TaggingService
from repro.serving.scheduler import (
    EDFPolicy,
    FIFOPolicy,
    Request,
    WeightedFairPolicy,
    make_policy,
)


def _request(model=None, deadline=None, tag=None):
    return Request(
        kind="tag",
        sequence=np.zeros(1, dtype=np.int64),
        future=Future(),
        deadline=deadline,
        key=(model, 1) if model is not None else None,
        payload=tag,
    )


def _random_hmm(seed, n_states=4, n_symbols=8):
    rng = np.random.default_rng(seed)
    emissions = CategoricalEmission(rng.dirichlet(np.ones(n_symbols), size=n_states))
    return HMM(
        rng.dirichlet(np.ones(n_states)),
        rng.dirichlet(np.ones(n_states), size=n_states),
        emissions,
    )


class _GatedEmission(CategoricalEmission):
    """Emissions whose batched scoring blocks until released (see
    test_serving_service.py for the pattern)."""

    family = "abstract"

    def __init__(self, emission_probs):
        super().__init__(emission_probs)
        self.release = threading.Event()
        self.started = threading.Event()

    def log_likelihoods_batch(self, sequences):
        self.started.set()
        assert self.release.wait(timeout=30), "test forgot to release the gate"
        return super().log_likelihoods_batch(sequences)


def _gated_hmm(seed, n_states=4, n_symbols=8):
    rng = np.random.default_rng(seed)
    emissions = _GatedEmission(rng.dirichlet(np.ones(n_symbols), size=n_states))
    return HMM(
        rng.dirichlet(np.ones(n_states)),
        rng.dirichlet(np.ones(n_states), size=n_states),
        emissions,
    )


class TestPolicySelection:
    def test_default_config_selects_fifo(self):
        assert isinstance(make_policy(ServingConfig()), FIFOPolicy)

    def test_each_policy_is_constructible_from_config(self):
        assert isinstance(
            make_policy(ServingConfig(scheduling_policy="weighted_fair")),
            WeightedFairPolicy,
        )
        assert isinstance(
            make_policy(ServingConfig(scheduling_policy="edf")), EDFPolicy
        )

    def test_unknown_policy_rejected_by_config(self):
        with pytest.raises(ValidationError, match="scheduling_policy"):
            ServingConfig(scheduling_policy="priority")

    def test_bad_weights_rejected(self):
        with pytest.raises(ValidationError, match="positive"):
            ServingConfig(model_weights={"a": 0.0})
        with pytest.raises(ValidationError, match="positive"):
            WeightedFairPolicy({"a": -1.0})

    def test_service_exposes_policy_name(self):
        with TaggingService(
            _random_hmm(0), config=ServingConfig(scheduling_policy="edf")
        ) as service:
            assert service.scheduling_policy == "edf"


class TestFIFOPolicy:
    def test_arrival_order_and_limit(self):
        policy = FIFOPolicy()
        requests = [_request(tag=i) for i in range(10)]
        for request in requests:
            policy.push(request)
        assert len(policy) == 10
        first = policy.pop_batch(4)
        assert [r.payload for r in first] == [0, 1, 2, 3]
        assert [r.payload for r in policy.pop_batch(100)] == [4, 5, 6, 7, 8, 9]
        assert len(policy) == 0


class TestWeightedFairPolicy:
    def test_batch_shares_follow_weights(self):
        policy = WeightedFairPolicy({"a": 3.0, "b": 1.0})
        for i in range(10):
            policy.push(_request(model="a", tag=("a", i)))
        for i in range(10):
            policy.push(_request(model="b", tag=("b", i)))
        batch = policy.pop_batch(8)
        kinds = [r.payload[0] for r in batch]
        assert kinds.count("a") == 6 and kinds.count("b") == 2
        # arrival order preserved within each class
        assert [r.payload[1] for r in batch if r.payload[0] == "a"] == list(range(6))
        assert [r.payload[1] for r in batch if r.payload[0] == "b"] == [0, 1]

    def test_flooded_model_cannot_starve_the_other(self):
        policy = WeightedFairPolicy()
        for i in range(100):
            policy.push(_request(model="chatty", tag=("chatty", i)))
        policy.push(_request(model="quiet", tag=("quiet", 0)))
        batch = policy.pop_batch(8)
        assert ("quiet", 0) in [r.payload for r in batch]

    def test_fractional_weight_is_served_eventually(self):
        # weight 0.25 earns a slot every 4 rounds: delayed, never starved
        policy = WeightedFairPolicy({"slow": 0.25})
        for i in range(40):
            policy.push(_request(model="fast", tag=("fast", i)))
        for i in range(4):
            policy.push(_request(model="slow", tag=("slow", i)))
        popped = []
        while len(policy):
            popped.extend(r.payload for r in policy.pop_batch(8))
        assert len(popped) == 44
        assert popped.index(("slow", 0)) < len(popped) - 1  # not dead last
        # all slow requests eventually served, in order
        assert [p for p in popped if p[0] == "slow"] == [
            ("slow", i) for i in range(4)
        ]

    def test_single_model_degenerates_to_fifo(self):
        policy = WeightedFairPolicy()
        for i in range(6):
            policy.push(_request(tag=i))  # key=None -> one class
        assert [r.payload for r in policy.pop_batch(10)] == list(range(6))

    def test_tiny_weights_do_not_stall_batch_formation(self):
        """Regression: sub-unit weights used to spin ~1/weight credit rounds
        per popped request; the forced-progress step bounds it."""
        policy = WeightedFairPolicy({"a": 1e-9, "b": 1e-12})
        for i in range(6):
            policy.push(_request(model="a", tag=("a", i)))
            policy.push(_request(model="b", tag=("b", i)))
        batch = policy.pop_batch(12)
        assert len(batch) == 12 and len(policy) == 0
        # forced progress still favors the larger weight first
        assert batch[0].payload == ("a", 0)
        # per-class arrival order is preserved
        assert [r.payload[1] for r in batch if r.payload[0] == "b"] == list(range(6))


class TestEDFPolicy:
    def test_earliest_deadline_pops_first(self):
        policy = EDFPolicy()
        policy.push(_request(deadline=30.0, tag="late"))
        policy.push(_request(deadline=5.0, tag="urgent"))
        policy.push(_request(deadline=10.0, tag="soon"))
        assert [r.payload for r in policy.pop_batch(3)] == ["urgent", "soon", "late"]

    def test_deadline_free_requests_sort_last_in_arrival_order(self):
        policy = EDFPolicy()
        policy.push(_request(tag="free-1"))
        policy.push(_request(deadline=1.0, tag="due"))
        policy.push(_request(tag="free-2"))
        assert [r.payload for r in policy.pop_batch(3)] == ["due", "free-1", "free-2"]

    def test_no_deadlines_degenerates_to_fifo(self):
        policy = EDFPolicy()
        for i in range(5):
            policy.push(_request(tag=i))
        assert [r.payload for r in policy.pop_batch(5)] == list(range(5))


class TestPolicyEquivalence:
    """Every policy serves every request with correct results."""

    @pytest.mark.parametrize("policy", ["fifo", "weighted_fair", "edf"])
    def test_results_identical_across_policies(self, policy):
        model = _random_hmm(0)
        _, sequences = model.sample_dataset(30, 10, seed=1)
        config = ServingConfig(scheduling_policy=policy)
        with TaggingService(model, config=config) as service:
            served = service.tag_many(sequences)
        expected = model.predict(sequences)
        for got, want in zip(served, expected):
            assert np.array_equal(got, want)


class TestEDFIntegration:
    def test_urgent_requests_are_served_first(self):
        """Hold the dispatcher inside a batch, queue requests with shuffled
        deadlines, then check completion order follows the deadlines."""
        model = _gated_hmm(0)
        _, sequences = model.sample_dataset(5, 8, seed=1)
        config = ServingConfig(
            max_batch_size=1, max_wait_ms=0.0, scheduling_policy="edf"
        )
        order: list[str] = []
        with TaggingService(model, config=config) as service:
            gate = service.submit_tag(sequences[0])
            assert model.emissions.started.wait(timeout=10)
            # deadlines far in the future (nothing expires), submitted in
            # non-deadline order
            late = service.submit_tag(sequences[1], deadline_ms=60_000.0)
            urgent = service.submit_tag(sequences[2], deadline_ms=10_000.0)
            soon = service.submit_tag(sequences[3], deadline_ms=30_000.0)
            for name, future in (
                ("late", late), ("urgent", urgent), ("soon", soon)
            ):
                future.add_done_callback(lambda _, name=name: order.append(name))
            model.emissions.release.set()
            for future in (gate, late, urgent, soon):
                future.result(timeout=10)
        assert order == ["urgent", "soon", "late"]


class TestWeightedFairIntegration:
    def test_quiet_model_served_despite_flood(self, tmp_path):
        """A flood on one model delays but never starves another: when the
        quiet model's requests resolve, almost all of the flood is still
        pending (FIFO would have drained the entire flood first)."""
        registry = ModelRegistry(tmp_path / "registry")
        registry.save("chatty", _random_hmm(0))
        registry.save("quiet", _random_hmm(9))
        _, sequences = _random_hmm(0).sample_dataset(44, 8, seed=1)

        # Hold the dispatcher inside the first (cold) model load while the
        # flood piles up behind it.
        release = threading.Event()
        loading = threading.Event()
        real_load = registry.load

        def gated_load(name, version=None):
            loading.set()
            assert release.wait(timeout=30)
            return real_load(name, version)

        registry.load = gated_load

        config = ServingConfig(
            max_batch_size=4, max_wait_ms=0.0, scheduling_policy="weighted_fair"
        )
        chatty_done_at_quiet_resolution: list[int] = []
        with Router(registry, config=config) as router:
            gate = router.submit_tag("chatty", sequences[0])
            assert loading.wait(timeout=10)
            chatty = [router.submit_tag("chatty", s) for s in sequences[1:41]]
            quiet = [router.submit_tag("quiet", s) for s in sequences[41:43]]
            quiet[-1].add_done_callback(
                # runs on the dispatcher thread at resolution time: counts
                # how many of the flood's requests were served before the
                # quiet model got its turn
                lambda _: chatty_done_at_quiet_resolution.append(
                    sum(f.done() for f in chatty)
                )
            )
            release.set()
            for future in [gate, *chatty, *quiet]:
                future.result(timeout=30)
        # round-robin batches of 4 mix both models, so the quiet requests
        # resolved while the vast majority of the flood still waited
        assert chatty_done_at_quiet_resolution[0] <= 10


class TestWarmUp:
    @pytest.fixture
    def registry(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.save("alpha", _random_hmm(0))
        registry.save("beta", _random_hmm(9))
        registry.save("beta", _random_hmm(10))
        return registry

    def test_warm_up_preloads_before_traffic(self, registry):
        with Router(registry) as router:
            report = router.warm_up(["alpha", "beta"])
            assert report.ok
            assert report.loaded == [("alpha", 1), ("beta", 2)]
            assert set(router.loaded_models()) == {("alpha", 1), ("beta", 2)}
            assert router.stats.snapshot()["n_model_loads"] == 2
            # traffic hits warm executors: no further loads
            _, sequences = _random_hmm(0).sample_dataset(4, 8, seed=1)
            router.tag_many("alpha", sequences)
            router.tag_many("beta", sequences)
            stats = router.stats.snapshot()
        assert stats["n_model_loads"] == 2
        # warm-up itself never touched an engine
        assert stats["n_requests"] == 8

    def test_warm_up_pins_explicit_versions(self, registry):
        with Router(registry) as router:
            assert list(router.warm_up([("beta", 1)])) == [("beta", 1)]
            assert router.loaded_models() == [("beta", 1)]

    def test_warm_up_continues_past_broken_models(self, registry):
        """One bad entry lands in .errors; the healthy fleet still loads."""
        with Router(registry) as router:
            report = router.warm_up(["ghost", "alpha", ("beta", 5)])
            assert not report.ok
            assert report.loaded == [("alpha", 1)]
            assert isinstance(report.errors["ghost"], ValidationError)
            assert isinstance(report.errors["beta"], ValidationError)
            assert router.loaded_models() == [("alpha", 1)]
