"""Unit tests for the Gaussian, Categorical and Bernoulli emission families."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.hmm.emissions import BernoulliEmission, CategoricalEmission, GaussianEmission


class TestGaussianEmission:
    def test_log_likelihood_matches_scipy(self):
        from scipy.stats import norm

        em = GaussianEmission(np.array([0.0, 2.0]), np.array([1.0, 4.0]))
        seq = np.array([0.5, -1.0, 3.0])
        log_obs = em.log_likelihoods(seq)
        for t, y in enumerate(seq):
            assert np.isclose(log_obs[t, 0], norm.logpdf(y, 0.0, 1.0))
            assert np.isclose(log_obs[t, 1], norm.logpdf(y, 2.0, 2.0))

    def test_m_step_recovers_weighted_means(self):
        em = GaussianEmission(np.zeros(2), np.ones(2))
        seq = np.array([1.0, 1.0, 5.0, 5.0])
        post = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0], [0.0, 1.0]])
        em.m_step([seq], [post])
        assert np.allclose(em.means, [1.0, 5.0])
        assert np.all(em.variances >= 1e-6)

    def test_m_step_variance_floor(self):
        em = GaussianEmission(np.zeros(1), np.ones(1))
        seq = np.array([2.0, 2.0, 2.0])
        post = np.ones((3, 1))
        em.m_step([seq], [post])
        assert em.variances[0] >= 1e-6

    def test_sample_is_float(self):
        em = GaussianEmission(np.array([3.0]), np.array([0.01]))
        value = em.sample(0, np.random.default_rng(0))
        assert isinstance(value, float)
        assert 2.0 < value < 4.0

    def test_random_init_matches_data_scale(self):
        rng = np.random.default_rng(0)
        sequences = [rng.normal(100.0, 1.0, size=20) for _ in range(5)]
        em = GaussianEmission.random_init(3, sequences, seed=0)
        assert np.all(np.abs(em.means - 100.0) < 20.0)

    def test_copy_is_independent(self):
        em = GaussianEmission(np.array([1.0, 2.0]), np.array([1.0, 1.0]))
        clone = em.copy()
        clone.means[0] = 99.0
        assert em.means[0] == 1.0

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValidationError):
            GaussianEmission(np.zeros(2), np.ones(3))

    def test_rejects_non_positive_variance(self):
        with pytest.raises(ValidationError):
            GaussianEmission(np.zeros(2), np.array([1.0, 0.0]))

    def test_rejects_2d_sequence(self):
        em = GaussianEmission(np.zeros(2), np.ones(2))
        with pytest.raises(ValidationError):
            em.log_likelihoods(np.zeros((3, 2)))


class TestCategoricalEmission:
    def test_log_likelihood_lookup(self):
        B = np.array([[0.7, 0.3], [0.2, 0.8]])
        em = CategoricalEmission(B)
        log_obs = em.log_likelihoods(np.array([0, 1, 1]))
        assert np.allclose(np.exp(log_obs[0]), [0.7, 0.2])
        assert np.allclose(np.exp(log_obs[1]), [0.3, 0.8])

    def test_m_step_recovers_empirical_frequencies(self):
        em = CategoricalEmission(np.full((2, 3), 1.0 / 3.0))
        seq = np.array([0, 0, 1, 2])
        post = np.array([[1.0, 0], [1.0, 0], [0, 1.0], [0, 1.0]])
        em.m_step([seq], [post])
        assert np.allclose(em.emission_probs[0], [1.0, 0.0, 0.0])
        assert np.allclose(em.emission_probs[1], [0.0, 0.5, 0.5])

    def test_sample_respects_support(self):
        em = CategoricalEmission(np.array([[0.0, 1.0, 0.0]]))
        rng = np.random.default_rng(0)
        assert all(em.sample(0, rng) == 1 for _ in range(5))

    def test_random_init_rows_are_distributions(self):
        em = CategoricalEmission.random_init(4, 10, seed=0)
        assert em.emission_probs.shape == (4, 10)
        assert np.allclose(em.emission_probs.sum(axis=1), 1.0)

    def test_rejects_out_of_range_symbol(self):
        em = CategoricalEmission(np.array([[0.5, 0.5]]))
        with pytest.raises(ValidationError):
            em.log_likelihoods(np.array([0, 2]))

    def test_rejects_non_stochastic_rows(self):
        with pytest.raises(ValidationError):
            CategoricalEmission(np.array([[0.5, 0.2]]))

    def test_copy_is_independent(self):
        em = CategoricalEmission(np.array([[0.5, 0.5]]))
        clone = em.copy()
        clone.emission_probs[0, 0] = 0.9
        assert em.emission_probs[0, 0] == 0.5


class TestBernoulliEmission:
    def test_log_likelihood_factorizes_over_pixels(self):
        probs = np.array([[0.9, 0.1], [0.5, 0.5]])
        em = BernoulliEmission(probs)
        obs = np.array([[1.0, 0.0]])
        log_obs = em.log_likelihoods(obs)
        expected_state0 = np.log(0.9) + np.log(0.9)
        expected_state1 = np.log(0.5) + np.log(0.5)
        assert np.isclose(log_obs[0, 0], expected_state0, atol=1e-3)
        assert np.isclose(log_obs[0, 1], expected_state1, atol=1e-3)

    def test_m_step_moves_towards_observed_pixel_rates(self):
        em = BernoulliEmission(np.full((1, 2), 0.5))
        obs = np.array([[1.0, 0.0], [1.0, 0.0], [1.0, 1.0]])
        post = np.ones((3, 1))
        em.m_step([obs], [post])
        assert em.pixel_probs[0, 0] > 0.9
        assert np.isclose(em.pixel_probs[0, 1], 1.0 / 3.0, atol=1e-3)

    def test_fit_supervised_with_smoothing(self):
        em = BernoulliEmission(np.full((2, 2), 0.5))
        obs = [np.array([[1.0, 1.0], [0.0, 0.0]])]
        labels = [np.array([0, 1])]
        em.fit_supervised(obs, labels, pseudocount=1.0)
        assert em.pixel_probs[0, 0] > 0.5
        assert em.pixel_probs[1, 0] < 0.5

    def test_sample_is_binary_vector(self):
        em = BernoulliEmission(np.array([[0.99, 0.01]]))
        sample = em.sample(0, np.random.default_rng(0))
        assert sample.shape == (2,)
        assert set(np.unique(sample)) <= {0.0, 1.0}

    def test_probabilities_are_clipped_away_from_extremes(self):
        em = BernoulliEmission(np.array([[0.0, 1.0]]))
        assert em.pixel_probs[0, 0] > 0.0
        assert em.pixel_probs[0, 1] < 1.0

    def test_rejects_out_of_range_probabilities(self):
        with pytest.raises(ValidationError):
            BernoulliEmission(np.array([[1.5, 0.5]]))

    def test_rejects_wrong_feature_count(self):
        em = BernoulliEmission(np.full((2, 3), 0.5))
        with pytest.raises(ValidationError):
            em.log_likelihoods(np.zeros((4, 2)))

    def test_copy_is_independent(self):
        em = BernoulliEmission(np.full((1, 2), 0.5))
        clone = em.copy()
        clone.pixel_probs[0, 0] = 0.9
        assert em.pixel_probs[0, 0] == 0.5
