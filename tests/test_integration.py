"""End-to-end integration tests spanning multiple subsystems."""

import numpy as np
import pytest

from repro import (
    DHMMConfig,
    DiversifiedHMM,
    GaussianEmission,
    HMM,
    SupervisedDiversifiedHMM,
)
from repro.baselines import SupervisedHMMClassifier
from repro.datasets.ocr import N_LETTERS, N_PIXELS
from repro.datasets.splits import train_test_split_indices
from repro.hmm.emissions import CategoricalEmission
from repro.metrics.accuracy import one_to_one_accuracy, sequence_accuracy
from repro.metrics.diversity import average_pairwise_bhattacharyya


class TestUnsupervisedPipeline:
    def test_generate_fit_decode_evaluate_gaussian(self, toy_data):
        """The full unsupervised pipeline on the toy data recovers structure."""
        emissions = GaussianEmission.random_init(5, toy_data.observations, seed=0)
        model = DiversifiedHMM(emissions, DHMMConfig(alpha=1.0, max_em_iter=15), seed=0)
        model.fit(toy_data.observations)
        predictions = model.predict(toy_data.observations)
        accuracy = one_to_one_accuracy(toy_data.states, predictions, n_states=5)
        assert accuracy > 0.5
        # Learned emissions should land near the true means 1..5 (up to order).
        learned = np.sort(model.emissions_.means)
        assert np.all(np.abs(learned - np.arange(1, 6)) < 1.0)

    def test_generate_fit_decode_evaluate_categorical(self, tiny_pos_corpus):
        """The categorical pipeline runs end to end and beats chance."""
        corpus = tiny_pos_corpus
        emissions = CategoricalEmission.random_init(corpus.n_tags, corpus.vocabulary_size, seed=1)
        model = DiversifiedHMM(emissions, DHMMConfig(alpha=10.0, max_em_iter=6), seed=1)
        model.fit(corpus.words)
        predictions = model.predict(corpus.words)
        accuracy = one_to_one_accuracy(corpus.tags, predictions, n_states=corpus.n_tags)
        assert accuracy > 1.0 / corpus.n_tags

    def test_dhmm_map_objective_beats_hmm_transition_prior_value(self, flat_toy_data):
        """With the same init, the dHMM ends with a more diverse A than the HMM."""
        seed = 4
        emissions = GaussianEmission.random_init(5, flat_toy_data.observations, seed=seed)
        hmm = DiversifiedHMM(emissions.copy(), DHMMConfig(alpha=0.0, max_em_iter=10), seed=seed)
        dhmm = DiversifiedHMM(emissions.copy(), DHMMConfig(alpha=3.0, max_em_iter=10), seed=seed)
        hmm.fit(flat_toy_data.observations)
        dhmm.fit(flat_toy_data.observations)
        assert average_pairwise_bhattacharyya(dhmm.transmat_) >= (
            average_pairwise_bhattacharyya(hmm.transmat_) - 1e-6
        )


class TestSupervisedPipeline:
    def test_train_test_generalization(self, tiny_ocr_dataset):
        """Supervised dHMM generalizes from a train split to unseen words."""
        data = tiny_ocr_dataset
        train_idx, test_idx = train_test_split_indices(data.n_words, 0.25, seed=0)
        train_x = [data.images[i] for i in train_idx]
        train_y = [data.labels[i] for i in train_idx]
        test_x = [data.images[i] for i in test_idx]
        test_y = [data.labels[i] for i in test_idx]

        dhmm = SupervisedDiversifiedHMM(
            N_LETTERS, N_PIXELS, config=DHMMConfig(alpha=10.0, alpha_anchor=1e4)
        ).fit(train_x, train_y)
        hmm = SupervisedHMMClassifier(N_LETTERS, N_PIXELS).fit(train_x, train_y)

        dhmm_acc = sequence_accuracy(test_y, dhmm.predict(test_x))
        hmm_acc = sequence_accuracy(test_y, hmm.predict(test_x))
        assert dhmm_acc > 0.3
        assert dhmm_acc >= hmm_acc - 0.05

    def test_sampled_data_roundtrip(self):
        """Sampling from a known HMM and re-estimating it recovers parameters."""
        emissions = CategoricalEmission(
            np.array([[0.85, 0.1, 0.05], [0.05, 0.15, 0.8]])
        )
        truth = HMM(np.array([0.4, 0.6]), np.array([[0.9, 0.1], [0.2, 0.8]]), emissions)
        states, observations = truth.sample_dataset(150, 20, seed=0)

        from repro.hmm.supervised import estimate_supervised_parameters

        startprob, transmat = estimate_supervised_parameters(states, 2)
        assert np.allclose(transmat, truth.transmat, atol=0.05)
        assert abs(startprob[0] - 0.4) < 0.15


class TestPublicApi:
    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_quickstart_docstring_flow(self, toy_data):
        """The README/docstring quickstart snippet actually runs."""
        from repro import DHMMConfig, DiversifiedHMM
        from repro.hmm import GaussianEmission

        model = DiversifiedHMM(
            GaussianEmission.random_init(5, toy_data.observations, seed=1),
            DHMMConfig(alpha=1.0, max_em_iter=3),
            seed=1,
        )
        model.fit(toy_data.observations)
        labels = model.predict(toy_data.observations)
        assert len(labels) == toy_data.n_sequences
