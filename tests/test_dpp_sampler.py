"""Unit tests for DPP / k-DPP sampling and greedy MAP inference."""

import numpy as np
import pytest

from repro.dpp.kdpp import KDPP
from repro.dpp.map_inference import greedy_map_dpp
from repro.dpp.sampler import sample_dpp, sample_kdpp
from repro.exceptions import ValidationError


def near_duplicate_kernel():
    """Items 0 and 1 nearly identical; item 2 orthogonal; item 3 orthogonal."""
    features = np.array(
        [
            [1.0, 0.0, 0.0],
            [0.999, 0.02, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
        ]
    )
    return features @ features.T * 2.0


class TestSampleDpp:
    def test_samples_are_valid_subsets(self):
        L = near_duplicate_kernel()
        for seed in range(10):
            sample = sample_dpp(L, seed=seed)
            assert len(sample) == len(set(sample))
            assert all(0 <= i < 4 for i in sample)

    def test_empty_kernel_of_tiny_eigenvalues_often_returns_empty(self):
        L = np.eye(3) * 1e-9
        samples = [sample_dpp(L, seed=s) for s in range(20)]
        assert any(len(s) == 0 for s in samples)

    def test_rejects_asymmetric_kernel(self):
        with pytest.raises(ValidationError):
            sample_dpp(np.array([[1.0, 0.3], [0.0, 1.0]]))

    def test_repulsion_of_near_duplicates(self):
        # Items 0 and 1 are near-duplicates, so they should co-occur far less
        # often than the independent (Bernoulli) baseline would suggest.
        L = near_duplicate_kernel()
        co_occurrences = 0
        n_draws = 300
        for seed in range(n_draws):
            sample = set(sample_dpp(L, seed=seed))
            if {0, 1} <= sample:
                co_occurrences += 1
        assert co_occurrences / n_draws < 0.05


class TestSampleKdpp:
    def test_sample_has_requested_size(self):
        L = near_duplicate_kernel()
        for seed in range(10):
            assert len(sample_kdpp(L, 2, seed=seed)) == 2

    def test_zero_size_sample(self):
        assert sample_kdpp(near_duplicate_kernel(), 0, seed=0) == []

    def test_rejects_too_large_k(self):
        with pytest.raises(ValidationError):
            sample_kdpp(np.eye(3), 5)

    def test_empirical_frequencies_match_kdpp_probabilities(self):
        # With a tiny ground set the empirical subset frequencies should be
        # close to the exact k-DPP probabilities.
        rng = np.random.default_rng(0)
        M = rng.normal(size=(4, 4))
        L = M @ M.T + np.eye(4)
        k = 2
        kdpp = KDPP(L, k)
        counts: dict[tuple[int, ...], int] = {}
        n_draws = 800
        for seed in range(n_draws):
            subset = tuple(sample_kdpp(L, k, seed=seed))
            counts[subset] = counts.get(subset, 0) + 1
        for subset, count in counts.items():
            expected = np.exp(kdpp.log_probability(list(subset)))
            assert abs(count / n_draws - expected) < 0.08


class TestGreedyMapDpp:
    def test_prefers_diverse_items(self):
        L = near_duplicate_kernel()
        selected = greedy_map_dpp(L, max_size=3)
        # It should never pick both near-duplicates 0 and 1.
        assert not {0, 1} <= set(selected)

    def test_respects_max_size(self):
        L = near_duplicate_kernel()
        assert len(greedy_map_dpp(L, max_size=1)) == 1

    def test_returns_sorted_indices(self):
        L = near_duplicate_kernel()
        selected = greedy_map_dpp(L)
        assert selected == sorted(selected)

    def test_empty_when_max_size_zero(self):
        assert greedy_map_dpp(near_duplicate_kernel(), max_size=0) == []

    def test_rejects_non_square(self):
        with pytest.raises(ValidationError):
            greedy_map_dpp(np.ones((2, 3)))
