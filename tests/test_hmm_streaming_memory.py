"""Streaming session memory bounds + tail-flush correctness.

Satellite regression suite for the long-sequence PR: fixed-lag streaming
sessions must hold O(lag) state no matter how many tokens flow through
them (a 100k-step session keeps a flat backpointer buffer), and the new
``peek_tail`` / ``decode_tail`` flush must reuse the stitching contract:
``finalized_labels + decode_tail()`` equals the full best path so far,
without closing the stream.
"""

import sys

import numpy as np
import pytest

from repro.hmm import HMM, CategoricalEmission
from repro.serving import StreamPool, StreamingDecoder, stream_decode


@pytest.fixture(scope="module")
def model():
    rng = np.random.default_rng(42)
    n_states, vocab = 4, 8
    pi = rng.dirichlet(np.ones(n_states))
    transmat = rng.dirichlet(np.ones(n_states), size=n_states)
    transmat = 0.7 * np.eye(n_states) + 0.3 * transmat
    transmat /= transmat.sum(axis=1, keepdims=True)
    emissions = CategoricalEmission(rng.dirichlet(np.ones(vocab), size=n_states))
    return HMM(pi, transmat, emissions)


class TestSessionBufferBounds:
    def test_single_session_buffer_flat_over_100k_steps(self, model):
        lag = 16
        session = model.stream(lag=lag)
        rng = np.random.default_rng(0)
        table = model.emissions.log_likelihoods(
            rng.integers(0, model.emissions.n_symbols, size=100_000)
        )
        max_bp = 0
        for t in range(table.shape[0]):
            session.step(table[t])
            max_bp = max(max_bp, len(session._bp))
        # backpointer window never exceeds the lag: O(lag), not O(T)
        assert max_bp <= lag
        session.finish()
        assert len(session._bp) == 0

    def test_batched_session_slots_stay_bounded(self, model):
        lags = (8, 32)
        session = model.stream_batch(lags=lags)
        rng = np.random.default_rng(1)
        tokens = rng.integers(0, model.emissions.n_symbols, size=(5000, 2))
        max_bp = [0, 0]
        for t in range(tokens.shape[0]):
            rows = model.emissions.log_likelihoods(tokens[t])
            session.step_many(rows, [0, 1])
            for i in range(2):
                max_bp[i] = max(max_bp[i], len(session._slot(i).bp))
        assert max_bp[0] <= lags[0]
        assert max_bp[1] <= lags[1]

    def test_lagless_decoder_without_history_stays_flat(self, model):
        # keep_history=False + no lag: nothing is finalized until finish(),
        # so the session window is the whole stream — but the *decoder*
        # must not also accumulate a per-step history on top of it.
        decoder = StreamingDecoder(model, lag=16, keep_history=False)
        rng = np.random.default_rng(2)
        for tok in rng.integers(0, model.emissions.n_symbols, size=20_000):
            decoder.push(int(tok))
        assert decoder._state.steps == [] or not decoder._state.keep_history
        assert sys.getsizeof(decoder._state.steps) < 10_000
        assert len(decoder._session._bp) <= 16

    def test_flat_buffer_regression_pinned_numbers(self, model):
        # Regression pin: the backpointer deque for lag L holds exactly
        # min(t, L) columns after t steps (pre-fix it grew without bound
        # when finalization lagged behind the stream).
        lag = 10
        session = model.stream(lag=lag)
        rng = np.random.default_rng(3)
        table = model.emissions.log_likelihoods(
            rng.integers(0, model.emissions.n_symbols, size=50)
        )
        for t in range(table.shape[0]):
            session.step(table[t])
            # steady state oscillates between lag-1 (just trimmed) and lag
            assert len(session._bp) <= min(t, lag)
            if t >= lag:
                assert len(session._bp) >= lag - 1


class TestTailFlush:
    def test_decode_tail_matches_finish(self, model):
        rng = np.random.default_rng(4)
        tokens = rng.integers(0, model.emissions.n_symbols, size=500)
        decoder = StreamingDecoder(model, lag=16, keep_history=False)
        for tok in tokens:
            decoder.push(int(tok))
        tail = decoder.decode_tail()
        result = decoder.finish()
        assert np.array_equal(tail, result.path)

    def test_decode_tail_is_non_destructive(self, model):
        rng = np.random.default_rng(5)
        tokens = rng.integers(0, model.emissions.n_symbols, size=300)
        reference = stream_decode(model, tokens, lag=8)
        decoder = StreamingDecoder(model, lag=8)
        for i, tok in enumerate(tokens):
            decoder.push(int(tok))
            if i % 50 == 0:
                decoder.decode_tail()  # peeking must not disturb the stream
        result = decoder.finish()
        assert np.array_equal(result.path, reference.path)

    def test_prefix_plus_tail_equals_best_path_so_far(self, model):
        rng = np.random.default_rng(6)
        tokens = rng.integers(0, model.emissions.n_symbols, size=400)
        decoder = StreamingDecoder(model, lag=12, keep_history=False)
        finalized: list[int] = []
        for i, tok in enumerate(tokens):
            step = decoder.push(int(tok))
            finalized.extend(state for _, state in step.finalized)
            if i in (100, 250):
                stitched = np.concatenate(
                    [
                        np.asarray(finalized, dtype=np.int64),
                        decoder.decode_tail(),
                    ]
                )
                assert stitched.shape == (i + 1,)
                # the finalized prefix is exact Viterbi output; the tail is
                # the current best completion — together they cover every
                # token seen so far with valid states
                assert stitched.min() >= 0
                assert stitched.max() < model.n_states

    def test_decode_tail_empty_cases(self, model):
        decoder = StreamingDecoder(model, lag=4)
        assert decoder.decode_tail().shape == (0,)  # nothing pushed yet
        decoder.push(0)
        decoder.finish()
        assert decoder.decode_tail().shape == (0,)  # closed stream

    def test_pooled_stream_decode_tail(self, model):
        rng = np.random.default_rng(7)
        tokens = rng.integers(0, model.emissions.n_symbols, size=200)
        pool = StreamPool(model, keep_history=False)
        a = pool.open(lag=8)
        b = pool.open(lag=8)
        solo = StreamingDecoder(model, lag=8, keep_history=False)
        for tok in tokens:
            a.push(int(tok))
            b.push(int(tok))
            solo.push(int(tok))
        tail = a.decode_tail()
        assert np.array_equal(tail, solo.decode_tail())
        ra, rs = a.finish(), solo.finish()
        assert np.array_equal(ra.path, rs.path)
        # b untouched by a's peek/finish
        rb = b.finish()
        assert np.array_equal(rb.path, rs.path)

    def test_pooled_decode_tail_after_finish_is_empty(self, model):
        pool = StreamPool(model)
        s = pool.open(lag=4)
        s.push(0)
        s.finish()
        assert s.decode_tail().shape == (0,)
