"""Unit tests for the probability product kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ValidationError
from repro.dpp.kernels import (
    normalized_probability_kernel,
    probability_product_kernel,
    transition_kernel_matrix,
)


class TestProbabilityProductKernel:
    def test_rho_half_equals_bhattacharyya_coefficient(self):
        p = np.array([0.2, 0.8])
        q = np.array([0.5, 0.5])
        expected = np.sum(np.sqrt(p * q))
        assert np.isclose(probability_product_kernel(p, q, rho=0.5), expected)

    def test_rho_one_equals_inner_product(self):
        p = np.array([0.3, 0.7])
        q = np.array([0.6, 0.4])
        assert np.isclose(probability_product_kernel(p, q, rho=1.0), float(p @ q))

    def test_symmetry(self):
        p = np.array([0.1, 0.4, 0.5])
        q = np.array([0.3, 0.3, 0.4])
        assert np.isclose(
            probability_product_kernel(p, q), probability_product_kernel(q, p)
        )

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValidationError):
            probability_product_kernel(np.ones(2) / 2, np.ones(3) / 3)

    def test_rejects_negative_entries(self):
        with pytest.raises(ValidationError):
            probability_product_kernel(np.array([-0.1, 1.1]), np.array([0.5, 0.5]))

    def test_rejects_non_positive_rho(self):
        with pytest.raises(ValidationError):
            probability_product_kernel(np.ones(2) / 2, np.ones(2) / 2, rho=0.0)


class TestNormalizedProbabilityKernel:
    def test_self_similarity_is_one(self):
        p = np.array([0.25, 0.25, 0.5])
        assert np.isclose(normalized_probability_kernel(p, p), 1.0)

    def test_bounded_by_one(self):
        p = np.array([0.9, 0.1])
        q = np.array([0.1, 0.9])
        value = normalized_probability_kernel(p, q)
        assert 0.0 <= value <= 1.0

    def test_orthogonal_distributions_give_zero(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert np.isclose(normalized_probability_kernel(p, q), 0.0)

    def test_rejects_zero_distribution(self):
        with pytest.raises(ValidationError):
            normalized_probability_kernel(np.zeros(3), np.ones(3) / 3)

    @given(
        arrays(np.float64, (5,), elements=st.floats(0.01, 1.0)),
        arrays(np.float64, (5,), elements=st.floats(0.01, 1.0)),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_in_unit_interval(self, a, b):
        p = a / a.sum()
        q = b / b.sum()
        value = normalized_probability_kernel(p, q)
        assert -1e-9 <= value <= 1.0 + 1e-9


class TestTransitionKernelMatrix:
    def test_diagonal_is_one(self, random_transition_matrix):
        K = transition_kernel_matrix(random_transition_matrix)
        assert np.allclose(np.diag(K), 1.0)

    def test_symmetric(self, random_transition_matrix):
        K = transition_kernel_matrix(random_transition_matrix)
        assert np.allclose(K, K.T)

    def test_positive_semidefinite(self, random_transition_matrix):
        K = transition_kernel_matrix(random_transition_matrix)
        eigenvalues = np.linalg.eigvalsh(K)
        assert np.all(eigenvalues >= -1e-8)

    def test_identical_rows_give_rank_deficient_kernel(self):
        row = np.array([0.2, 0.3, 0.5])
        A = np.tile(row, (3, 1))
        K = transition_kernel_matrix(A)
        assert np.allclose(K, 1.0)

    def test_orthogonal_rows_give_identity(self):
        A = np.eye(4)
        K = transition_kernel_matrix(A)
        assert np.allclose(K, np.eye(4), atol=1e-10)

    def test_matches_pairwise_normalized_kernel(self, random_transition_matrix):
        A = random_transition_matrix
        K = transition_kernel_matrix(A, rho=0.5)
        for i in range(A.shape[0]):
            for j in range(A.shape[0]):
                expected = normalized_probability_kernel(A[i], A[j], rho=0.5)
                assert np.isclose(K[i, j], expected, atol=1e-10)

    def test_jitter_added_to_diagonal(self):
        A = np.tile(np.array([0.5, 0.5]), (2, 1))
        K = transition_kernel_matrix(A, jitter=0.1)
        assert np.allclose(np.diag(K), 1.1)

    def test_rejects_negative_matrix(self):
        with pytest.raises(ValidationError):
            transition_kernel_matrix(np.array([[-0.5, 1.5], [0.5, 0.5]]))

    def test_rejects_negative_jitter(self):
        with pytest.raises(ValidationError):
            transition_kernel_matrix(np.eye(2), jitter=-1.0)
