"""End-to-end ``repro-serve`` CLI tests (driven in-process via ``main``)."""

import json

import numpy as np
import pytest

from repro.serving import ModelRegistry
from repro.serving.cli import main


def _run(args):
    return main([str(a) for a in args])


@pytest.fixture(scope="module")
def fitted_registry(tmp_path_factory):
    """A registry holding a small supervised PoS model plus a sample file."""
    root = tmp_path_factory.mktemp("cli")
    registry = root / "registry"
    sample = root / "sample.jsonl"
    code = _run(
        [
            "fit", "--dataset", "pos", "--n-sequences", 50, "--max-em-iter", 2,
            "--registry", registry, "--name", "pos-tagger",
            "--sample-out", sample, "--sample-count", 6,
        ]
    )
    assert code == 0
    return registry, sample


class TestFit:
    def test_registry_entry_created(self, fitted_registry):
        registry, _ = fitted_registry
        reg = ModelRegistry(registry)
        assert reg.list_models() == ["pos-tagger"]
        description = reg.describe("pos-tagger")
        assert description["model_type"] == "supervised_diversified_hmm"
        assert description["metadata"]["dataset"] == "pos"

    def test_sample_file_is_json_lines(self, fitted_registry):
        _, sample = fitted_registry
        lines = [l for l in sample.read_text().splitlines() if l.strip()]
        assert len(lines) == 6
        for line in lines:
            seq = json.loads(line)
            assert isinstance(seq, list) and len(seq) >= 1

    def test_fit_to_bare_artifact_and_import(self, tmp_path):
        artifact = tmp_path / "artifact"
        assert _run(
            ["fit", "--dataset", "toy", "--n-sequences", 20, "--max-em-iter", 2,
             "--out", artifact]
        ) == 0
        registry = tmp_path / "registry"
        assert _run(
            ["save", "--artifact", artifact, "--registry", registry, "--name", "toy"]
        ) == 0
        assert ModelRegistry(registry).versions("toy") == [1]

    def test_fit_requires_destination(self, capsys):
        with pytest.raises(SystemExit):
            _run(["fit", "--dataset", "toy"])


class TestTag:
    def test_tag_writes_one_line_per_sequence(self, fitted_registry, tmp_path):
        registry, sample = fitted_registry
        output = tmp_path / "tags.txt"
        assert _run(
            ["tag", "--registry", registry, "--name", "pos-tagger",
             "--input", sample, "--output", output]
        ) == 0
        tag_lines = output.read_text().splitlines()
        input_lines = [l for l in sample.read_text().splitlines() if l.strip()]
        assert len(tag_lines) == len(input_lines)
        for tags, tokens in zip(tag_lines, input_lines):
            assert len(tags.split()) == len(json.loads(tokens))
            assert all(t.isdigit() for t in tags.split())

    def test_streaming_tag_is_deterministic_and_complete(self, fitted_registry, tmp_path):
        registry, sample = fitted_registry
        batch_out = tmp_path / "batch.txt"
        stream_out = tmp_path / "stream.txt"
        stream_again = tmp_path / "stream2.txt"
        _run(["tag", "--registry", registry, "--name", "pos-tagger",
              "--input", sample, "--output", batch_out])
        _run(["tag", "--registry", registry, "--name", "pos-tagger",
              "--input", sample, "--output", stream_out, "--streaming", "--lag", 4])
        _run(["tag", "--registry", registry, "--name", "pos-tagger",
              "--input", sample, "--output", stream_again, "--streaming", "--lag", 4])
        assert stream_out.read_text() == stream_again.read_text()
        # one label per token, same shape as the batch output
        batch_lines = batch_out.read_text().splitlines()
        stream_lines = stream_out.read_text().splitlines()
        assert len(batch_lines) == len(stream_lines)
        for b, s in zip(batch_lines, stream_lines):
            assert len(b.split()) == len(s.split())

    def test_missing_model_fails_cleanly(self, fitted_registry, tmp_path):
        registry, sample = fitted_registry
        assert _run(
            ["tag", "--registry", registry, "--name", "nope", "--input", sample]
        ) == 2


class TestBench:
    def test_bench_reports_speedup(self, fitted_registry, tmp_path, capsys):
        registry, _ = fitted_registry
        out = tmp_path / "bench.json"
        assert _run(
            ["bench", "--registry", registry, "--name", "pos-tagger",
             "--requests", 30, "--length", 8, "--out", out]
        ) == 0
        report = json.loads(out.read_text())
        assert report["requests"] == 30
        assert report["speedup"] > 0
        assert report["path_mismatches"] == 0
        assert report["mean_batch_size"] > 1
