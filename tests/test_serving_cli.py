"""End-to-end ``repro-serve`` CLI tests (driven in-process via ``main``)."""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

import numpy as np
import pytest

from repro.serving import ModelRegistry
from repro.serving.cli import main


def _run(args):
    return main([str(a) for a in args])


@pytest.fixture(scope="module")
def fitted_registry(tmp_path_factory):
    """A registry holding a small supervised PoS model plus a sample file."""
    root = tmp_path_factory.mktemp("cli")
    registry = root / "registry"
    sample = root / "sample.jsonl"
    code = _run(
        [
            "fit", "--dataset", "pos", "--n-sequences", 50, "--max-em-iter", 2,
            "--registry", registry, "--name", "pos-tagger",
            "--sample-out", sample, "--sample-count", 6,
        ]
    )
    assert code == 0
    return registry, sample


class TestFit:
    def test_registry_entry_created(self, fitted_registry):
        registry, _ = fitted_registry
        reg = ModelRegistry(registry)
        assert reg.list_models() == ["pos-tagger"]
        description = reg.describe("pos-tagger")
        assert description["model_type"] == "supervised_diversified_hmm"
        assert description["metadata"]["dataset"] == "pos"

    def test_sample_file_is_json_lines(self, fitted_registry):
        _, sample = fitted_registry
        lines = [l for l in sample.read_text().splitlines() if l.strip()]
        assert len(lines) == 6
        for line in lines:
            seq = json.loads(line)
            assert isinstance(seq, list) and len(seq) >= 1

    def test_fit_to_bare_artifact_and_import(self, tmp_path):
        artifact = tmp_path / "artifact"
        assert _run(
            ["fit", "--dataset", "toy", "--n-sequences", 20, "--max-em-iter", 2,
             "--out", artifact]
        ) == 0
        registry = tmp_path / "registry"
        assert _run(
            ["save", "--artifact", artifact, "--registry", registry, "--name", "toy"]
        ) == 0
        assert ModelRegistry(registry).versions("toy") == [1]

    def test_fit_requires_destination(self, capsys):
        with pytest.raises(SystemExit):
            _run(["fit", "--dataset", "toy"])


class TestTag:
    def test_tag_writes_one_line_per_sequence(self, fitted_registry, tmp_path):
        registry, sample = fitted_registry
        output = tmp_path / "tags.txt"
        assert _run(
            ["tag", "--registry", registry, "--name", "pos-tagger",
             "--input", sample, "--output", output]
        ) == 0
        tag_lines = output.read_text().splitlines()
        input_lines = [l for l in sample.read_text().splitlines() if l.strip()]
        assert len(tag_lines) == len(input_lines)
        for tags, tokens in zip(tag_lines, input_lines):
            assert len(tags.split()) == len(json.loads(tokens))
            assert all(t.isdigit() for t in tags.split())

    def test_streaming_tag_is_deterministic_and_complete(self, fitted_registry, tmp_path):
        registry, sample = fitted_registry
        batch_out = tmp_path / "batch.txt"
        stream_out = tmp_path / "stream.txt"
        stream_again = tmp_path / "stream2.txt"
        _run(["tag", "--registry", registry, "--name", "pos-tagger",
              "--input", sample, "--output", batch_out])
        _run(["tag", "--registry", registry, "--name", "pos-tagger",
              "--input", sample, "--output", stream_out, "--streaming", "--lag", 4])
        _run(["tag", "--registry", registry, "--name", "pos-tagger",
              "--input", sample, "--output", stream_again, "--streaming", "--lag", 4])
        assert stream_out.read_text() == stream_again.read_text()
        # one label per token, same shape as the batch output
        batch_lines = batch_out.read_text().splitlines()
        stream_lines = stream_out.read_text().splitlines()
        assert len(batch_lines) == len(stream_lines)
        for b, s in zip(batch_lines, stream_lines):
            assert len(b.split()) == len(s.split())

    def test_missing_model_fails_cleanly(self, fitted_registry, tmp_path):
        registry, sample = fitted_registry
        assert _run(
            ["tag", "--registry", registry, "--name", "nope", "--input", sample]
        ) == 2

    def test_batch_size_does_not_change_output(self, fitted_registry, tmp_path):
        registry, sample = fitted_registry
        big = tmp_path / "big.txt"
        small = tmp_path / "small.txt"
        _run(["tag", "--registry", registry, "--name", "pos-tagger",
              "--input", sample, "--output", big, "--batch-size", 1000])
        _run(["tag", "--registry", registry, "--name", "pos-tagger",
              "--input", sample, "--output", small, "--batch-size", 2])
        assert big.read_text() == small.read_text()

    def test_batch_size_must_be_positive(self, fitted_registry, tmp_path):
        registry, sample = fitted_registry
        assert _run(
            ["tag", "--registry", registry, "--name", "pos-tagger",
             "--input", sample, "--batch-size", 0]
        ) == 2

    def test_tag_iterates_input_in_bounded_batches(self, fitted_registry, tmp_path):
        """Tagging a large file must not materialize every sequence at once.

        The file below holds ~8 MB of token data; with --batch-size 16 the
        resident working set during tagging must stay far below the file
        size (pre-fix, _read_sequences loaded the whole file up front).
        """
        import tracemalloc

        registry, _ = fitted_registry
        rng = np.random.default_rng(0)
        bulk = tmp_path / "bulk.jsonl"
        with bulk.open("w") as fh:
            for _ in range(400):
                fh.write(json.dumps(rng.integers(0, 10, size=600).tolist()) + "\n")
        file_bytes = bulk.stat().st_size
        output = tmp_path / "bulk-tags.txt"

        tracemalloc.start()
        code = _run(["tag", "--registry", registry, "--name", "pos-tagger",
                     "--input", bulk, "--output", output, "--batch-size", 16])
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        assert code == 0
        assert len(output.read_text().splitlines()) == 400
        # bounded: a handful of batches worth of arrays, not the whole file
        assert peak < max(file_bytes // 2, 4_000_000)


class TestRoute:
    @pytest.fixture()
    def two_model_registry(self, tmp_path):
        """A registry with two small categorical HMMs plus their vocab size."""
        from repro.hmm import HMM, CategoricalEmission

        registry_root = tmp_path / "registry"
        registry = ModelRegistry(registry_root)
        for name, seed in (("red", 0), ("blue", 9)):
            rng = np.random.default_rng(seed)
            model = HMM(
                rng.dirichlet(np.ones(4)),
                rng.dirichlet(np.ones(4), size=4),
                CategoricalEmission(rng.dirichlet(np.ones(8), size=4)),
            )
            registry.save(name, model)
        return registry_root

    def test_routes_requests_across_models(self, two_model_registry, tmp_path):
        requests = tmp_path / "requests.jsonl"
        output = tmp_path / "routed.jsonl"
        rng = np.random.default_rng(3)
        with requests.open("w") as fh:
            for i in range(10):
                record = {
                    "model": "red" if i % 2 == 0 else "blue",
                    "sequence": [int(s) for s in rng.integers(0, 8, size=6)],
                }
                if i == 0:
                    record["kind"] = "score"
                fh.write(json.dumps(record) + "\n")
        assert _run(
            ["route", "--registry", two_model_registry,
             "--input", requests, "--output", output]
        ) == 0
        results = [json.loads(l) for l in output.read_text().splitlines()]
        assert len(results) == 10
        assert "score" in results[0] and results[0]["model"] == "red"
        for i, record in enumerate(results[1:], start=1):
            assert record["model"] == ("red" if i % 2 == 0 else "blue")
            assert len(record["tags"]) == 6
            assert all(0 <= t < 4 for t in record["tags"])

    def test_unknown_model_reported_per_request(self, two_model_registry, tmp_path):
        requests = tmp_path / "requests.jsonl"
        output = tmp_path / "routed.jsonl"
        with requests.open("w") as fh:
            fh.write(json.dumps({"model": "red", "sequence": [0, 1, 2]}) + "\n")
            fh.write(json.dumps({"model": "ghost", "sequence": [0, 1]}) + "\n")
        assert _run(
            ["route", "--registry", two_model_registry,
             "--input", requests, "--output", output]
        ) == 0
        results = [json.loads(l) for l in output.read_text().splitlines()]
        assert "tags" in results[0]
        assert "error" in results[1] and "ghost" in results[1]["error"]

    def test_input_larger_than_queue_capacity_is_not_shed(
        self, two_model_registry, tmp_path, capsys
    ):
        """Regression: the route CLI is its own only client, so a bounded
        queue must throttle submission (flow control), not drop the CLI's
        own requests as QueueFullError records — and the pacing must not
        count phantom rejections in the router stats."""
        requests = tmp_path / "requests.jsonl"
        output = tmp_path / "routed.jsonl"
        rng = np.random.default_rng(0)
        n_requests = 60
        with requests.open("w") as fh:
            for i in range(n_requests):
                record = {
                    "model": "red" if i % 2 == 0 else "blue",
                    "sequence": [int(s) for s in rng.integers(0, 8, size=5)],
                }
                fh.write(json.dumps(record) + "\n")
        assert _run(
            ["route", "--registry", two_model_registry, "--input", requests,
             "--output", output, "--queue-capacity", 4]
        ) == 0
        results = [json.loads(l) for l in output.read_text().splitlines()]
        assert len(results) == n_requests
        assert all("tags" in r for r in results), [
            r for r in results if "tags" not in r
        ]
        assert "0 shed" in capsys.readouterr().err

    def test_non_repro_failures_reported_per_request(
        self, two_model_registry, tmp_path
    ):
        """A corrupt artifact (FileNotFoundError, not a ReproError) and a
        malformed version value must become per-request error records, not
        crash the whole route run."""
        (two_model_registry / "blue" / "v0001" / "arrays-0000.npy").unlink()
        requests = tmp_path / "requests.jsonl"
        output = tmp_path / "routed.jsonl"
        with requests.open("w") as fh:
            fh.write(json.dumps({"model": "red", "sequence": [0, 1, 2]}) + "\n")
            fh.write(json.dumps({"model": "blue", "sequence": [0, 1]}) + "\n")
            fh.write(
                json.dumps({"model": "red", "sequence": [0], "version": "one"}) + "\n"
            )
        assert _run(
            ["route", "--registry", two_model_registry,
             "--input", requests, "--output", output]
        ) == 0
        results = [json.loads(l) for l in output.read_text().splitlines()]
        assert len(results) == 3
        assert "tags" in results[0]
        assert "error" in results[1]
        assert "error" in results[2]

    def test_malformed_request_line_fails_cleanly(self, two_model_registry, tmp_path):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(json.dumps({"sequence": [1, 2]}) + "\n")
        assert _run(
            ["route", "--registry", two_model_registry, "--input", requests]
        ) == 2


class TestRouteStats:
    def test_stats_flag_prints_snapshot_json(self, tmp_path, capsys):
        from repro.hmm import HMM, CategoricalEmission

        registry_root = tmp_path / "registry"
        registry = ModelRegistry(registry_root)
        rng = np.random.default_rng(0)
        registry.save(
            "red",
            HMM(
                rng.dirichlet(np.ones(4)),
                rng.dirichlet(np.ones(4), size=4),
                CategoricalEmission(rng.dirichlet(np.ones(8), size=4)),
            ),
        )
        requests = tmp_path / "requests.jsonl"
        with requests.open("w") as fh:
            for _ in range(6):
                record = {
                    "model": "red",
                    "sequence": [int(s) for s in rng.integers(0, 8, size=5)],
                }
                fh.write(json.dumps(record) + "\n")
        output = tmp_path / "routed.jsonl"
        assert _run(
            ["route", "--registry", registry_root, "--input", requests,
             "--output", output, "--stats", "--scheduling-policy", "weighted_fair"]
        ) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["n_requests"] == 6
        assert stats["per_model"] == {"red:v0001": 6}
        for key in ("queue_depth", "n_rejected", "n_expired", "mean_batch_size"):
            assert key in stats


class TestServe:
    def test_serve_subprocess_end_to_end(self, fitted_registry, tmp_path):
        """Start ``repro-serve serve`` as a real subprocess, drive it over
        HTTP, and check it shuts down cleanly on SIGINT."""
        registry, sample = fitted_registry
        # grab a free ephemeral port; the tiny close-to-rebind window is the
        # best a subprocess-spawning test can do
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            server_port = probe.getsockname()[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            "src" + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else "src"
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.serving.cli", "serve",
                "--registry", str(registry), "--port", str(server_port),
                "--warm-up", "pos-tagger",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        base = f"http://127.0.0.1:{server_port}"
        try:
            deadline = time.time() + 30
            last_error = None
            while time.time() < deadline:
                if process.poll() is not None:
                    raise AssertionError(
                        f"server exited early: {process.stderr.read().decode()}"
                    )
                try:
                    with urllib.request.urlopen(f"{base}/healthz", timeout=2) as r:
                        assert json.loads(r.read())["status"] == "ok"
                    break
                except OSError as exc:
                    last_error = exc
                    time.sleep(0.1)
            else:
                raise AssertionError(f"server never came up: {last_error}")

            sequence = json.loads(sample.read_text().splitlines()[0])
            request = urllib.request.Request(
                f"{base}/v1/models/pos-tagger/tag",
                data=json.dumps({"sequence": sequence}).encode(),
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=10) as r:
                tags = json.loads(r.read())["tags"]
            assert len(tags) == len(sequence)

            with urllib.request.urlopen(f"{base}/stats", timeout=10) as r:
                stats = json.loads(r.read())
            assert stats["router"]["n_requests"] >= 1
            # warm-up preloaded the model before the first request
            assert stats["router"]["n_model_loads"] == 1

            process.send_signal(signal.SIGINT)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)


class TestBench:
    def test_bench_reports_speedup(self, fitted_registry, tmp_path, capsys):
        registry, _ = fitted_registry
        out = tmp_path / "bench.json"
        assert _run(
            ["bench", "--registry", registry, "--name", "pos-tagger",
             "--requests", 30, "--length", 8, "--out", out]
        ) == 0
        report = json.loads(out.read_text())
        assert report["requests"] == 30
        assert report["speedup"] > 0
        assert report["path_mismatches"] == 0
        assert report["mean_batch_size"] > 1


class TestLatencyReporting:
    """route/bench percentile output matches the /metrics histogram machinery."""

    def test_route_stats_include_latency_percentiles(self, tmp_path, capsys):
        from repro.hmm import HMM, CategoricalEmission

        registry_root = tmp_path / "registry"
        registry = ModelRegistry(registry_root)
        rng = np.random.default_rng(0)
        registry.save(
            "red",
            HMM(
                rng.dirichlet(np.ones(4)),
                rng.dirichlet(np.ones(4), size=4),
                CategoricalEmission(rng.dirichlet(np.ones(8), size=4)),
            ),
        )
        requests = tmp_path / "requests.jsonl"
        with requests.open("w") as fh:
            for _ in range(8):
                record = {
                    "model": "red",
                    "sequence": [int(s) for s in rng.integers(0, 8, size=5)],
                }
                fh.write(json.dumps(record) + "\n")
        output = tmp_path / "routed.jsonl"
        assert _run(
            ["route", "--registry", registry_root, "--input", requests,
             "--output", output, "--stats"]
        ) == 0
        captured = capsys.readouterr()
        stats = json.loads(captured.out)
        latency = stats["latency"]
        assert latency["count"] == 8
        assert latency["p50_ms"] is not None
        assert latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]
        assert "fifo" in stats["queue_wait_by_policy"]
        assert stats["queue_wait_by_policy"]["fifo"]["count"] == 8
        # the human-readable summary line quotes the same percentiles
        assert "latency p50=" in captured.err
        assert "over 8 requests" in captured.err

    def test_bench_report_includes_latency_percentiles(
        self, fitted_registry, tmp_path, capsys
    ):
        registry, _ = fitted_registry
        out = tmp_path / "bench.json"
        assert _run(
            ["bench", "--registry", registry, "--name", "pos-tagger",
             "--requests", 20, "--length", 8, "--out", out]
        ) == 0
        report = json.loads(out.read_text())
        latency = report["latency_ms"]
        assert set(latency) == {"p50", "p95", "p99", "max"}
        assert 0.0 < latency["p50"] <= latency["p95"] <= latency["p99"] <= latency["max"]
        assert "latency p50=" in capsys.readouterr().err
