"""Chaos suite: deterministic fault drills against the serving stack.

Every failure here is injected through :mod:`repro.serving.faults` named
points — no monkey-patching of internals — so each drill replays
identically: dispatcher crash and supervised restart, restart-budget
exhaustion, circuit-breaker trip / fast-fail / half-open recovery,
streaming tick isolation, drain-deadline shedding and HTTP timeout
surfacing.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.config import RetryPolicy, ServingConfig
from repro.exceptions import (
    ModelUnavailableError,
    QueueFullError,
    ServiceShuttingDownError,
    ServingError,
    ValidationError,
)
from repro.hmm import HMM, CategoricalEmission
from repro.serving import (
    HTTPServingServer,
    ModelRegistry,
    Router,
    StreamingDecoder,
    StreamingService,
    TaggingService,
    faults,
)


@pytest.fixture(autouse=True)
def _disarm_everything():
    """No drill may leak an armed fault into the next test."""
    yield
    faults.reset()


def _random_hmm(seed, n_states=4, n_symbols=8):
    rng = np.random.default_rng(seed)
    emissions = CategoricalEmission(rng.dirichlet(np.ones(n_symbols), size=n_states))
    return HMM(
        rng.dirichlet(np.ones(n_states)),
        rng.dirichlet(np.ones(n_states), size=n_states),
        emissions,
    )


class _GatedEmission(CategoricalEmission):
    """Emissions whose batched scoring blocks until the test releases it."""

    family = "abstract"

    def __init__(self, emission_probs):
        super().__init__(emission_probs)
        self.release = threading.Event()
        self.started = threading.Event()

    def log_likelihoods_batch(self, sequences):
        self.started.set()
        assert self.release.wait(timeout=30), "test forgot to release the gate"
        return super().log_likelihoods_batch(sequences)


def _gated_hmm(seed, n_states=4, n_symbols=8):
    rng = np.random.default_rng(seed)
    emissions = _GatedEmission(rng.dirichlet(np.ones(n_symbols), size=n_states))
    return HMM(
        rng.dirichlet(np.ones(n_states)),
        rng.dirichlet(np.ones(n_states), size=n_states),
        emissions,
    )


@pytest.fixture
def model():
    return _random_hmm(0)


@pytest.fixture
def sequences(model):
    _, seqs = model.sample_dataset(12, 10, seed=1)
    return seqs


@pytest.fixture
def registry(tmp_path, model):
    registry = ModelRegistry(tmp_path / "registry")
    registry.save("alpha", model)
    return registry


# ------------------------------------------------------------------ #
# The harness itself
# ------------------------------------------------------------------ #
class TestFaultHarness:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValidationError, match="unknown fault injection point"):
            with faults.inject("no.such.point", error=OSError):
                pass

    def test_double_arming_one_point_rejected(self):
        with faults.inject(faults.ARTIFACT_LOAD, error=OSError):
            with pytest.raises(ValidationError, match="already armed"):
                with faults.inject(faults.ARTIFACT_LOAD, error=OSError):
                    pass

    def test_distinct_points_arm_together(self):
        with faults.inject(faults.ARTIFACT_LOAD, error=OSError) as load_fault:
            with faults.inject(faults.REGISTRY_WRITE, error=OSError) as write_fault:
                with pytest.raises(OSError):
                    faults.fire(faults.ARTIFACT_LOAD)
                with pytest.raises(OSError):
                    faults.fire(faults.REGISTRY_WRITE)
        assert (load_fault.hits, write_fault.hits) == (1, 1)

    def test_disarmed_fire_is_a_pass_through(self):
        payload = object()
        assert faults.fire(faults.EXECUTOR_RUN, payload) is payload
        assert faults.fire(faults.EXECUTOR_RUN) is None

    def test_first_hit_and_n_failures_schedule(self):
        boom = RuntimeError("boom")
        with faults.inject(
            faults.DISPATCHER_LOOP, error=boom, first_hit=3, n_failures=1
        ) as fault:
            faults.fire(faults.DISPATCHER_LOOP)  # hit 1: untouched
            faults.fire(faults.DISPATCHER_LOOP)  # hit 2: untouched
            with pytest.raises(RuntimeError, match="boom"):
                faults.fire(faults.DISPATCHER_LOOP)  # hit 3: triggers
            faults.fire(faults.DISPATCHER_LOOP)  # budget spent: untouched
        assert fault.hits == 4
        assert fault.n_triggered == 1

    def test_error_class_is_instantiated_per_trigger(self):
        with faults.inject(faults.STREAM_TICK, error=OSError):
            with pytest.raises(OSError) as first:
                faults.fire(faults.STREAM_TICK)
            with pytest.raises(OSError) as second:
                faults.fire(faults.STREAM_TICK)
        assert first.value is not second.value

    def test_corrupt_transforms_payload_on_trigger_only(self):
        with faults.inject(
            faults.ARTIFACT_LOAD, corrupt=lambda p: p + 1, first_hit=2
        ) as fault:
            assert faults.fire(faults.ARTIFACT_LOAD, 10) == 10
            assert faults.fire(faults.ARTIFACT_LOAD, 10) == 11
        assert fault.n_triggered == 1

    def test_probability_mode_replays_identically(self):
        def pattern(seed):
            triggered = []
            with faults.inject(
                faults.EXECUTOR_RUN, error=OSError, probability=0.5, seed=seed
            ):
                for _ in range(20):
                    try:
                        faults.fire(faults.EXECUTOR_RUN)
                        triggered.append(False)
                    except OSError:
                        triggered.append(True)
            return triggered

        assert pattern(7) == pattern(7)
        assert any(pattern(7)) and not all(pattern(7))

    def test_reset_disarms_everything(self):
        armed = faults.inject(faults.ARTIFACT_LOAD, error=OSError)
        armed.__enter__()
        faults.reset()
        faults.fire(faults.ARTIFACT_LOAD)  # no raise: disarmed

    def test_delay_sleeps_on_trigger(self):
        with faults.inject(faults.EXECUTOR_RUN, delay_s=0.05, n_failures=1):
            start = time.perf_counter()
            faults.fire(faults.EXECUTOR_RUN)
            assert time.perf_counter() - start >= 0.05
            start = time.perf_counter()
            faults.fire(faults.EXECUTOR_RUN)  # budget spent: no sleep
            assert time.perf_counter() - start < 0.05


# ------------------------------------------------------------------ #
# Supervised dispatcher restarts
# ------------------------------------------------------------------ #
class TestDispatcherSupervision:
    def test_crash_fails_only_in_flight_and_restarts(self, model, sequences):
        config = ServingConfig(max_batch_size=1, restart_backoff_ms=1.0)
        with TaggingService(model, config=config) as service:
            with faults.inject(
                faults.DISPATCHER_LOOP, error=RuntimeError("injected"), n_failures=1
            ) as fault:
                futures = [service.submit_tag(s) for s in sequences[:5]]
                outcomes = []
                for future, seq in zip(futures, sequences[:5]):
                    try:
                        outcomes.append(
                            np.array_equal(future.result(timeout=10), model.decode(seq))
                        )
                    except ServingError as exc:
                        assert "dispatcher crashed" in str(exc)
                        outcomes.append("crashed")
            # exactly the one in-flight batch died; every queued request
            # survived the restart and was answered correctly
            assert fault.n_triggered == 1
            assert outcomes.count("crashed") == 1
            assert [o for o in outcomes if o != "crashed"] == [True] * 4
            # the service keeps serving after supervision kicked in
            assert np.array_equal(
                service.tag(sequences[5]), model.decode(sequences[5])
            )
            stats = service.stats.snapshot()
        assert stats["n_dispatcher_restarts"] == 1
        assert stats["health"] == "healthy"  # recovered after a clean batch
        assert service.queue_depth == 0

    def test_stats_survive_a_restart(self, model, sequences):
        config = ServingConfig(restart_backoff_ms=1.0)
        with TaggingService(model, config=config) as service:
            for seq in sequences[:3]:
                service.tag(seq)
            before = service.stats.snapshot()["n_requests"]
            with faults.inject(
                faults.DISPATCHER_LOOP, error=RuntimeError("injected"), n_failures=1
            ):
                with pytest.raises(ServingError, match="dispatcher crashed"):
                    service.tag(sequences[3])
            service.tag(sequences[4])
            stats = service.stats.snapshot()
        # counters accumulated before the crash are not reset by restart
        assert stats["n_requests"] == before + 1
        assert stats["n_dispatcher_restarts"] == 1

    def test_restart_budget_exhaustion_fails_the_service(self, model, sequences):
        config = ServingConfig(max_dispatcher_restarts=1, restart_backoff_ms=1.0)
        with TaggingService(model, config=config) as service:
            with faults.inject(
                faults.DISPATCHER_LOOP, error=RuntimeError("injected")
            ) as fault:
                first = service.submit_tag(sequences[0])
                with pytest.raises(ServingError, match="dispatcher crashed"):
                    first.result(timeout=10)
                # the restarted dispatcher crashes again on the next batch,
                # which spends the whole restart budget
                second = service.submit_tag(sequences[1])
                with pytest.raises(ServingError, match="dispatcher crashed"):
                    second.result(timeout=10)
            deadline = time.perf_counter() + 5.0
            while service.health != "failed" and time.perf_counter() < deadline:
                time.sleep(0.01)
            assert service.health == "failed"
            assert fault.n_triggered == 2
            with pytest.raises(ServiceShuttingDownError, match="dispatcher failed"):
                service.submit_tag(sequences[2])
            stats = service.stats.snapshot()
        assert stats["health"] == "failed"
        assert stats["n_dispatcher_restarts"] == 1

    def test_backoff_grows_exponentially_and_caps(self):
        config = ServingConfig(
            restart_backoff_ms=10.0, restart_backoff_max_ms=25.0
        )
        delays = [
            min(
                config.restart_backoff_ms * 2 ** (attempt - 1),
                config.restart_backoff_max_ms,
            )
            for attempt in (1, 2, 3, 4)
        ]
        assert delays == [10.0, 20.0, 25.0, 25.0]


# ------------------------------------------------------------------ #
# Circuit breakers
# ------------------------------------------------------------------ #
class TestCircuitBreaker:
    def test_trip_fast_fail_and_half_open_recovery(self, registry, model, sequences):
        config = ServingConfig(breaker_threshold=3, breaker_cooldown_s=30.0)
        with Router(registry, config=config) as router:
            with faults.inject(
                faults.ARTIFACT_LOAD, error=OSError("disk gone")
            ) as fault:
                # each failed load is one consecutive breaker failure
                for i in range(3):
                    with pytest.raises(OSError, match="disk gone"):
                        router.submit_tag("alpha", sequences[i]).result(timeout=10)
                assert fault.hits == 3
                breaker = router.breaker_states()["alpha:v0001"]
                assert breaker["state"] == "open"
                assert breaker["n_trips"] == 1
                # while cooling down the rejection happens at submit time —
                # no queue slot, and crucially no artifact read
                with pytest.raises(ModelUnavailableError) as info:
                    router.submit_tag("alpha", sequences[3])
                assert info.value.retry_after_s is not None
                assert 0 < info.value.retry_after_s <= 30.0
                assert fault.hits == 3  # the registry was never touched
            # fault cleared + cooldown elapsed -> one half-open probe heals it
            with router._breakers_lock:
                router._breakers[("alpha", 1)].opened_at -= 31.0
            assert np.array_equal(
                router.tag("alpha", sequences[4]), model.decode(sequences[4])
            )
            assert router.breaker_states()["alpha:v0001"]["state"] == "closed"
            # back to normal service, stats expose the breaker history
            stats = router.stats.snapshot()
        assert stats["breakers"]["alpha:v0001"]["n_trips"] == 1

    def test_failed_probe_reopens_the_breaker(self, registry, sequences):
        config = ServingConfig(breaker_threshold=1, breaker_cooldown_s=0.05)
        with Router(registry, config=config) as router:
            with faults.inject(faults.ARTIFACT_LOAD, error=OSError("disk gone")):
                with pytest.raises(OSError):
                    router.submit_tag("alpha", sequences[0]).result(timeout=10)
                assert router.breaker_states()["alpha:v0001"]["state"] == "open"
                time.sleep(0.06)  # cooldown elapses with the fault still armed
                with pytest.raises(OSError):
                    router.submit_tag("alpha", sequences[1]).result(timeout=10)
                breaker = router.breaker_states()["alpha:v0001"]
                assert breaker["state"] == "open"
                assert breaker["n_trips"] == 2

    def test_breaker_isolates_models(self, tmp_path, sequences):
        healthy_model = _random_hmm(0)
        registry = ModelRegistry(tmp_path / "registry")
        registry.save("healthy", healthy_model)
        registry.save("doomed", _random_hmm(1))
        config = ServingConfig(breaker_threshold=1, breaker_cooldown_s=30.0)
        with Router(registry, config=config) as router:
            # warm the healthy model first so its artifact read happens
            # before the load fault is armed
            assert router.warm_up(["healthy"]).ok
            with faults.inject(faults.ARTIFACT_LOAD, error=OSError("disk gone")):
                with pytest.raises(OSError):
                    router.submit_tag("doomed", sequences[0]).result(timeout=10)
                with pytest.raises(ModelUnavailableError):
                    router.submit_tag("doomed", sequences[1])
                # the doomed model's open breaker never blocks its neighbor
                assert np.array_equal(
                    router.tag("healthy", sequences[2]),
                    healthy_model.decode(sequences[2]),
                )
            states = router.breaker_states()
            assert states["doomed:v0001"]["state"] == "open"
            assert "healthy:v0001" not in states

    def test_warm_up_reports_broken_models_without_aborting(
        self, tmp_path, sequences
    ):
        healthy_model = _random_hmm(0)
        registry = ModelRegistry(tmp_path / "registry")
        registry.save("broken", _random_hmm(1))
        registry.save("healthy", healthy_model)
        with Router(registry) as router:
            # first artifact read dies ("broken" is submitted first); the
            # sweep still loads everything after it
            with faults.inject(
                faults.ARTIFACT_LOAD, error=OSError("disk gone"), n_failures=1
            ):
                report = router.warm_up(["broken", "healthy"])
            assert not report.ok
            assert report.loaded == [("healthy", 1)]
            assert isinstance(report.errors["broken"], OSError)
            assert np.array_equal(
                router.tag("healthy", sequences[0]),
                healthy_model.decode(sequences[0]),
            )


# ------------------------------------------------------------------ #
# Streaming isolation
# ------------------------------------------------------------------ #
class TestStreamingChaos:
    def test_single_tick_fault_leaves_results_bit_identical(self, model):
        rng = np.random.default_rng(3)
        n_symbols = model.emissions.emission_probs.shape[1]
        observations = [rng.integers(0, n_symbols, size=15) for _ in range(3)]

        def run_session():
            with StreamingService(model, lag=4) as service:
                streams = [service.open() for _ in observations]
                for t in range(15):
                    for stream, obs in zip(streams, observations):
                        stream.push(obs[t])
                return [stream.finish() for stream in streams]

        baseline = run_session()
        with faults.inject(
            faults.STREAM_TICK, error=RuntimeError("tick died"), first_hit=2,
            n_failures=1,
        ) as fault:
            injected = run_session()
        # the per-stream fallback absorbed the batched tick's failure: same
        # paths, same posteriors, same log-likelihoods, bit for bit
        assert fault.n_triggered == 1
        for got, want, obs in zip(injected, baseline, observations):
            assert np.array_equal(got.path, want.path)
            np.testing.assert_array_equal(got.filtering, want.filtering)
            assert got.log_likelihood == want.log_likelihood
            decoder = StreamingDecoder(model, lag=4)
            decoder.push_many(obs)
            assert np.array_equal(got.path, decoder.finish().path)


# ------------------------------------------------------------------ #
# Graceful drain
# ------------------------------------------------------------------ #
class TestGracefulDrain:
    def test_drain_deadline_sheds_backlog_but_finishes_in_flight(self, sequences):
        model = _gated_hmm(0)
        gate = model.emissions
        config = ServingConfig(max_batch_size=1, max_wait_ms=0.0)
        service = TaggingService(model, config=config)
        try:
            in_flight = service.submit_tag(sequences[0])
            assert gate.started.wait(timeout=10)
            backlog = [service.submit_tag(s) for s in sequences[1:3]]

            closed = {}

            def close_draining():
                closed["clean"] = service.close(drain_timeout_s=0.1)

            closer = threading.Thread(target=close_draining)
            closer.start()
            time.sleep(0.4)  # hold the gate well past the drain deadline
            gate.release.set()
            closer.join(timeout=10)
            assert closed["clean"] is True
            # the batch already computing is served to completion...
            assert np.array_equal(
                in_flight.result(timeout=1), model.decode(sequences[0])
            )
            # ...the backlog behind the deadline is shed, loudly
            for future in backlog:
                with pytest.raises(ServiceShuttingDownError):
                    future.result(timeout=1)
            stats = service.stats.snapshot()
            assert stats["n_shed"] == 2
            assert service.queue_depth == 0
        finally:
            gate.release.set()
            service.close()

    def test_generous_drain_deadline_serves_everything(self, model, sequences):
        service = TaggingService(model)
        futures = [service.submit_tag(s) for s in sequences]
        assert service.close(drain_timeout_s=30.0) is True
        for future, seq in zip(futures, sequences):
            assert np.array_equal(future.result(timeout=1), model.decode(seq))
        assert service.stats.snapshot()["n_shed"] == 0

    def test_draining_service_refuses_new_work(self, sequences):
        model = _gated_hmm(0)
        gate = model.emissions
        service = TaggingService(model, config=ServingConfig(max_batch_size=1))
        try:
            service.submit_tag(sequences[0])
            assert gate.started.wait(timeout=10)
            closer = threading.Thread(
                target=service.close, kwargs={"drain_timeout_s": 5.0}
            )
            closer.start()
            time.sleep(0.05)  # intake is shut the moment close() begins
            with pytest.raises(ServiceShuttingDownError, match="closed"):
                service.submit_tag(sequences[1])
        finally:
            gate.release.set()
            closer.join(timeout=10)
            service.close()


# ------------------------------------------------------------------ #
# HTTP surfacing
# ------------------------------------------------------------------ #
class TestHttpResilience:
    def _tag_status(self, server, sequence):
        request = urllib.request.Request(
            f"http://{server.host}:{server.port}/v1/models/alpha/tag",
            data=json.dumps({"sequence": sequence.tolist()}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                return response.status, dict(response.headers), json.loads(
                    response.read()
                )
        except urllib.error.HTTPError as exc:
            return exc.code, dict(exc.headers), json.loads(exc.read())

    def test_request_timeout_maps_to_503_with_retry_after(
        self, registry, sequences
    ):
        config = ServingConfig(request_timeout_s=0.1)
        with HTTPServingServer(registry, port=0, config=config) as server:
            with faults.inject(
                faults.EXECUTOR_RUN, delay_s=0.5, n_failures=1
            ) as fault:
                status, headers, body = self._tag_status(server, sequences[0])
            assert fault.n_triggered == 1
            assert status == 503
            assert headers.get("Retry-After") == "1"
            assert "timed out" in body["error"]
            # the stalled engine call finishes in the background; the
            # server then serves normally again (queued requests behind the
            # stall may still time out, so poll past it)
            deadline = time.perf_counter() + 5.0
            while True:
                status, _, body = self._tag_status(server, sequences[1])
                if status == 200 or time.perf_counter() > deadline:
                    break
                time.sleep(0.05)
            assert status == 200

    def test_breaker_open_maps_to_503_with_retry_after(self, registry, sequences):
        config = ServingConfig(breaker_threshold=1, breaker_cooldown_s=30.0)
        with HTTPServingServer(registry, port=0, config=config) as server:
            with faults.inject(faults.ARTIFACT_LOAD, error=OSError("disk gone")):
                status, _, _ = self._tag_status(server, sequences[0])
                assert status == 500  # the load failure itself
                status, headers, body = self._tag_status(server, sequences[1])
            assert status == 503
            assert "circuit breaker" in body["error"]
            assert int(headers["Retry-After"]) >= 1

    def test_failed_dispatcher_turns_healthz_503(self, registry, sequences):
        config = ServingConfig(max_dispatcher_restarts=0)
        with HTTPServingServer(registry, port=0, config=config) as server:
            url = f"http://{server.host}:{server.port}/healthz"
            with urllib.request.urlopen(url, timeout=10) as response:
                assert json.loads(response.read())["health"] == "healthy"
            with faults.inject(
                faults.DISPATCHER_LOOP, error=RuntimeError("injected"), n_failures=1
            ):
                status, _, _ = self._tag_status(server, sequences[0])
                assert status == 500
            deadline = time.perf_counter() + 5.0
            while server.router.health != "failed" and time.perf_counter() < deadline:
                time.sleep(0.01)
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(url, timeout=10)
            assert info.value.code == 503
            body = json.loads(info.value.read())
            assert body["status"] == "failed"
            assert body["health"] == "failed"


# ------------------------------------------------------------------ #
# Retry policy
# ------------------------------------------------------------------ #
class TestRetryPolicy:
    def test_retries_transient_errors_until_success(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise QueueFullError("queue full")
            return "served"

        policy = RetryPolicy(max_attempts=4, initial_backoff_ms=1.0)
        slept = []
        assert policy.call(flaky, sleep=slept.append) == "served"
        assert calls["n"] == 3
        assert len(slept) == 2
        assert all(s >= 0 for s in slept)

    def test_never_retries_validation_errors(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise ValidationError("bad payload")

        policy = RetryPolicy(max_attempts=5, initial_backoff_ms=1.0)
        with pytest.raises(ValidationError):
            policy.call(broken, sleep=lambda _s: None)
        assert calls["n"] == 1

    def test_attempt_budget_exhaustion_reraises_last_error(self):
        policy = RetryPolicy(max_attempts=3, initial_backoff_ms=1.0)
        calls = {"n": 0}

        def always_full():
            calls["n"] += 1
            raise QueueFullError("queue full")

        with pytest.raises(QueueFullError):
            policy.call(always_full, sleep=lambda _s: None)
        assert calls["n"] == 3

    def test_server_retry_after_floors_the_backoff(self):
        policy = RetryPolicy(max_attempts=2, initial_backoff_ms=1.0)
        calls = {"n": 0}

        def unavailable_once():
            calls["n"] += 1
            if calls["n"] == 1:
                raise ModelUnavailableError("breaker open", retry_after_s=0.25)
            return "served"

        slept = []
        got = policy.call(
            unavailable_once,
            sleep=slept.append,
            min_backoff_s=lambda exc: getattr(exc, "retry_after_s", None),
        )
        assert got == "served"
        assert slept == [pytest.approx(0.25, abs=0.25)]
        assert slept[0] >= 0.25

    def test_backoff_schedule_is_capped(self):
        policy = RetryPolicy(
            max_attempts=6,
            initial_backoff_ms=10.0,
            backoff_multiplier=2.0,
            max_backoff_ms=35.0,
            jitter=0.0,
        )
        schedule = [policy.backoff_s(i) for i in range(5)]
        assert schedule == [0.010, 0.020, 0.035, 0.035, 0.035]
