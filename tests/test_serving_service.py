"""Micro-batching TaggingService: correctness, coalescing, backpressure, shutdown."""

import threading
import time

import numpy as np
import pytest

from repro.core.config import ServingConfig
from repro.exceptions import (
    DeadlineExceededError,
    QueueFullError,
    ServiceShuttingDownError,
    ServingError,
    ValidationError,
)
from repro.hmm import HMM, CategoricalEmission
from repro.serving import TaggingService


class _GatedEmission(CategoricalEmission):
    """Categorical emissions whose batched scoring blocks on an event.

    Lets a test hold the dispatcher inside one compute while clients pile
    onto the queue — the deterministic way to exercise backpressure,
    deadline expiry and slow-flush shutdown.  ``family`` stays "abstract"
    so the subclass does not shadow the real categorical entry in the
    emission persistence registry.
    """

    family = "abstract"

    def __init__(self, emission_probs):
        super().__init__(emission_probs)
        self.release = threading.Event()
        self.started = threading.Event()
        self.batch_calls = 0

    def log_likelihoods_batch(self, sequences):
        self.batch_calls += 1
        self.started.set()
        assert self.release.wait(timeout=30), "test forgot to release the gate"
        return super().log_likelihoods_batch(sequences)


def _gated_hmm(seed, n_states=4, n_symbols=8):
    rng = np.random.default_rng(seed)
    emissions = _GatedEmission(rng.dirichlet(np.ones(n_symbols), size=n_states))
    return HMM(
        rng.dirichlet(np.ones(n_states)),
        rng.dirichlet(np.ones(n_states), size=n_states),
        emissions,
    )


def _random_hmm(seed, n_states=4, n_symbols=8):
    rng = np.random.default_rng(seed)
    emissions = CategoricalEmission(rng.dirichlet(np.ones(n_symbols), size=n_states))
    return HMM(
        rng.dirichlet(np.ones(n_states)),
        rng.dirichlet(np.ones(n_states), size=n_states),
        emissions,
    )


@pytest.fixture
def model():
    return _random_hmm(0)


@pytest.fixture
def sequences(model):
    _, seqs = model.sample_dataset(40, 10, seed=1)
    return seqs


class TestCorrectness:
    def test_tags_match_direct_batch_decode(self, model, sequences):
        with TaggingService(model) as service:
            served = service.tag_many(sequences)
        expected = model.predict(sequences)
        for got, want in zip(served, expected):
            assert np.array_equal(got, want)

    def test_scores_match_direct_likelihood(self, model, sequences):
        with TaggingService(model) as service:
            served = service.score_many(sequences)
        expected = [model.log_likelihood(seq) for seq in sequences]
        np.testing.assert_allclose(served, expected, atol=1e-9)

    def test_mixed_tag_and_score_requests(self, model, sequences):
        with TaggingService(model) as service:
            tag_futures = [service.submit_tag(seq) for seq in sequences[:10]]
            score_futures = [service.submit_score(seq) for seq in sequences[10:20]]
            tags = [f.result(timeout=10) for f in tag_futures]
            scores = [f.result(timeout=10) for f in score_futures]
        for got, want in zip(tags, model.predict(sequences[:10])):
            assert np.array_equal(got, want)
        np.testing.assert_allclose(
            scores, [model.log_likelihood(s) for s in sequences[10:20]], atol=1e-9
        )

    def test_synchronous_single_request(self, model, sequences):
        with TaggingService(model) as service:
            path = service.tag(sequences[0])
            score = service.score(sequences[0])
        assert np.array_equal(path, model.decode(sequences[0]))
        assert score == pytest.approx(model.log_likelihood(sequences[0]), abs=1e-9)

    def test_concurrent_client_threads(self, model, sequences):
        results: dict[int, np.ndarray] = {}
        with TaggingService(model) as service:

            def client(index):
                results[index] = service.tag(sequences[index])

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(len(sequences))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        expected = model.predict(sequences)
        for index, want in enumerate(expected):
            assert np.array_equal(results[index], want)


class TestBatching:
    def test_burst_is_coalesced(self, model, sequences):
        config = ServingConfig(max_batch_size=64, max_wait_ms=20.0)
        with TaggingService(model, config=config) as service:
            service.tag_many(sequences)
            stats = service.stats.snapshot()
        # 40 simultaneous requests must not become 40 singleton batches.
        assert stats["n_requests"] == len(sequences)
        assert stats["mean_batch_size"] > 2.0
        assert stats["max_batch_size"] > 2

    def test_max_batch_size_is_respected(self, model, sequences):
        config = ServingConfig(max_batch_size=5, max_wait_ms=20.0)
        with TaggingService(model, config=config) as service:
            service.tag_many(sequences)
            stats = service.stats.snapshot()
        assert stats["max_batch_size"] <= 5
        assert stats["n_batches"] >= len(sequences) / 5

    def test_stats_counters(self, model, sequences):
        with TaggingService(model) as service:
            service.tag_many(sequences)
            stats = service.stats.snapshot()
        assert stats["n_tokens"] == sum(len(s) for s in sequences)
        assert stats["busy_seconds"] > 0
        assert stats["tokens_per_busy_second"] > 0
        assert stats["wall_seconds"] >= stats["busy_seconds"] * 0.5


class TestLifecycle:
    def test_close_serves_queued_requests(self, model, sequences):
        service = TaggingService(model)
        futures = [service.submit_tag(seq) for seq in sequences]
        service.close()
        expected = model.predict(sequences)
        for future, want in zip(futures, expected):
            assert np.array_equal(future.result(timeout=1), want)

    def test_submit_after_close_raises(self, model, sequences):
        service = TaggingService(model)
        service.close()
        with pytest.raises(ServiceShuttingDownError, match="closed"):
            service.submit_tag(sequences[0])

    def test_close_is_idempotent(self, model):
        service = TaggingService(model)
        service.close()
        service.close()

    def test_empty_sequence_rejected_at_submit(self, model):
        with TaggingService(model) as service:
            with pytest.raises(ValidationError):
                service.submit_tag(np.array([], dtype=np.int64))

    def test_cancelled_future_does_not_kill_dispatcher(self, model, sequences):
        # Stall the dispatcher with a long max_wait so there is a window to
        # cancel a queued request before it is processed.
        config = ServingConfig(max_batch_size=2, max_wait_ms=200.0)
        with TaggingService(model, config=config) as service:
            first = service.submit_tag(sequences[0])
            second = service.submit_tag(sequences[1])
            third = service.submit_tag(sequences[2])
            third.cancel()  # may or may not win the race with the dispatcher
            # the service must keep serving either way
            assert np.array_equal(first.result(timeout=10), model.decode(sequences[0]))
            assert np.array_equal(
                service.tag(sequences[3]), model.decode(sequences[3])
            )
            second.result(timeout=10)

    def test_scalar_input_rejected_at_submit(self, model):
        with TaggingService(model) as service:
            with pytest.raises(ValidationError, match="sequences"):
                service.submit_tag(np.int64(5))

    def test_request_error_propagates_to_future(self, model):
        with TaggingService(model) as service:
            # symbol 999 is outside the emission vocabulary -> scoring the
            # emission table raises inside the dispatcher.
            future = service.submit_tag(np.array([999]))
            with pytest.raises(ValidationError):
                future.result(timeout=10)
            # service still healthy afterwards
            path = service.tag(np.array([0, 1, 2]))
            assert path.shape == (3,)

    def test_bad_request_does_not_poison_the_batch(self, model, sequences):
        # A malformed request coalesced with valid ones must fail alone;
        # the valid requests still resolve with correct paths.
        config = ServingConfig(max_batch_size=64, max_wait_ms=50.0)
        with TaggingService(model, config=config) as service:
            good_futures = [service.submit_tag(seq) for seq in sequences[:5]]
            bad_future = service.submit_tag(np.array([999]))
            more_futures = [service.submit_tag(seq) for seq in sequences[5:10]]
            with pytest.raises(ValidationError):
                bad_future.result(timeout=10)
            expected = model.predict(sequences[:10])
            for future, want in zip(good_futures + more_futures, expected):
                assert np.array_equal(future.result(timeout=10), want)

    def test_close_reports_incomplete_flush(self, sequences):
        """A flush slower than the close timeout is surfaced, not swallowed."""
        model = _gated_hmm(0)
        service = TaggingService(
            model, config=ServingConfig(max_batch_size=1, max_wait_ms=0.0)
        )
        future = service.submit_tag(sequences[0])
        assert model.emissions.started.wait(timeout=10)
        # the dispatcher is stuck inside the batch: the flush cannot finish
        assert service.close(timeout=0.05) is False
        assert not future.done()
        model.emissions.release.set()
        # a second close re-joins and confirms the flush completed
        assert service.close(timeout=10.0) is True
        assert future.result(timeout=1).shape == sequences[0].shape

    def test_keyboard_interrupt_stops_dispatcher_not_the_future(self, sequences):
        """Control-flow exceptions must not be swallowed into client futures."""

        class _InterruptingEmission(CategoricalEmission):
            family = "abstract"

            def log_likelihoods_batch(self, seqs):
                raise KeyboardInterrupt

            def log_likelihoods(self, seq):
                raise KeyboardInterrupt

        rng = np.random.default_rng(0)
        model = HMM(
            rng.dirichlet(np.ones(4)),
            rng.dirichlet(np.ones(4), size=4),
            _InterruptingEmission(rng.dirichlet(np.ones(8), size=4)),
        )
        # Silence the thread's unhandled-exception report for this test.
        previous_hook = threading.excepthook
        threading.excepthook = lambda args: None
        try:
            service = TaggingService(model)
            future = service.submit_tag(sequences[0])
            service._dispatcher.join(timeout=10)
            assert not service._dispatcher.is_alive()
            # The interrupt stopped the dispatcher — no supervised restart
            # for control-flow exceptions — instead of being swallowed into
            # the future as the result; the in-flight request resolves with
            # ServingError (never the interrupt, and never a silent hang
            # for a client blocked in result()).
            with pytest.raises(ServingError, match="dispatcher crashed"):
                future.result(timeout=10)
            # the dead service refuses new work instead of queueing it
            with pytest.raises(ServiceShuttingDownError, match="closed"):
                service.submit_tag(sequences[1])
            assert service.close(timeout=1.0) is True
        finally:
            threading.excepthook = previous_hook

    def test_fitted_wrapper_accepted(self, tiny_ocr_dataset):
        from repro.baselines import SupervisedHMMClassifier

        data = tiny_ocr_dataset
        classifier = SupervisedHMMClassifier(26, 128).fit(data.images, data.labels)
        with TaggingService(classifier) as service:
            served = service.tag_many(
                [np.asarray(img, dtype=np.float64) for img in data.images[:5]]
            )
        expected = classifier.predict(data.images[:5])
        for got, want in zip(served, expected):
            assert np.array_equal(got, want)


class TestBackpressure:
    def test_queue_full_fast_fails_under_burst(self, sequences):
        model = _gated_hmm(0)
        config = ServingConfig(max_batch_size=1, max_wait_ms=0.0, queue_capacity=3)
        with TaggingService(model, config=config) as service:
            # The dispatcher takes exactly one request and blocks inside it.
            blocked = service.submit_tag(sequences[0])
            assert model.emissions.started.wait(timeout=10)
            queued = [service.submit_tag(seq) for seq in sequences[1:4]]
            assert service.stats.snapshot()["queue_depth"] == 3
            with pytest.raises(QueueFullError, match="capacity"):
                service.submit_tag(sequences[4])
            with pytest.raises(QueueFullError):
                service.submit_score(sequences[5])
            model.emissions.release.set()
            # accepted requests are unaffected by the shed ones
            for future, seq in zip([blocked] + queued, sequences[:4]):
                assert future.result(timeout=10).shape == seq.shape
            stats = service.stats.snapshot()
        assert stats["n_rejected"] == 2
        assert stats["n_requests"] == 4

    def test_unbounded_queue_when_capacity_is_none(self, model, sequences):
        config = ServingConfig(queue_capacity=None)
        with TaggingService(model, config=config) as service:
            assert len(service.tag_many(sequences)) == len(sequences)
            assert service.stats.snapshot()["n_rejected"] == 0

    def test_concurrent_burst_respects_capacity(self, sequences):
        """Racing submitters never overshoot the bound; rejects are counted."""
        model = _gated_hmm(1)
        config = ServingConfig(max_batch_size=1, max_wait_ms=0.0, queue_capacity=4)
        outcomes: list[str] = []
        outcomes_lock = threading.Lock()
        with TaggingService(model, config=config) as service:
            service.submit_tag(sequences[0])
            assert model.emissions.started.wait(timeout=10)

            def client(seq):
                try:
                    service.submit_tag(seq)
                    result = "accepted"
                except QueueFullError:
                    result = "rejected"
                with outcomes_lock:
                    outcomes.append(result)

            threads = [
                threading.Thread(target=client, args=(seq,))
                for seq in sequences[1:21]
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            depth = service.stats.snapshot()["queue_depth"]
            assert depth <= 4
            model.emissions.release.set()
        assert outcomes.count("accepted") == depth
        assert outcomes.count("rejected") == 20 - depth
        assert outcomes.count("rejected") >= 16


class TestDeadlines:
    def test_expired_request_never_reaches_the_engine(self, sequences):
        model = _gated_hmm(0)
        config = ServingConfig(max_batch_size=1, max_wait_ms=0.0)
        with TaggingService(model, config=config) as service:
            blocking = service.submit_tag(sequences[0])
            assert model.emissions.started.wait(timeout=10)
            doomed = service.submit_tag(sequences[1], deadline_ms=10.0)
            time.sleep(0.05)  # let the deadline lapse while queued
            model.emissions.release.set()
            with pytest.raises(DeadlineExceededError):
                doomed.result(timeout=10)
            blocking.result(timeout=10)
            # a live request afterwards is served normally
            service.tag(sequences[2])
            stats = service.stats.snapshot()
        assert stats["n_expired"] == 1
        # one batched-emission call for the blocking request, one for the
        # live request — none for the expired one
        assert model.emissions.batch_calls == 2

    def test_generous_deadline_is_met(self, model, sequences):
        with TaggingService(model) as service:
            future = service.submit_tag(sequences[0], deadline_ms=30_000.0)
            assert np.array_equal(future.result(timeout=10), model.decode(sequences[0]))
            assert service.stats.snapshot()["n_expired"] == 0

    def test_non_positive_deadline_rejected(self, model, sequences):
        with TaggingService(model) as service:
            with pytest.raises(ValidationError, match="deadline_ms"):
                service.submit_tag(sequences[0], deadline_ms=0.0)
            with pytest.raises(ValidationError, match="deadline_ms"):
                service.submit_score(sequences[0], deadline_ms=-5.0)

    def test_expired_requests_are_dropped_during_shutdown_flush(self, sequences):
        model = _gated_hmm(0)
        config = ServingConfig(max_batch_size=1, max_wait_ms=0.0)
        service = TaggingService(model, config=config)
        blocking = service.submit_tag(sequences[0])
        assert model.emissions.started.wait(timeout=10)
        doomed = service.submit_score(sequences[1], deadline_ms=10.0)
        time.sleep(0.05)
        model.emissions.release.set()
        assert service.close(timeout=10.0) is True
        blocking.result(timeout=1)
        with pytest.raises(DeadlineExceededError):
            doomed.result(timeout=1)
