"""Micro-batching TaggingService: correctness, coalescing, stats, shutdown."""

import threading

import numpy as np
import pytest

from repro.core.config import ServingConfig
from repro.exceptions import ValidationError
from repro.hmm import HMM, CategoricalEmission
from repro.serving import TaggingService


def _random_hmm(seed, n_states=4, n_symbols=8):
    rng = np.random.default_rng(seed)
    emissions = CategoricalEmission(rng.dirichlet(np.ones(n_symbols), size=n_states))
    return HMM(
        rng.dirichlet(np.ones(n_states)),
        rng.dirichlet(np.ones(n_states), size=n_states),
        emissions,
    )


@pytest.fixture
def model():
    return _random_hmm(0)


@pytest.fixture
def sequences(model):
    _, seqs = model.sample_dataset(40, 10, seed=1)
    return seqs


class TestCorrectness:
    def test_tags_match_direct_batch_decode(self, model, sequences):
        with TaggingService(model) as service:
            served = service.tag_many(sequences)
        expected = model.predict(sequences)
        for got, want in zip(served, expected):
            assert np.array_equal(got, want)

    def test_scores_match_direct_likelihood(self, model, sequences):
        with TaggingService(model) as service:
            served = service.score_many(sequences)
        expected = [model.log_likelihood(seq) for seq in sequences]
        np.testing.assert_allclose(served, expected, atol=1e-9)

    def test_mixed_tag_and_score_requests(self, model, sequences):
        with TaggingService(model) as service:
            tag_futures = [service.submit_tag(seq) for seq in sequences[:10]]
            score_futures = [service.submit_score(seq) for seq in sequences[10:20]]
            tags = [f.result(timeout=10) for f in tag_futures]
            scores = [f.result(timeout=10) for f in score_futures]
        for got, want in zip(tags, model.predict(sequences[:10])):
            assert np.array_equal(got, want)
        np.testing.assert_allclose(
            scores, [model.log_likelihood(s) for s in sequences[10:20]], atol=1e-9
        )

    def test_synchronous_single_request(self, model, sequences):
        with TaggingService(model) as service:
            path = service.tag(sequences[0])
            score = service.score(sequences[0])
        assert np.array_equal(path, model.decode(sequences[0]))
        assert score == pytest.approx(model.log_likelihood(sequences[0]), abs=1e-9)

    def test_concurrent_client_threads(self, model, sequences):
        results: dict[int, np.ndarray] = {}
        with TaggingService(model) as service:

            def client(index):
                results[index] = service.tag(sequences[index])

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(len(sequences))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        expected = model.predict(sequences)
        for index, want in enumerate(expected):
            assert np.array_equal(results[index], want)


class TestBatching:
    def test_burst_is_coalesced(self, model, sequences):
        config = ServingConfig(max_batch_size=64, max_wait_ms=20.0)
        with TaggingService(model, config=config) as service:
            service.tag_many(sequences)
            stats = service.stats.snapshot()
        # 40 simultaneous requests must not become 40 singleton batches.
        assert stats["n_requests"] == len(sequences)
        assert stats["mean_batch_size"] > 2.0
        assert stats["max_batch_size"] > 2

    def test_max_batch_size_is_respected(self, model, sequences):
        config = ServingConfig(max_batch_size=5, max_wait_ms=20.0)
        with TaggingService(model, config=config) as service:
            service.tag_many(sequences)
            stats = service.stats.snapshot()
        assert stats["max_batch_size"] <= 5
        assert stats["n_batches"] >= len(sequences) / 5

    def test_stats_counters(self, model, sequences):
        with TaggingService(model) as service:
            service.tag_many(sequences)
            stats = service.stats.snapshot()
        assert stats["n_tokens"] == sum(len(s) for s in sequences)
        assert stats["busy_seconds"] > 0
        assert stats["tokens_per_busy_second"] > 0
        assert stats["wall_seconds"] >= stats["busy_seconds"] * 0.5


class TestLifecycle:
    def test_close_serves_queued_requests(self, model, sequences):
        service = TaggingService(model)
        futures = [service.submit_tag(seq) for seq in sequences]
        service.close()
        expected = model.predict(sequences)
        for future, want in zip(futures, expected):
            assert np.array_equal(future.result(timeout=1), want)

    def test_submit_after_close_raises(self, model, sequences):
        service = TaggingService(model)
        service.close()
        with pytest.raises(ValidationError, match="closed"):
            service.submit_tag(sequences[0])

    def test_close_is_idempotent(self, model):
        service = TaggingService(model)
        service.close()
        service.close()

    def test_empty_sequence_rejected_at_submit(self, model):
        with TaggingService(model) as service:
            with pytest.raises(ValidationError):
                service.submit_tag(np.array([], dtype=np.int64))

    def test_cancelled_future_does_not_kill_dispatcher(self, model, sequences):
        # Stall the dispatcher with a long max_wait so there is a window to
        # cancel a queued request before it is processed.
        config = ServingConfig(max_batch_size=2, max_wait_ms=200.0)
        with TaggingService(model, config=config) as service:
            first = service.submit_tag(sequences[0])
            second = service.submit_tag(sequences[1])
            third = service.submit_tag(sequences[2])
            third.cancel()  # may or may not win the race with the dispatcher
            # the service must keep serving either way
            assert np.array_equal(first.result(timeout=10), model.decode(sequences[0]))
            assert np.array_equal(
                service.tag(sequences[3]), model.decode(sequences[3])
            )
            second.result(timeout=10)

    def test_scalar_input_rejected_at_submit(self, model):
        with TaggingService(model) as service:
            with pytest.raises(ValidationError, match="sequences"):
                service.submit_tag(np.int64(5))

    def test_request_error_propagates_to_future(self, model):
        with TaggingService(model) as service:
            # symbol 999 is outside the emission vocabulary -> scoring the
            # emission table raises inside the dispatcher.
            future = service.submit_tag(np.array([999]))
            with pytest.raises(ValidationError):
                future.result(timeout=10)
            # service still healthy afterwards
            path = service.tag(np.array([0, 1, 2]))
            assert path.shape == (3,)

    def test_bad_request_does_not_poison_the_batch(self, model, sequences):
        # A malformed request coalesced with valid ones must fail alone;
        # the valid requests still resolve with correct paths.
        config = ServingConfig(max_batch_size=64, max_wait_ms=50.0)
        with TaggingService(model, config=config) as service:
            good_futures = [service.submit_tag(seq) for seq in sequences[:5]]
            bad_future = service.submit_tag(np.array([999]))
            more_futures = [service.submit_tag(seq) for seq in sequences[5:10]]
            with pytest.raises(ValidationError):
                bad_future.result(timeout=10)
            expected = model.predict(sequences[:10])
            for future, want in zip(good_futures + more_futures, expected):
                assert np.array_equal(future.result(timeout=10), want)

    def test_fitted_wrapper_accepted(self, tiny_ocr_dataset):
        from repro.baselines import SupervisedHMMClassifier

        data = tiny_ocr_dataset
        classifier = SupervisedHMMClassifier(26, 128).fit(data.images, data.labels)
        with TaggingService(classifier) as service:
            served = service.tag_many(
                [np.asarray(img, dtype=np.float64) for img in data.images[:5]]
            )
        expected = classifier.predict(data.images[:5])
        for got, want in zip(served, expected):
            assert np.array_equal(got, want)
