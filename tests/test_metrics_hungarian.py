"""Unit and property tests for the Hungarian algorithm (vs scipy)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays
from scipy.optimize import linear_sum_assignment

from repro.exceptions import ValidationError
from repro.metrics.hungarian import hungarian_assignment


def total_cost(cost, rows, cols):
    return float(cost[rows, cols].sum())


class TestHungarianAssignment:
    def test_identity_cost_matrix(self):
        cost = 1.0 - np.eye(4)
        rows, cols = hungarian_assignment(cost)
        assert np.array_equal(rows, cols)

    def test_simple_known_example(self):
        cost = np.array([[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]])
        rows, cols = hungarian_assignment(cost)
        assert total_cost(cost, rows, cols) == 5.0  # 1 + 2 + 2

    def test_matches_scipy_on_random_square_matrices(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            n = int(rng.integers(1, 9))
            cost = rng.normal(size=(n, n)) * 10
            rows, cols = hungarian_assignment(cost)
            srows, scols = linear_sum_assignment(cost)
            assert np.isclose(total_cost(cost, rows, cols), cost[srows, scols].sum())

    def test_matches_scipy_on_rectangular_matrices(self):
        rng = np.random.default_rng(1)
        for shape in [(3, 6), (6, 3), (2, 5), (7, 4)]:
            cost = rng.uniform(0, 10, size=shape)
            rows, cols = hungarian_assignment(cost)
            srows, scols = linear_sum_assignment(cost)
            assert len(rows) == min(shape)
            assert np.isclose(total_cost(cost, rows, cols), cost[srows, scols].sum())

    def test_assignment_is_a_matching(self):
        rng = np.random.default_rng(2)
        cost = rng.normal(size=(6, 6))
        rows, cols = hungarian_assignment(cost)
        assert len(set(rows.tolist())) == 6
        assert len(set(cols.tolist())) == 6

    def test_empty_matrix(self):
        rows, cols = hungarian_assignment(np.zeros((0, 0)))
        assert rows.size == 0
        assert cols.size == 0

    def test_single_element(self):
        rows, cols = hungarian_assignment(np.array([[3.0]]))
        assert rows.tolist() == [0]
        assert cols.tolist() == [0]

    def test_rejects_non_finite_costs(self):
        with pytest.raises(ValidationError):
            hungarian_assignment(np.array([[np.inf, 1.0], [1.0, 2.0]]))

    def test_rejects_1d_input(self):
        with pytest.raises(ValidationError):
            hungarian_assignment(np.array([1.0, 2.0]))

    @given(arrays(np.float64, (5, 5), elements=st.floats(-100, 100)))
    @settings(max_examples=60, deadline=None)
    def test_property_optimal_cost_matches_scipy(self, cost):
        rows, cols = hungarian_assignment(cost)
        srows, scols = linear_sum_assignment(cost)
        assert np.isclose(total_cost(cost, rows, cols), cost[srows, scols].sum(), atol=1e-8)

    @given(
        st.integers(2, 6),
        st.integers(2, 6),
        st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_rectangular_matches_scipy(self, n_rows, n_cols, seed):
        cost = np.random.default_rng(seed).uniform(-5, 5, size=(n_rows, n_cols))
        rows, cols = hungarian_assignment(cost)
        srows, scols = linear_sum_assignment(cost)
        assert np.isclose(total_cost(cost, rows, cols), cost[srows, scols].sum(), atol=1e-8)
