"""Shared fixtures: small datasets and models reused across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.ocr import generate_ocr_dataset
from repro.datasets.pos import generate_wsj_like_corpus
from repro.datasets.toy import generate_toy_dataset


@pytest.fixture(scope="session", autouse=True)
def _lock_order_gate():
    """Fail the session if an armed lock-order tracker saw a violation.

    Inert by default (the tracker is disarmed and ``make_lock`` hands out
    plain locks); CI's serving/chaos steps export ``REPRO_LOCK_TRACKER=1``
    so every lock the serving tier creates feeds the acquisition-order
    graph, and an ABBA cycle observed anywhere in the run fails here.
    """
    yield
    from repro.analysis.lockorder import get_tracker

    tracker = get_tracker()
    if tracker is not None:
        tracker.assert_clean()


@pytest.fixture(scope="session")
def rng():
    """A deterministic generator for ad-hoc randomness inside tests."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def toy_data():
    """A small instance of the paper's toy dataset (fast to fit)."""
    return generate_toy_dataset(n_sequences=60, sequence_length=6, sigma=0.025, seed=0)


@pytest.fixture(scope="session")
def flat_toy_data():
    """A toy dataset with flat emissions (sigma = 2.0), the hard regime."""
    return generate_toy_dataset(n_sequences=60, sequence_length=6, sigma=2.0, seed=1)


@pytest.fixture(scope="session")
def tiny_pos_corpus():
    """A miniature WSJ-like corpus: 60 sentences, 300-word vocabulary."""
    return generate_wsj_like_corpus(
        n_sentences=60, vocabulary_size=300, mean_length=8, max_length=30, seed=0
    )


@pytest.fixture(scope="session")
def tiny_ocr_dataset():
    """A miniature OCR dataset: 80 words."""
    return generate_ocr_dataset(n_words=80, seed=0)


@pytest.fixture
def random_transition_matrix(rng):
    """A random 5x5 row-stochastic matrix."""
    return rng.dirichlet(np.ones(5) * 2.0, size=5)
