"""Equivalence and property tests for the batched scaled-domain engine.

The scaled probability-domain backend must reproduce the log-domain
reference backend — gamma, xi_sum, log-likelihood and Viterbi paths — to
within 1e-8 across random models, including near-deterministic (near-zero
row entries) transition matrices and length-1 sequences.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import (
    InferenceConfig,
    get_inference_config,
    inference_backend,
    set_inference_config,
)
from repro.exceptions import DimensionMismatchError, ValidationError
from repro.hmm import (
    HMM,
    BaumWelchTrainer,
    CategoricalEmission,
    InferenceEngine,
    LogDomainBackend,
    ScaledBatchedBackend,
    available_backends,
    build_backend,
)
from repro.hmm.backends import bucket_indices
from repro.hmm.forward_backward import compute_posteriors
from repro.hmm.viterbi import viterbi_decode

ATOL = 1e-8


def path_log_joint(startprob, transmat, log_obs, path):
    """Joint log-probability of a specific state path (deterministic scorer)."""
    from repro.utils.maths import safe_log

    log_pi = safe_log(startprob)
    log_A = safe_log(transmat)
    total = log_pi[path[0]] + log_obs[0, path[0]]
    for t in range(1, len(path)):
        total += log_A[path[t - 1], path[t]] + log_obs[t, path[t]]
    return float(total)


def random_problem(seed, n_states=4, n_symbols=8, concentration=1.0, lengths=(1, 2, 5, 17, 40)):
    """A random categorical HMM plus random sequences of the given lengths."""
    rng = np.random.default_rng(seed)
    emissions = CategoricalEmission(rng.dirichlet(np.ones(n_symbols), size=n_states))
    startprob = rng.dirichlet(np.ones(n_states))
    transmat = rng.dirichlet(np.full(n_states, concentration), size=n_states)
    sequences = [rng.integers(0, n_symbols, size=length) for length in lengths]
    log_obs_seqs = [emissions.log_likelihoods(seq) for seq in sequences]
    return startprob, transmat, log_obs_seqs


def assert_backends_agree(startprob, transmat, log_obs_seqs, bucket_size=3):
    scaled = InferenceEngine(backend=ScaledBatchedBackend(bucket_size=bucket_size))
    reference = InferenceEngine(backend=LogDomainBackend())

    got = scaled.posteriors_batch(startprob, transmat, log_obs_seqs)
    want = reference.posteriors_batch(startprob, transmat, log_obs_seqs)
    for g, w in zip(got, want):
        np.testing.assert_allclose(g.gamma, w.gamma, atol=ATOL, rtol=0)
        np.testing.assert_allclose(g.xi_sum, w.xi_sum, atol=ATOL, rtol=0)
        assert abs(g.log_likelihood - w.log_likelihood) < ATOL * max(
            1.0, abs(w.log_likelihood)
        )

    got_ll = scaled.log_likelihood_batch(startprob, transmat, log_obs_seqs)
    want_ll = reference.log_likelihood_batch(startprob, transmat, log_obs_seqs)
    np.testing.assert_allclose(got_ll, want_ll, atol=ATOL, rtol=1e-10)

    got_vit = scaled.viterbi_batch(startprob, transmat, log_obs_seqs)
    want_vit = reference.viterbi_batch(startprob, transmat, log_obs_seqs)
    for (g_path, g_lj), (w_path, w_lj), log_obs in zip(got_vit, want_vit, log_obs_seqs):
        # Ties between equally likely paths may break differently across
        # domains, so equivalence means: equal joint log-probability, both
        # for the reported score and for the decoded path re-scored
        # deterministically.
        tol = ATOL * max(1.0, abs(w_lj))
        assert abs(g_lj - w_lj) < tol
        if not np.array_equal(g_path, w_path):
            rescored = path_log_joint(startprob, transmat, log_obs, g_path)
            assert abs(rescored - w_lj) < tol


class TestScaledMatchesLogReference:
    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_models(self, seed):
        assert_backends_agree(*random_problem(seed))

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_near_deterministic_transition_rows(self, seed):
        # Dirichlet concentration 0.02 yields rows with most mass on one
        # entry and the rest within ~1e-12 of zero — the regime where naive
        # probability-domain recursions underflow.
        assert_backends_agree(*random_problem(seed, concentration=0.02))

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_length_one_sequences(self, seed):
        startprob, transmat, log_obs_seqs = random_problem(seed, lengths=(1, 1, 1))
        assert_backends_agree(startprob, transmat, log_obs_seqs)
        stats = InferenceEngine(backend="scaled").posteriors(
            startprob, transmat, log_obs_seqs[0]
        )
        assert np.allclose(stats.xi_sum, 0.0)
        assert np.allclose(stats.gamma.sum(), 1.0)

    @given(st.integers(0, 10_000), st.integers(1, 7))
    @settings(max_examples=15, deadline=None)
    def test_bucket_size_does_not_change_results(self, seed, bucket_size):
        startprob, transmat, log_obs_seqs = random_problem(seed)
        assert_backends_agree(startprob, transmat, log_obs_seqs, bucket_size=bucket_size)

    def test_long_skewed_sequences_stay_stable(self):
        rng = np.random.default_rng(3)
        startprob, transmat, _ = random_problem(3, concentration=0.05)
        emissions = CategoricalEmission(rng.dirichlet(np.ones(8) * 0.05, size=4))
        log_obs_seqs = [
            emissions.log_likelihoods(rng.integers(0, 8, size=length))
            for length in (250, 1, 500)
        ]
        assert_backends_agree(startprob, transmat, log_obs_seqs)

    def test_impossible_sequence_reports_minus_inf(self):
        # A timestep where every state has zero likelihood must yield a
        # -inf log-likelihood / Viterbi score, as in the log-domain
        # reference — not the finite value an underflow clamp would imply.
        startprob = np.array([0.6, 0.4])
        transmat = np.array([[0.7, 0.3], [0.2, 0.8]])
        log_obs = np.array([[-0.5, -1.0], [-np.inf, -np.inf], [-0.3, -0.9]])
        engine = InferenceEngine(backend="scaled")
        assert engine.log_likelihood(startprob, transmat, log_obs) == -np.inf
        _, log_joint = engine.viterbi(startprob, transmat, log_obs)
        assert log_joint == -np.inf
        # A possible sequence in the same bucket is unaffected.
        fine = np.array([[-0.5, -1.0], [-0.2, -0.4]])
        lls = engine.log_likelihood_batch(startprob, transmat, [log_obs, fine])
        assert lls[0] == -np.inf and np.isfinite(lls[1])

    def test_subnormal_underflow_falls_back_to_log_reference(self):
        # exp(-710) is subnormal-positive: the forward mass is > 0 but below
        # the clamp, which silently distorts the scaled recursion unless the
        # sequence is routed to the log-domain fallback.
        startprob = np.array([1.0, 0.0])
        transmat = np.eye(2)
        log_obs = np.array([[0.0, 0.0], [-710.0, 0.0]])
        scaled = InferenceEngine(backend="scaled")
        reference = InferenceEngine(backend="log")
        got = scaled.log_likelihood(startprob, transmat, log_obs)
        want = reference.log_likelihood(startprob, transmat, log_obs)
        assert abs(got - want) < 1e-8
        got_stats = scaled.posteriors(startprob, transmat, log_obs)
        want_stats = reference.posteriors(startprob, transmat, log_obs)
        np.testing.assert_allclose(got_stats.gamma, want_stats.gamma, atol=ATOL)
        _, got_lj = scaled.viterbi(startprob, transmat, log_obs)
        _, want_lj = reference.viterbi(startprob, transmat, log_obs)
        assert abs(got_lj - want_lj) < 1e-8

    def test_extreme_underflow_falls_back_to_log_reference(self):
        # The probability domain underflows when the per-timestep spread
        # exceeds ~745 nats even though the sequence is possible; such
        # sequences must be recomputed via the log-domain reference, not
        # reported as impossible.
        startprob = np.array([1.0, 0.0])
        transmat = np.eye(2)
        log_obs = np.array([[0.0, 0.0], [-800.0, 0.0]])
        scaled = InferenceEngine(backend="scaled")
        reference = InferenceEngine(backend="log")
        got = scaled.log_likelihood(startprob, transmat, log_obs)
        want = reference.log_likelihood(startprob, transmat, log_obs)
        assert np.isfinite(want)
        assert abs(got - want) < 1e-8
        got_stats = scaled.posteriors(startprob, transmat, log_obs)
        want_stats = reference.posteriors(startprob, transmat, log_obs)
        np.testing.assert_allclose(got_stats.gamma, want_stats.gamma, atol=ATOL)
        np.testing.assert_allclose(got_stats.xi_sum, want_stats.xi_sum, atol=ATOL)
        got_path, got_lj = scaled.viterbi(startprob, transmat, log_obs)
        want_path, want_lj = reference.viterbi(startprob, transmat, log_obs)
        np.testing.assert_array_equal(got_path, want_path)
        assert abs(got_lj - want_lj) < 1e-8

    def test_matches_direct_reference_functions(self):
        startprob, transmat, log_obs_seqs = random_problem(11)
        engine = InferenceEngine(backend="scaled")
        for log_obs in log_obs_seqs:
            ref = compute_posteriors(startprob, transmat, log_obs)
            got = engine.posteriors(startprob, transmat, log_obs)
            np.testing.assert_allclose(got.gamma, ref.gamma, atol=ATOL, rtol=0)
            np.testing.assert_allclose(got.xi_sum, ref.xi_sum, atol=ATOL, rtol=0)
            ref_path, ref_lj = viterbi_decode(startprob, transmat, log_obs)
            got_path, got_lj = engine.viterbi(startprob, transmat, log_obs)
            assert abs(got_lj - ref_lj) < 1e-8
            if not np.array_equal(got_path, ref_path):
                rescored = path_log_joint(startprob, transmat, log_obs, got_path)
                assert abs(rescored - ref_lj) < 1e-8


class TestEmTrainingEquivalence:
    def test_fit_histories_and_parameters_match(self):
        rng = np.random.default_rng(5)
        n_states, n_symbols = 4, 10
        emissions = CategoricalEmission(rng.dirichlet(np.ones(n_symbols), size=n_states))
        startprob = rng.dirichlet(np.ones(n_states))
        transmat = rng.dirichlet(np.ones(n_states), size=n_states)
        sequences = [
            rng.integers(0, n_symbols, size=rng.integers(1, 25)) for _ in range(30)
        ]

        scaled_model = HMM(startprob.copy(), transmat.copy(), emissions.copy())
        log_model = HMM(startprob.copy(), transmat.copy(), emissions.copy())
        scaled_result = BaumWelchTrainer(
            max_iter=6, engine=InferenceEngine(backend="scaled")
        ).fit(scaled_model, sequences)
        log_result = BaumWelchTrainer(
            max_iter=6, engine=InferenceEngine(backend="log")
        ).fit(log_model, sequences)

        np.testing.assert_allclose(
            scaled_result.history, log_result.history, atol=1e-7, rtol=1e-10
        )
        np.testing.assert_allclose(
            scaled_model.transmat, log_model.transmat, atol=ATOL, rtol=0
        )
        np.testing.assert_allclose(
            scaled_model.startprob, log_model.startprob, atol=ATOL, rtol=0
        )


class TestEngineConfiguration:
    def test_default_backend_is_scaled(self):
        assert get_inference_config().backend == "scaled"
        model = HMM(
            np.array([0.5, 0.5]),
            np.array([[0.6, 0.4], [0.3, 0.7]]),
            CategoricalEmission(np.array([[0.8, 0.2], [0.1, 0.9]])),
        )
        assert model.inference_engine.backend_name == "scaled"

    def test_context_manager_switches_backend(self):
        model = HMM(
            np.array([0.5, 0.5]),
            np.array([[0.6, 0.4], [0.3, 0.7]]),
            CategoricalEmission(np.array([[0.8, 0.2], [0.1, 0.9]])),
        )
        with inference_backend("log"):
            assert model.inference_engine.backend_name == "log"
        assert model.inference_engine.backend_name == "scaled"

    def test_set_inference_config_round_trips(self):
        previous = set_inference_config(InferenceConfig(backend="log", bucket_size=8))
        try:
            assert get_inference_config().backend == "log"
            assert get_inference_config().bucket_size == 8
        finally:
            set_inference_config(previous)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValidationError):
            InferenceConfig(backend="gpu")
        with pytest.raises(ValidationError):
            InferenceConfig(bucket_size=0)
        with pytest.raises(ValueError):
            build_backend("nope")

    def test_available_backends(self):
        assert set(available_backends()) == {"scaled", "log"}

    def test_explicit_engine_wins_over_config(self):
        engine = InferenceEngine(backend="log")
        model = HMM(
            np.array([0.5, 0.5]),
            np.array([[0.6, 0.4], [0.3, 0.7]]),
            CategoricalEmission(np.array([[0.8, 0.2], [0.1, 0.9]])),
            engine=engine,
        )
        assert model.inference_engine is engine

    def test_parameter_cache_detects_mutation(self):
        startprob, transmat, log_obs_seqs = random_problem(2)
        engine = InferenceEngine(backend="scaled")
        before = engine.log_likelihood_batch(startprob, transmat, log_obs_seqs)
        mutated = transmat.copy()
        mutated[0] = np.roll(mutated[0], 1)
        after = engine.log_likelihood_batch(startprob, mutated, log_obs_seqs)
        reference = InferenceEngine(backend="log").log_likelihood_batch(
            startprob, mutated, log_obs_seqs
        )
        np.testing.assert_allclose(after, reference, atol=ATOL, rtol=1e-10)
        assert not np.allclose(before, after)


class TestBucketing:
    def test_bucket_indices_cover_everything_once(self):
        lengths = [5, 1, 9, 3, 3, 7, 2]
        buckets = bucket_indices(lengths, bucket_size=3)
        flat = np.sort(np.concatenate(buckets))
        np.testing.assert_array_equal(flat, np.arange(len(lengths)))
        assert all(len(b) <= 3 for b in buckets)

    def test_empty_batch_is_fine(self):
        engine = InferenceEngine(backend="scaled")
        assert engine.posteriors_batch(np.array([1.0]), np.array([[1.0]]), []) == []

    def test_mismatched_observation_table_raises(self):
        engine = InferenceEngine(backend="scaled")
        with pytest.raises(DimensionMismatchError):
            engine.posteriors_batch(
                np.array([0.5, 0.5]),
                np.array([[0.5, 0.5], [0.5, 0.5]]),
                [np.zeros((4, 3))],
            )

    def test_mismatched_parameters_raise_like_the_reference(self):
        # Both backends must raise the library's DimensionMismatchError for
        # a transition matrix that disagrees with the start distribution,
        # not a raw numpy broadcasting error.
        startprob = np.full(3, 1.0 / 3.0)
        transmat = np.full((2, 2), 0.5)
        tables = [np.zeros((4, 3))]
        for backend in ("scaled", "log"):
            with pytest.raises(DimensionMismatchError):
                InferenceEngine(backend=backend).posteriors_batch(
                    startprob, transmat, tables
                )
