"""Unit tests for the synthetic OCR dataset generator."""

import numpy as np
import pytest

from repro.datasets.ocr import (
    LETTERS,
    N_LETTERS,
    N_PIXELS,
    generate_ocr_dataset,
    letter_bigram_chain,
    letter_prototypes,
)
from repro.exceptions import ValidationError


class TestLetterPrototypes:
    def test_shape_and_binarity(self):
        protos = letter_prototypes()
        assert protos.shape == (N_LETTERS, N_PIXELS)
        assert set(np.unique(protos)) <= {0.0, 1.0}

    def test_all_letters_have_ink(self):
        protos = letter_prototypes()
        assert np.all(protos.sum(axis=1) >= 5)

    def test_prototypes_are_pairwise_distinct(self):
        protos = letter_prototypes()
        for i in range(N_LETTERS):
            for j in range(i + 1, N_LETTERS):
                hamming = np.sum(protos[i] != protos[j])
                assert hamming >= 3, f"{LETTERS[i]} and {LETTERS[j]} are too similar"

    def test_deterministic(self):
        assert np.array_equal(letter_prototypes(), letter_prototypes())


class TestLetterBigramChain:
    def test_start_and_transitions_are_stochastic(self):
        startprob, transmat = letter_bigram_chain()
        assert np.isclose(startprob.sum(), 1.0)
        assert np.allclose(transmat.sum(axis=1), 1.0)

    def test_q_is_followed_by_u(self):
        _, transmat = letter_bigram_chain()
        q, u = LETTERS.index("q"), LETTERS.index("u")
        assert transmat[q, u] > 0.5

    def test_common_bigram_th_is_boosted(self):
        _, transmat = letter_bigram_chain()
        t, h, z = LETTERS.index("t"), LETTERS.index("h"), LETTERS.index("z")
        assert transmat[t, h] > transmat[t, z]


class TestGenerateOcrDataset:
    def test_dimensions(self, tiny_ocr_dataset):
        data = tiny_ocr_dataset
        assert data.n_words == 80
        assert len(data.images) == len(data.labels) == len(data.words)
        for img, lab, word in zip(data.images, data.labels, data.words):
            assert img.shape == (len(lab), N_PIXELS)
            assert len(word) == len(lab)

    def test_word_lengths_in_bounds(self, tiny_ocr_dataset):
        lengths = [len(lab) for lab in tiny_ocr_dataset.labels]
        assert min(lengths) >= 1
        assert max(lengths) <= 14

    def test_images_are_binary(self, tiny_ocr_dataset):
        for img in tiny_ocr_dataset.images[:10]:
            assert set(np.unique(img)) <= {0.0, 1.0}

    def test_words_match_labels(self, tiny_ocr_dataset):
        for word, lab in zip(tiny_ocr_dataset.words, tiny_ocr_dataset.labels):
            assert word == "".join(LETTERS[i] for i in lab)

    def test_noisy_glyphs_stay_close_to_prototypes(self):
        data = generate_ocr_dataset(n_words=30, pixel_noise=0.05, shift_probability=0.0, seed=0)
        for img, lab in zip(data.images, data.labels):
            for row, letter in zip(img, lab):
                hamming = np.sum(row != data.prototypes[letter]) / N_PIXELS
                assert hamming < 0.25

    def test_higher_noise_increases_distortion(self):
        clean = generate_ocr_dataset(n_words=30, pixel_noise=0.01, shift_probability=0.0, seed=1)
        noisy = generate_ocr_dataset(n_words=30, pixel_noise=0.25, shift_probability=0.0, seed=1)

        def mean_distortion(data):
            distances = []
            for img, lab in zip(data.images, data.labels):
                for row, letter in zip(img, lab):
                    distances.append(np.mean(row != data.prototypes[letter]))
            return float(np.mean(distances))

        assert mean_distortion(noisy) > mean_distortion(clean)

    def test_reproducible_with_seed(self):
        a = generate_ocr_dataset(n_words=10, seed=5)
        b = generate_ocr_dataset(n_words=10, seed=5)
        assert a.words == b.words
        assert all(np.array_equal(x, y) for x, y in zip(a.images, b.images))

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValidationError):
            generate_ocr_dataset(n_words=0)
        with pytest.raises(ValidationError):
            generate_ocr_dataset(min_length=0)
        with pytest.raises(ValidationError):
            generate_ocr_dataset(pixel_noise=0.7)
