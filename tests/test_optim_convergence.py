"""Unit tests for the convergence monitor."""

import pytest

from repro.optim.convergence import ConvergenceMonitor


class TestConvergenceMonitor:
    def test_converges_on_small_improvement(self):
        monitor = ConvergenceMonitor(tol=1e-3, max_iter=100)
        assert not monitor.update(1.0)
        assert monitor.update(1.0005)
        assert monitor.converged

    def test_does_not_converge_on_large_improvement(self):
        monitor = ConvergenceMonitor(tol=1e-3, max_iter=100)
        monitor.update(1.0)
        assert not monitor.update(2.0)

    def test_exhaustion_stops_iteration(self):
        monitor = ConvergenceMonitor(tol=0.0, max_iter=3)
        monitor.update(1.0)
        monitor.update(2.0)
        assert monitor.update(3.0)
        assert monitor.exhausted
        assert not monitor.converged

    def test_n_iter_and_last(self):
        monitor = ConvergenceMonitor()
        monitor.update(5.0)
        assert monitor.n_iter == 1
        assert monitor.last == 5.0

    def test_last_raises_when_empty(self):
        with pytest.raises(ValueError):
            ConvergenceMonitor().last

    def test_reset_clears_history(self):
        monitor = ConvergenceMonitor()
        monitor.update(1.0)
        monitor.reset()
        assert monitor.n_iter == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ConvergenceMonitor(tol=-1.0)
        with pytest.raises(ValueError):
            ConvergenceMonitor(max_iter=0)
