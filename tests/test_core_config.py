"""Unit tests for DHMMConfig validation."""

import pytest

from repro.core.config import DHMMConfig
from repro.exceptions import ValidationError


class TestDHMMConfig:
    def test_defaults_follow_the_paper(self):
        config = DHMMConfig()
        assert config.rho == 0.5
        assert config.alpha >= 0
        assert config.alpha_anchor == 1e5

    def test_alpha_zero_is_allowed(self):
        assert DHMMConfig(alpha=0.0).alpha == 0.0

    def test_frozen(self):
        config = DHMMConfig()
        with pytest.raises(AttributeError):
            config.alpha = 5.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": -1.0},
            {"rho": 0.0},
            {"alpha_anchor": -1.0},
            {"max_em_iter": 0},
            {"max_inner_iter": 0},
            {"em_tol": -1e-3},
            {"inner_tol": -1e-3},
            {"initial_step": 0.0},
            {"transition_floor": 0.0},
            {"transition_floor": 1.5},
            {"kernel_jitter": -1e-9},
        ],
    )
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ValidationError):
            DHMMConfig(**kwargs)


class TestServingConfig:
    def test_scheduling_defaults(self):
        from repro.core.config import SCHEDULING_POLICIES, ServingConfig

        config = ServingConfig()
        assert config.scheduling_policy == "fifo"
        assert config.model_weights is None
        assert config.scheduling_policy in SCHEDULING_POLICIES

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"scheduling_policy": "lifo"},
            {"scheduling_policy": ""},
            {"model_weights": {"m": 0.0}},
            {"model_weights": {"m": -2.0}},
            {"model_weights": {3: 1.0}},
        ],
    )
    def test_invalid_scheduling_values_raise(self, kwargs):
        from repro.core.config import ServingConfig

        with pytest.raises(ValidationError):
            ServingConfig(**kwargs)
